"""F4 -- tail latency under bursty (ON/OFF) traffic.

Burstiness = peak-rate multiplier at constant mean load (0.5).  The
measured shape has a sharp regime boundary: while a burst's peak fits in
the *aggregate* k-path capacity (peak utilization = burstiness x load <=
1, i.e. burstiness <= 2 here), multipath absorbs it and the single path
suffers; once bursts exceed aggregate capacity (4x, 8x), every
configuration saturates during bursts and steering cannot help -- queue
growth is capacity-bound, not placement-bound.
"""

from conftest import run_once

from repro.bench.figures import fig4_bursty


def test_f4_bursty(benchmark, report):
    text, data = run_once(benchmark, fig4_bursty)
    report("F4", text)

    # Burstiness hurts single path monotonically and severely.
    assert data["single"]["p99"][-1] > 5.0 * data["single"]["p99"][0]
    # In the fits-in-aggregate regime multipath wins decisively at 1x
    # and still clearly at 2x (peak = exactly aggregate capacity).
    assert data["adaptive"]["p99"][0] < 0.6 * data["single"]["p99"][0]
    assert data["adaptive"]["p99"][1] < 0.8 * data["single"]["p99"][1]
    # Beyond aggregate capacity (8x) all three saturate together:
    # no configuration is more than ~2x from another.
    top = [data[p]["p99"][-1] for p in ("single", "spray", "adaptive")]
    assert max(top) < 2.0 * min(top)
