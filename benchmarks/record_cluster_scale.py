#!/usr/bin/env python
"""Record the cluster sharding scale measurement + determinism gate.

Runs the C1 scale scenario (8 uniform hosts, adaptive k=4, ecmp fabric)
twice -- ``workers=1`` (every shard inline) and ``workers=4`` (shards
across a process pool) -- and writes the wall-clock comparison to
``benchmarks/results/BENCH_CLUSTER_SCALE.json``.

Two gates:

* **Determinism (always enforced):** the serialized ``ClusterResult``
  must be byte-identical at both worker counts -- shard placement is an
  execution detail, never an input to the simulation.
* **Speedup (enforced on capable hosts):** with >= 4 CPUs available,
  ``workers=4`` must beat ``workers=1`` by >= 2x aggregate throughput
  (wall-clock).  On smaller hosts the measurement is still recorded --
  honestly, including the cpu_count that explains it -- but cannot
  gate: four workers on one core cannot go faster than one.

Usage:  python benchmarks/record_cluster_scale.py
        (REPRO_BENCH_SCALE scales the simulated duration)
"""

import json
import os
import pathlib
import sys

from repro.bench.runner import scaled_duration
from repro.bench.scenarios import ScenarioConfig
from repro.cluster import ClusterConfig, run_cluster
from repro.net.fabric import FabricConfig

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
#: Required workers=4 speedup on a >=4-core host; below the 4x ideal
#: because the barrier serializes epoch exchange and CI runners share.
MIN_SPEEDUP = 2.0
N_HOSTS = 8
LOAD = 0.6


def _config() -> ClusterConfig:
    d = scaled_duration(25_000.0)
    template = ScenarioConfig(policy="adaptive", n_paths=4, load=LOAD,
                              duration=d, warmup=0.15 * d)
    return ClusterConfig.uniform_hosts(
        N_HOSTS, template,
        FabricConfig(n_spines=4, base_latency=50.0, spine_skew=5.0),
        pattern="uniform", seed=42,
    )


def main() -> int:
    cfg = _config()
    runs = {}
    payloads = {}
    for workers in (1, 4):
        res = run_cluster(cfg, workers=workers)
        runs[workers] = res
        payloads[workers] = json.dumps(res.to_dict(), sort_keys=True)
        print(f"workers={workers}: {res.cluster['delivered']} delivered "
              f"in {res.wall_s:.2f}s wall "
              f"({res.cluster['delivered'] / res.wall_s:,.0f} pps wall)")

    deterministic = payloads[1] == payloads[4]
    speedup = runs[1].wall_s / max(runs[4].wall_s, 1e-9)
    cores = os.cpu_count() or 1
    gated = cores >= 4

    record = {
        "name": "cluster-scale",
        "hosts": N_HOSTS,
        "load": LOAD,
        "duration_us": cfg.hosts[0].scenario.duration,
        "cpu_count": cores,
        "offered": runs[4].cluster["offered"],
        "delivered": runs[4].cluster["delivered"],
        "envelopes_sent": runs[4].cluster["envelopes_sent"],
        "p99_us": runs[4].p99,
        "wall_s_workers_1": runs[1].wall_s,
        "wall_s_workers_4": runs[4].wall_s,
        "speedup_4_workers": speedup,
        "wall_pps_workers_4": runs[4].cluster["delivered"] / runs[4].wall_s,
        "deterministic_1_vs_4": deterministic,
        "speedup_gate_enforced": gated,
        "min_speedup": MIN_SPEEDUP,
    }
    out = RESULTS / "BENCH_CLUSTER_SCALE.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    if not deterministic:
        print("DETERMINISM VIOLATION: workers=1 and workers=4 produced "
              "different ClusterResult payloads", file=sys.stderr)
        return 1
    if gated and speedup < MIN_SPEEDUP:
        print(f"cluster speedup {speedup:.2f}x < {MIN_SPEEDUP}x on a "
              f"{cores}-core host", file=sys.stderr)
        return 1
    if not gated:
        print(f"(speedup gate skipped: only {cores} CPU(s) -- recorded "
              f"{speedup:.2f}x for the trajectory)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
