#!/usr/bin/env python
"""Measure pure event-scheduler throughput and record it.

This is the scheduler microbenchmark behind the pluggable ``Simulator``
backend: it drives the two backends (a plain ``heapq`` binary heap and
:class:`repro.sim.calqueue.CalendarQueue`) directly with the engine's
4-tuple entries -- no packets, no callbacks -- so the numbers isolate
scheduler cost from model cost.

Models
------
* **hold** (Brown's classic steady-state workload): prefill N entries
  with exponential offsets, then repeatedly pop the earliest and push a
  replacement at ``popped_time + Exp(mean)``.  The schedule size *holds*
  at N; one op is a pop+push pair.
* **burst**: push N entries at once (exponential offsets from a common
  base), then pop all N; repeat.  Stresses resize/redistribution and
  bucket scanning rather than the steady state.

An ``entry_pool`` variant of the hold model additionally measures a
Python-level free list of list-entries against fresh tuples.  It exists
to document *why* the engine does NOT pool its schedule entries:
CPython's built-in per-size tuple free lists already recycle them at C
speed (see docs/PERFORMANCE.md).

Modes
-----
* default       -- rewrites ``benchmarks/results/BENCH_EVENT_LOOP.json``.
* ``--quick``    -- CI-sized sizes/op counts; does not rewrite the JSON.
* ``--check``    -- cross-backend pop-order identity plus a loose
                   calendar/heap ratio floor (noise-safe); exits nonzero
                   on failure.  Wired into the perf-smoke CI job.

Usage:
  python benchmarks/record_event_loop.py [--ops N]
  python benchmarks/record_event_loop.py --quick --check
"""

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import time
from heapq import heappop, heappush

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro import schemas  # noqa: E402
from repro.sim.calqueue import CalendarQueue  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
OUT = RESULTS / "BENCH_EVENT_LOOP.json"

SIZES_FULL = (64, 512, 4096, 32768)
SIZES_QUICK = (64, 2048)
#: Mean inter-event gap (same unit as the engine clock: microseconds).
MEAN_GAP = 0.35
#: Ratio floor for --check: the calendar backend must stay within this
#: factor of heapq even on a noisy CI box (it is ~at parity locally).
RATIO_FLOOR = 0.3


def _entries(rng, n, base, mean):
    """n engine-shaped entries with exponential offsets from base."""
    return [(base + rng.expovariate(1.0 / mean), i, None, ())
            for i in range(n)]


class _HeapBackend:
    name = "heap"

    def __init__(self):
        self.q = []

    def push(self, e):
        heappush(self.q, e)

    def pop(self):
        return heappop(self.q)

    def peek_time(self):
        return self.q[0][0] if self.q else float("inf")

    def __len__(self):
        return len(self.q)


class _CalendarBackend:
    name = "calendar"

    def __init__(self):
        self.q = CalendarQueue()
        self.push = self.q.push
        self.pop = self.q.pop
        self.peek_time = self.q.peek_time

    def __len__(self):
        return len(self.q)


BACKENDS = (_HeapBackend, _CalendarBackend)


def _hold(backend_cls, size, ops, seed=2022):
    """Steady-state hold model; returns ops/sec (op = pop+push pair)."""
    rng = random.Random(seed)
    be = backend_cls()
    push, pop = be.push, be.pop
    for e in _entries(rng, size, 0.0, MEAN_GAP):
        push(e)
    expo = rng.expovariate
    lam = 1.0 / MEAN_GAP
    seq = size
    t0 = time.perf_counter()
    for _ in range(ops):
        t = pop()[0]
        seq += 1
        push((t + expo(lam), seq, None, ()))
    wall = time.perf_counter() - t0
    return ops / wall


def _burst(backend_cls, size, rounds, seed=2022):
    """Burst model: push ``size`` then pop ``size``; returns ops/sec."""
    rng = random.Random(seed)
    be = backend_cls()
    push, pop = be.push, be.pop
    base = 0.0
    total = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        seq = 0
        for _ in range(size):
            seq += 1
            push((base + rng.expovariate(1.0 / MEAN_GAP), seq, None, ()))
        last = base
        for _ in range(size):
            last = pop()[0]
        base = last
        total += size
    wall = time.perf_counter() - t0
    return total / wall


def _hold_entry_pool(size, ops, seed=2022):
    """Hold model on heapq with a Python-level list-entry free list.

    The informational variant: measures what pooling the 4-tuple entries
    would cost (lists, since tuples are immutable).  Compare against the
    plain-heap hold number at the same size.
    """
    rng = random.Random(seed)
    q = []
    pool = []
    for t, s, fn, a in _entries(rng, size, 0.0, MEAN_GAP):
        heappush(q, [t, s, fn, a])
    expo = rng.expovariate
    lam = 1.0 / MEAN_GAP
    seq = size
    t0 = time.perf_counter()
    for _ in range(ops):
        e = heappop(q)
        t = e[0]
        pool.append(e)
        seq += 1
        e2 = pool.pop()
        e2[0] = t + expo(lam)
        e2[1] = seq
        heappush(q, e2)
    wall = time.perf_counter() - t0
    return ops / wall


def _identity_check(n=20_000, seed=7) -> bool:
    """Both backends must pop an identical randomized schedule identically."""
    rng = random.Random(seed)
    script = []
    t = 0.0
    for i in range(n):
        t += rng.expovariate(1.0 / MEAN_GAP) * rng.choice((0.0, 0.3, 1.0, 9.0))
        script.append((t, i, None, ()))
    # Interleave pushes and pops while honouring the no-past-push
    # contract: shuffle each time-sorted chunk (push order != time
    # order), then pop only entries due before the next chunk's minimum
    # time -- so no push ever lands behind a popped entry.
    chunks = [script[k:k + 257] for k in range(0, n, 257)]
    pops = []
    for backend_cls in BACKENDS:
        shuffler = random.Random(seed + 1)  # identical order per backend
        be = backend_cls()
        out = []
        for i, chunk in enumerate(chunks):
            batch = chunk[:]
            shuffler.shuffle(batch)
            for e in batch:
                be.push(e)
            nxt = chunks[i + 1][0][0] if i + 1 < len(chunks) else float("inf")
            while len(be) and be.peek_time() <= nxt:
                out.append(be.pop())
        pops.append(out)
    return pops[0] == pops[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run; does not rewrite the JSON")
    parser.add_argument("--check", action="store_true",
                        help="identity + ratio-floor gates (CI)")
    parser.add_argument("--ops", type=int, default=None,
                        help="hold-model operations per cell "
                             "(default 200000, quick 40000)")
    args = parser.parse_args(argv)

    ops = args.ops or (40_000 if args.quick else 200_000)
    sizes = SIZES_QUICK if args.quick else SIZES_FULL

    identical = _identity_check()
    print(f"cross-backend pop-order identity: {'OK' if identical else 'FAIL'}")
    if not identical:
        print("calendar and heap backends disagree on pop order",
              file=sys.stderr)
        return 1

    models = {"hold": {}, "burst": {}}
    for size in sizes:
        cell = {}
        for backend_cls in BACKENDS:
            cell[backend_cls.name] = _hold(backend_cls, size, ops)
        cell["ratio"] = cell["calendar"] / cell["heap"]
        models["hold"][str(size)] = cell
        print(f"[hold  n={size:>6}] heap={cell['heap']:>11,.0f} ops/s  "
              f"calendar={cell['calendar']:>11,.0f} ops/s  "
              f"ratio={cell['ratio']:.2f}")
    for size in sizes:
        rounds = max(1, ops // size)
        cell = {}
        for backend_cls in BACKENDS:
            cell[backend_cls.name] = _burst(backend_cls, size, rounds)
        cell["ratio"] = cell["calendar"] / cell["heap"]
        models["burst"][str(size)] = cell
        print(f"[burst n={size:>6}] heap={cell['heap']:>11,.0f} ops/s  "
              f"calendar={cell['calendar']:>11,.0f} ops/s  "
              f"ratio={cell['ratio']:.2f}")

    pool_size = sizes[-1]
    pool_ops = _hold_entry_pool(pool_size, ops)
    plain_ops = models["hold"][str(pool_size)]["heap"]
    print(f"[hold  n={pool_size:>6}] entry-pool={pool_ops:>11,.0f} ops/s  "
          f"vs plain tuples {plain_ops:>11,.0f} ops/s  "
          f"({pool_ops / plain_ops:.2f}x)")

    if args.check:
        worst = min(cell["ratio"]
                    for model in models.values() for cell in model.values())
        print(f"worst calendar/heap ratio: {worst:.2f} "
              f"(floor {RATIO_FLOOR})")
        if worst < RATIO_FLOOR:
            print("calendar backend fell below the ratio floor",
                  file=sys.stderr)
            return 1

    record = {
        "name": "event-loop-throughput",
        "schema_version": schemas.version_for("event_loop_bench"),
        "version": repro.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "backends": [b.name for b in BACKENDS],
        "entries_per_op": 1,
        "mean_gap_us": MEAN_GAP,
        "hold_ops": ops,
        "models": models,
        "entry_pool": {
            "size": pool_size,
            "ops_per_sec": pool_ops,
            "vs_plain_tuples": pool_ops / plain_ops,
        },
    }
    assert schemas.validate(record) == "event_loop_bench"
    if not args.quick:
        RESULTS.mkdir(parents=True, exist_ok=True)
        OUT.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nwrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
