"""F11 -- availability under a crash-rate (MTBF) sweep.

Every path runs an independent stochastic crash/restart renewal process
(mean repair 2 ms) with the per-path MTBF swept from none down to 10 ms.
Expected shape: the single-path host's delivered fraction falls roughly
with its down-time fraction and its p99.9 is set by repair time, while
adaptive multipath holds near-total delivery with a bounded tail because
the controller ejects crashed paths and re-steers around them.
"""

from conftest import run_once

from repro.bench.figures import fig11_mtbf_sweep


def test_f11_mtbf_sweep(benchmark, report):
    text, data = run_once(benchmark, fig11_mtbf_sweep)
    report("F11", text)

    single, adaptive = data["single"], data["adaptive"]

    # Fault-free sanity: both deliver everything.
    assert single[0]["delivered_frac"] > 0.999
    assert adaptive[0]["delivered_frac"] > 0.999

    # Single path loses availability as the crash rate rises: at the
    # highest rate it has measurably lost packets.
    assert single[-1]["delivered_frac"] < single[0]["delivered_frac"] - 0.02

    # Adaptive multipath masks every swept rate: near-total delivery and
    # at the harshest rate strictly better than single path.
    for point in adaptive:
        assert point["delivered_frac"] > 0.98
    assert adaptive[-1]["delivered_frac"] > single[-1]["delivered_frac"]

    # Adaptive's tail stays bounded by detection + re-steer (well under
    # the 2 ms repair time that dominates the single-path tail).
    assert adaptive[-1]["p999"] < 3.0 * 2_000.0
    assert adaptive[-1]["p999"] < single[-1]["p999"]

    # The uptime collector sees real downtime at the harshest rate.
    assert adaptive[-1]["uptime"] < 1.0
