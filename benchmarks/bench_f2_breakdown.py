"""F2 -- last-mile latency breakdown.

Decomposes single-path delivery latency into NIC rx, queue wait, and
service-plus-stall from the per-packet stage timestamps.  Expected
shape: the p99 is dominated by *waiting* (queue + stall), not work; NIC
rx is negligible throughout.
"""

from conftest import run_once

from repro.bench.figures import fig2_breakdown


def test_f2_breakdown(benchmark, report):
    text, data = run_once(benchmark, fig2_breakdown)
    report("F2", text)

    nic = data["nic_rx"]
    queue = data["queue_wait"]
    service = data["service+stall"]

    # NIC rx is a rounding error at both mean and tail.
    assert nic["mean"] < 0.1 * (queue["mean"] + service["mean"])
    assert nic["p99"] < 0.1 * (queue["p99"] + service["p99"])
    # The tail is a waiting problem: queue wait's p99 exceeds its own
    # mean by a much larger factor than service does.
    assert queue["p99"] > 5.0 * max(queue["mean"], 0.1)
