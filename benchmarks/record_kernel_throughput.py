#!/usr/bin/env python
"""Measure single-core simulation-kernel throughput and record it.

The metric is **delivered packets per wall-clock second** for a fixed
reference scenario (adaptive policy, 4 paths, load 0.7) run on one core.
It is the number every sweep cell pays, so it is the throughput
trajectory BENCH_KERNEL.json tracks across PRs.

The kernel has two scheduler backends (``RunOptions.scheduler``): the
primary measurement uses the engine default (``calendar``) and a
reference run pins ``heap`` so the record tracks both.  ``--check``
additionally asserts that the two backends produce **byte-identical**
``SimulationResult.to_dict()`` payloads -- that gate is noise-free, so
it holds even on machines where the pps comparison needs tolerance.

Modes
-----
* default       -- best-of-N full-length runs; rewrites
                   ``benchmarks/results/BENCH_KERNEL.json``.
* ``--quick``    -- one short run (CI-sized); prints the measured pps.
* ``--check``    -- cross-backend identity gate, then compare the
                   measured pps against the committed baseline JSON and
                   exit nonzero on a regression worse than
                   ``--tolerance`` (default 20%).  With ``--quick`` the
                   comparison uses the recorded ``quick.pps`` field.

The recorded ``baseline_pps`` field is the pre-optimization kernel's
throughput on the same scenario; ``speedup`` is measured against it.

Usage:
  python benchmarks/record_kernel_throughput.py [--repeats N]
  python benchmarks/record_kernel_throughput.py --quick --check
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import repro
from repro import RunOptions
from repro.bench.scenarios import ScenarioConfig

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
OUT = RESULTS / "BENCH_KERNEL.json"

#: Pre-optimization throughput of the same reference scenario on the
#: machine that recorded the committed baseline (delivered pkts / wall s).
#: Kept for the speedup trajectory; --check compares like-for-like pps.
PRE_OPT_BASELINE_PPS = 24_131.0


def _scenario(quick: bool) -> ScenarioConfig:
    if quick:
        return ScenarioConfig(policy="adaptive", n_paths=4, load=0.7,
                              duration=30_000.0, warmup=5_000.0,
                              drain=10_000.0, seed=42)
    return ScenarioConfig(policy="adaptive", n_paths=4, load=0.7,
                          duration=120_000.0, warmup=10_000.0,
                          drain=20_000.0, seed=42)


def _measure(quick: bool, repeats: int, scheduler=None) -> dict:
    """Best-of-N wall clock (min rejects scheduler noise)."""
    best_wall = float("inf")
    delivered = 0
    opts = RunOptions(scheduler=scheduler)
    for _ in range(repeats):
        cfg = _scenario(quick)
        t0 = time.perf_counter()
        result = repro.run(cfg, opts)
        wall = time.perf_counter() - t0
        delivered = result.stats["delivered"]
        best_wall = min(best_wall, wall)
    return {
        "delivered": delivered,
        "wall_s": best_wall,
        "pps": delivered / best_wall,
    }


def _identity() -> bool:
    """heap and calendar backends must serialize byte-identically."""
    payloads = []
    for scheduler in ("heap", "calendar"):
        result = repro.run(_scenario(True), RunOptions(scheduler=scheduler))
        payloads.append(json.dumps(result.to_dict(), sort_keys=True))
    return payloads[0] == payloads[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short CI-sized run; does not rewrite the JSON")
    parser.add_argument("--check", action="store_true",
                        help="identity gate + compare against committed JSON")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions, best-of (default 3; 2 in --quick)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max allowed regression for --check (default 0.20)")
    args = parser.parse_args(argv)

    if args.check:
        identical = _identity()
        print("heap vs calendar result identity: "
              f"{'OK' if identical else 'FAIL'}")
        if not identical:
            print("scheduler backends disagree on results", file=sys.stderr)
            return 1

    repeats = min(args.repeats, 2) if args.quick else args.repeats
    measured = _measure(args.quick, repeats)
    mode = "quick" if args.quick else "full"
    print(f"[{mode}] delivered={measured['delivered']} "
          f"wall={measured['wall_s']:.2f}s pps={measured['pps']:,.0f}")

    if args.check:
        if not OUT.exists():
            print(f"no committed baseline at {OUT}", file=sys.stderr)
            return 1
        committed = json.loads(OUT.read_text())
        key = "quick" if args.quick else "full"
        base_pps = committed[key]["pps"]
        ratio = measured["pps"] / base_pps
        print(f"committed {key} baseline: {base_pps:,.0f} pps; "
              f"measured/baseline = {ratio:.2f}")
        if ratio < 1.0 - args.tolerance:
            print(f"kernel throughput regressed {1 - ratio:.1%} "
                  f"(> {args.tolerance:.0%} tolerance)", file=sys.stderr)
            return 1
        return 0

    if args.quick:
        return 0  # quick mode never rewrites the committed baseline

    heap_measured = _measure(False, repeats, scheduler="heap")
    print(f"[full:heap] delivered={heap_measured['delivered']} "
          f"wall={heap_measured['wall_s']:.2f}s "
          f"pps={heap_measured['pps']:,.0f}")

    quick_measured = _measure(True, 2)
    print(f"[quick] delivered={quick_measured['delivered']} "
          f"wall={quick_measured['wall_s']:.2f}s "
          f"pps={quick_measured['pps']:,.0f}")

    identical = _identity()
    print(f"heap vs calendar result identity: {'OK' if identical else 'FAIL'}")
    if not identical:
        print("refusing to record: backends disagree", file=sys.stderr)
        return 1

    record = {
        "name": "kernel-throughput",
        "version": repro.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "scenario": {"policy": "adaptive", "n_paths": 4, "load": 0.7,
                     "seed": 42},
        "scheduler": "calendar",
        "backends_identical": identical,
        "repeats": repeats,
        "full": measured,
        "full_heap": heap_measured,
        "quick": quick_measured,
        "baseline_pps": PRE_OPT_BASELINE_PPS,
        "speedup": measured["pps"] / PRE_OPT_BASELINE_PPS,
        "speedup_vs_heap": measured["pps"] / heap_measured["pps"],
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    print(f"speedup vs pre-optimization baseline "
          f"({PRE_OPT_BASELINE_PPS:,.0f} pps): {record['speedup']:.2f}x; "
          f"vs heap backend: {record['speedup_vs_heap']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
