"""F7 -- short-flow completion times on the websearch workload.

Same absolute workload for every configuration (~88% of one path's
capacity): the single-path baseline is the loaded status-quo host;
multipath relieves it with paths on spare cores.  Expected shape:
short-flow (<100 KB) p99 FCT improves by multiples, and overall-flow
p99 even more; static hashing helps (it adds capacity) but leaves
elephant collisions on the short-flow tail.
"""

from conftest import run_once

from repro.bench.figures import fig7_fct


def test_f7_fct(benchmark, report):
    text, data = run_once(benchmark, fig7_fct)
    report("F7", text)

    single, adaptive, hash_ = data["single"], data["adaptive"], data["hash"]
    # Identical workload: comparable completed-flow counts.
    assert single["flows"] > 120
    assert abs(adaptive["flows"] - single["flows"]) < 0.2 * single["flows"]
    # Multipath cuts both tails by multiples.
    assert adaptive["short_p99"] < 0.5 * single["short_p99"]
    assert adaptive["all_p99"] < 0.5 * single["all_p99"]
    # And still beats hashing's static spreading on the short-flow tail.
    assert adaptive["short_p99"] < hash_["short_p99"]