#!/usr/bin/env python
"""Record the CI sweep-smoke wall-clock accounting.

Loads the SweepResult artifact produced by the ``sweep-smoke`` CI job
(16 cells across 4 workers), writes its accounting block to
``benchmarks/results/BENCH_SWEEP_SMOKE.json`` -- the perf-trajectory
record the repo tracks across PRs -- and sanity-checks the parallel
speedup when the host actually has cores to parallelize over.

Usage:  python benchmarks/record_sweep_smoke.py <sweep-artifact.json>
"""

import json
import os
import pathlib
import sys

from repro.sweep import SweepResult

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
#: Required speedup on a multi-core host; cells are seconds-long so pool
#: overhead is noise, but CI runners are shared -- stay below the ~4x ideal.
MIN_SPEEDUP = 2.0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    sr = SweepResult.load(argv[1])
    acct = sr.accounting()
    record = {
        "name": "sweep-smoke",
        "spec": sr.spec["name"],
        "cpu_count": os.cpu_count(),
        **acct,
    }
    out = RESULTS / "BENCH_SWEEP_SMOKE.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    cores = os.cpu_count() or 1
    if sr.jobs >= 4 and cores >= 4 and acct["speedup"] < MIN_SPEEDUP:
        print(f"parallel speedup {acct['speedup']:.2f}x < {MIN_SPEEDUP}x "
              f"on a {cores}-core host", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
