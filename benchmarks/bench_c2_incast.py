"""C2 -- incast fan-in: single vs adaptive on the hotspot host.

N-1 senders direct all their flows at one target, so the target's last
mile absorbs the aggregate.  At identical offered load the aggregate
fits the target's four-path capacity but overwhelms any single path:
adaptive multipath should absorb the fan-in at full delivery while the
single-path baseline saturates.  Saturation with a bounded drop-tail
queue shows up as *delivery collapse plus median blowup*, not as an
exploding survivor p99 -- the packets that would have populated the
deep tail are dropped, and every survivor pays a nearly-full queue, so
the single-path distribution compresses against the queue's sojourn
cap.  The assertions below therefore compare delivery ratios and
medians; a fixed-percentile comparison over *survivors* would flatter
the policy that sheds half its traffic.
"""

from conftest import run_once

from repro.bench.cluster_figures import c2_incast_fanin


def _cell(data, policy):
    for c in data["cells"]:
        if c["policy"] == policy:
            return c
    raise KeyError(policy)


def test_c2_incast_fanin(benchmark, report):
    text, data = run_once(benchmark, c2_incast_fanin)
    report("C2", text)

    single = _cell(data, "single")
    adaptive = _cell(data, "adaptive")

    # Adaptive absorbs the fan-in; single-path saturates and sheds load.
    assert adaptive["delivery_ratio"] >= 0.99
    assert single["delivery_ratio"] < 0.7

    # The saturated single path delivers only through a nearly-full
    # bounded queue: its *median* blows up toward its own tail, while
    # adaptive keeps the median at healthy-queue levels.
    assert adaptive["target_p50"] < single["target_p50"] / 5.0
    assert single["target_p50"] > 0.3 * single["target_p99"]

    # Adaptive's tail stays bounded at full delivery: no worse than a
    # small factor of what the load-shedding baseline charges the
    # survivors it deigns to deliver.
    assert adaptive["target_p99"] < 1.5 * single["target_p99"]

    # All deliveries happen at the target under incast, so the merged
    # cluster tail tracks the target's (merged percentiles come from
    # retained order statistics, hence the small tolerance).
    assert abs(adaptive["cluster_p99"] - adaptive["target_p99"]) \
        <= 0.02 * adaptive["target_p99"]

    # Conservation holds under fan-in too (lossless fabric).
    for c in data["cells"]:
        assert c["fabric_dropped"] == 0
