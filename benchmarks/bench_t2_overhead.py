"""T2 -- CPU overhead per delivered packet.

Expected shape: non-replicating multipath policies cost within ~20% of
single path per packet (extra per-path caches and diluted batching);
redundant2 costs ~2x (every replica is fully processed and then thrown
away); adaptive's budgeted replication sits a few percent above the
non-replicating group.
"""

from conftest import run_once

from repro.bench.figures import table2_overhead


def test_t2_overhead(benchmark, report):
    text, data = run_once(benchmark, table2_overhead)
    report("T2", text)

    single = data["single"]["cpu"]
    # Steering is cheap.
    for policy in ("hash", "spray", "leastload", "flowlet", "po2"):
        assert data[policy]["cpu"] < 1.35 * single, policy
    # Full redundancy is not: every replica is fully processed at this
    # non-saturating load, so the cost approaches 2x.
    assert data["redundant2"]["cpu"] > 1.6 * single
    assert data["redundant2"]["replicas"] > 0
    # Adaptive replicates only within its budget: far cheaper than
    # full redundancy.
    assert data["adaptive"]["cpu"] < 0.75 * data["redundant2"]["cpu"]
