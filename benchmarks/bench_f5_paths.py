"""F5 -- scalability in path count.

A fixed aggregate offered load (80% of one path's capacity) is spread
over k = 1..8 paths under the adaptive policy.  Expected shape: large
tail gains from k=1 to k=2-4, diminishing returns beyond; goodput flat;
CPU per packet grows only mildly with k.
"""

from conftest import run_once

from repro.bench.figures import fig5_path_scaling


def test_f5_path_scaling(benchmark, report):
    text, data = run_once(benchmark, fig5_path_scaling)
    report("F5", text)

    ks = data["k"]
    p99 = dict(zip(ks, data["p99"]))
    cpu = dict(zip(ks, data["cpu"]))

    # Going multipath at all is the big win...
    assert p99[2] < 0.7 * p99[1]
    assert p99[4] < p99[1]
    # ...with diminishing returns at the top of the sweep.
    gain_1_to_4 = p99[1] / p99[4]
    gain_4_to_8 = p99[4] / p99[8]
    assert gain_1_to_4 > gain_4_to_8
    # Steering overhead stays modest: k=8 costs < 2x the k=1 CPU/packet.
    assert cpu[8] < 2.0 * cpu[1]
