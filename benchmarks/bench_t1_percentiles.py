"""T1 -- the latency-percentile comparison table.

All ten policies at the canonical operating point (load 0.7, heavy
chain, shared-core jitter).  The table's central lesson, and the paper's
motivation: **paths alone do not fix the tail** -- static per-flow
hashing and blind per-packet spraying leave p99 at the single-path level
(a packet still lands on a stalled path with the same probability);
only *reactive* steering (queue- or health-aware) cuts it.  Redundancy
at this load is saturated and melts down.
"""

from conftest import run_once

from repro.bench.figures import table1_percentiles


def test_t1_percentiles(benchmark, report):
    text, data = run_once(benchmark, table1_percentiles)
    report("T1", text)

    single_p99 = data["single"].p99
    # Reactive policies cut the tail decisively.
    for policy in ("leastload", "po2", "flowlet", "adaptive"):
        assert data[policy].p99 < 0.7 * single_p99, policy
    # Static/blind multipath does NOT (within +-40% of single).
    for policy in ("hash", "spray", "rr"):
        assert 0.6 * single_p99 < data[policy].p99 < 1.4 * single_p99, policy
    # Medians cluster: multipath is a tail mechanism, not a latency cut.
    assert data["adaptive"].p50 < 3.0 * data["single"].p50 + 5.0
    # Adaptive leads hash (static flow pinning) decisively at the tail.
    assert data["adaptive"].p99 < 0.7 * data["hash"].p99
    # Full redundancy at high load saturates: worst of everything.
    assert data["redundant2"].p99 > max(
        data[p].p99 for p in data if p != "redundant2"
    )
