"""F10 -- resilience to a mid-run path crash.

Path 0 crashes at 30% of the run (its queue is lost, its poller dies)
and restarts 25% later.  Expected shape: the single-path host loses
availability outright -- explicit loss while its only path is dead plus
a p99.9 two orders above its fault-free run -- while adaptive multipath
masks the crash: the controller ejects the dead path within a couple of
control ticks, re-steers its queue, and p99.9 stays within a small
multiple of fault-free.  Hash delivers everything but pays the re-steer
delay in its tail; full redundancy masks even the detection window.
"""

from conftest import run_once

from repro.bench.figures import fig10_faults


def test_f10_faults(benchmark, report):
    text, data = run_once(benchmark, fig10_faults)
    report("F10", text)

    single, adaptive, hash_, red2 = (
        data["single"], data["adaptive"], data["hash"], data["redundant2"])

    # Single path loses availability outright: explicit loss and a tail
    # set by the fault duration, not by queueing.
    assert single["delivered_frac"] < 0.95
    assert single["fault_p999"] > 20.0 * single["clean_p999"]
    assert single["lost"] > 0

    # Adaptive multipath masks the crash: near-total delivery and p99.9
    # within a small multiple of its fault-free run.
    assert adaptive["delivered_frac"] > 0.995
    assert adaptive["fault_p999"] < 5.0 * adaptive["clean_p999"] + 100.0

    # Static hashing survives only thanks to ejection re-steering: no
    # loss, but its tail pays the detection + re-steer delay.
    assert hash_["delivered_frac"] > 0.99
    assert hash_["rerouted"] > 0
    assert hash_["fault_p999"] > adaptive["fault_p999"]

    # Redundancy also masks the crash without losing availability.
    assert red2["delivered_frac"] > 0.98

    # The availability collectors report sane detection/recovery timings
    # for every multipath run (liveness timeout + a few control ticks).
    for d in (hash_, adaptive, red2):
        assert 0.0 < d["detection_lag"] < 5_000.0
        assert 0.0 <= d["recovery_time"] < 5_000.0
