#!/usr/bin/env python
"""Measure the invariant engine's overhead and gate the detached cost.

Two numbers on the kernel-throughput reference scenario (adaptive
policy, 4 paths, load 0.7 -- the same quick scenario
``record_kernel_throughput.py`` records):

* **detached** -- invariant hooks present but disarmed (the
  ``NullInvariants`` guard every component ships with).  This is what
  every ordinary simulation pays, so it is gated: ``--check`` fails if
  detached pps falls more than ``--tolerance`` (default 2%) below a
  back-to-back **reference** run of the same scenario through the bare
  ``repro.run(cfg)`` kernel path, measured in the same process.  The
  committed ``quick.pps`` from ``BENCH_KERNEL.json`` is also printed,
  but only informationally: machine-to-machine drift (CI runner vs the
  box that recorded the baseline) is far larger than 2%, so an absolute
  gate at that tolerance would measure the hardware, not the hooks.
* **armed** -- every invariant family on (``CheckSpec()`` defaults).
  Reported for the trajectory; armed checking is a debugging/CI mode
  and carries no gate.

Usage:
  python benchmarks/record_check_overhead.py [--repeats N]   # record JSON
  python benchmarks/record_check_overhead.py --check         # CI gate
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import repro
from repro.bench.scenarios import ScenarioConfig

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
OUT = RESULTS / "BENCH_CHECK_OVERHEAD.json"
KERNEL_BASELINE = RESULTS / "BENCH_KERNEL.json"


def _scenario() -> ScenarioConfig:
    # Must match record_kernel_throughput.py's --quick scenario: the
    # detached gate compares against its committed quick.pps.
    return ScenarioConfig(policy="adaptive", n_paths=4, load=0.7,
                          duration=30_000.0, warmup=5_000.0,
                          drain=10_000.0, seed=42)


def _measure(repeats: int, check=None, reference: bool = False) -> dict:
    """Best-of-N wall clock (min rejects scheduler noise).

    ``reference=True`` runs the bare ``repro.run(cfg)`` kernel path --
    no ``RunOptions`` at all -- which is exactly what
    ``record_kernel_throughput.py`` times.
    """
    best_wall = float("inf")
    delivered = 0
    for _ in range(repeats):
        cfg = _scenario()
        if reference:
            t0 = time.perf_counter()
            result = repro.run(cfg)
        else:
            options = repro.RunOptions(check=check)
            t0 = time.perf_counter()
            result = repro.run(cfg, options)
        wall = time.perf_counter() - t0
        delivered = result.stats["delivered"]
        best_wall = min(best_wall, wall)
    return {
        "delivered": delivered,
        "wall_s": best_wall,
        "pps": delivered / best_wall,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="gate detached pps against a same-process "
                             "reference run of the bare kernel path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions, best-of (default 3; 2 with "
                             "--check)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="max allowed detached regression vs the "
                             "same-process reference (default 0.02)")
    args = parser.parse_args(argv)

    repeats = min(args.repeats, 2) if args.check else args.repeats
    reference = _measure(repeats, reference=True)
    detached = _measure(repeats, check=None)
    armed = _measure(repeats, check=True)
    overhead = 1.0 - armed["pps"] / detached["pps"]
    detached_cost = 1.0 - detached["pps"] / reference["pps"]
    print(f"[reference] delivered={reference['delivered']} "
          f"wall={reference['wall_s']:.2f}s pps={reference['pps']:,.0f}")
    print(f"[detached]  delivered={detached['delivered']} "
          f"wall={detached['wall_s']:.2f}s pps={detached['pps']:,.0f} "
          f"(vs reference {detached_cost:+.1%})")
    print(f"[armed]     delivered={armed['delivered']} "
          f"wall={armed['wall_s']:.2f}s pps={armed['pps']:,.0f} "
          f"(armed overhead {overhead:.1%})")
    if KERNEL_BASELINE.exists():
        committed = json.loads(KERNEL_BASELINE.read_text())
        base_pps = committed["quick"]["pps"]
        print(f"committed kernel quick baseline: {base_pps:,.0f} pps "
              f"(informational; detached/committed = "
              f"{detached['pps'] / base_pps:.2f})")

    if args.check:
        if detached_cost > args.tolerance:
            print(f"detached invariant hooks cost {detached_cost:.1%} "
                  f"(> {args.tolerance:.0%} tolerance)", file=sys.stderr)
            return 1
        return 0

    record = {
        "name": "check-overhead",
        "version": repro.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "scenario": {"policy": "adaptive", "n_paths": 4, "load": 0.7,
                     "seed": 42},
        "repeats": repeats,
        "reference": reference,
        "detached": detached,
        "armed": armed,
        "detached_cost": detached_cost,
        "armed_overhead": overhead,
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
