"""Shared benchmark fixtures.

Every bench regenerates one reconstructed figure/table via
``repro.bench.figures``, saves the rendered text under
``benchmarks/results/``, and echoes it to the terminal (bypassing pytest
capture) so ``pytest benchmarks/ --benchmark-only | tee`` records the
actual experiment output, not just timings.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to scale every experiment's
duration, e.g. ``REPRO_BENCH_SCALE=0.2`` for a quick pass.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Save an experiment's rendered output and print it uncaptured."""

    def _report(exp_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
