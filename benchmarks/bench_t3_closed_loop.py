"""T3 -- closed-loop RPC: throughput and RTT tail vs concurrency.

Closed-loop clients self-throttle (a new request is issued only when a
response returns), so this experiment measures the regime the open-loop
figures cannot: throughput-at-concurrency.  Expected shape: at small
windows both data planes are RTT-bound and deliver similar throughput;
as the window grows the single path saturates while multipath keeps
scaling, and the RTT tail advantage holds throughout.
"""

from conftest import run_once

from repro.bench.figures import table3_closed_loop


def test_t3_closed_loop(benchmark, report):
    text, data = run_once(benchmark, table3_closed_loop)
    report("T3", text)

    single = data["single"]
    adaptive = data["adaptive"]
    # At the largest window multipath sustains materially more RPCs/s.
    assert adaptive[-1]["rps"] > 1.5 * single[-1]["rps"]
    # At the smallest window throughput is RTT-bound and comparable.
    assert adaptive[0]["rps"] > 0.7 * single[0]["rps"]
    # The RTT tail advantage holds once there is contention (at the
    # smallest window the uncontended single path wins by ~1 us: the
    # multipath host pays slightly colder per-path caches, an honest
    # no-contention overhead).
    for s, a in zip(single[1:], adaptive[1:]):
        assert a["rtt_p99"] < s["rtt_p99"]
