"""C1 -- cluster scale: hosts x load -> cluster tail + aggregate pps.

N independent last miles behind a shared multipath fabric, uniform
destination pattern.  Aggregate delivered pps should scale ~linearly
with the host count at fixed load (the hosts are independent), the
cluster p99 should be load-driven rather than host-count driven, and
the cross-shard conservation identity should hold exactly: every
envelope sent is received (lossless fabric, no drops).
"""

from conftest import run_once

from repro.bench.cluster_figures import c1_cluster_scale


def _cell(data, hosts, load):
    for c in data["cells"]:
        if c["hosts"] == hosts and c["load"] == load:
            return c
    raise KeyError((hosts, load))


def test_c1_cluster_scale(benchmark, report):
    text, data = run_once(benchmark, c1_cluster_scale)
    report("C1", text)

    lo, hi = min(data["loads"]), max(data["loads"])

    for c in data["cells"]:
        # Exact conservation: sent == received, nothing dropped.
        assert c["envelopes_sent"] == c["envelopes_received"]
        assert c["fabric_dropped"] == 0
        # Uniform pattern: the remote fraction is (N-1)/N of traffic.
        expected = (c["hosts"] - 1) / c["hosts"]
        assert abs(c["remote_fraction"] - expected) < 0.05

    # Below saturation everything is delivered.
    for n in data["hosts"]:
        assert _cell(data, n, lo)["delivery_ratio"] >= 0.99

    # Aggregate throughput scales ~linearly with the host count
    # (the registry's default grid doubles it at each step).
    for load in data["loads"]:
        pps = [_cell(data, n, load)["delivered_pps"] for n in data["hosts"]]
        for i, ratio in enumerate(b / max(a, 1.0)
                                  for a, b in zip(pps, pps[1:])):
            assert ratio > 1.6, (
                f"{data['hosts'][i]}->{data['hosts'][i + 1]} hosts at "
                f"load {load} scaled delivered pps only {ratio:.2f}x"
            )

    # The tail is load-driven: heavier load, fatter tail, per host count.
    for n in data["hosts"]:
        assert _cell(data, n, hi)["p99"] > _cell(data, n, lo)["p99"]
