"""A1 -- ablation: flowlet-timeout sensitivity.

Expected shape: reordering (held fraction) decreases monotonically as
the timeout grows; p99 is U-shaped-ish -- tiny timeouts pay reorder
delay, huge timeouts lose rebalancing agility -- with a broad usable
middle (which is why flowlet switching is practical at all).
"""

from conftest import run_once

from repro.bench.figures import ablation1_flowlet_timeout


def test_a1_flowlet_timeout(benchmark, report):
    text, data = run_once(benchmark, ablation1_flowlet_timeout)
    report("A1", text)

    held = data["held_frac"]
    # Reordering shrinks as the timeout grows (compare the extremes).
    assert held[0] > held[-1]
    # The middle of the sweep is not worse than both extremes combined:
    # best overall p99 is achieved away from the smallest timeout.
    p99 = data["p99"]
    assert min(p99) <= p99[0]
