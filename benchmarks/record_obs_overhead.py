#!/usr/bin/env python
"""Measure the observability subsystem's overhead and record it.

Two numbers matter:

* **disabled overhead** -- the cost the telemetry *guards* add to an
  uninstrumented run (every trace site is ``if tracer.enabled:`` against
  the shared NullTracer).  Measured two ways: a macro A/B of the same
  scenario run repeatedly (noise-prone but honest), and a micro estimate
  (guard cost in ns x guard evaluations per run / run wall time) that is
  stable on shared CI runners.  The acceptance bar is < 5%.
* **enabled overhead** -- the full price of span + metrics collection,
  reported for documentation (no bar; tracing is opt-in).

Writes ``benchmarks/results/BENCH_OBS_OVERHEAD.json`` and exits nonzero
if the micro-estimated disabled overhead breaches the bar.

Usage:  python benchmarks/record_obs_overhead.py [--repeats N]
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.obs import NullTracer, Telemetry

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
#: Acceptance bar: guards must cost the uninstrumented path < 5%.
MAX_DISABLED_OVERHEAD = 0.05
#: Guard evaluations per *delivered* packet: nic dispatch (1), poller
#: stages (1 per batch, amortized < 1), path completion (1), sink (1),
#: reorder drain (< 1).  4 is a deliberate overestimate.
GUARDS_PER_PACKET = 4


def _scenario() -> ScenarioConfig:
    return ScenarioConfig(policy="adaptive", n_paths=4, load=0.7,
                          duration=30_000.0, warmup=5_000.0,
                          drain=10_000.0, seed=13)


def _wall(telemetry_factory, repeats: int) -> float:
    """Best-of-N wall clock for one run_scenario() variant (min rejects noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_scenario(_scenario(), telemetry=telemetry_factory())
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_cost_ns(n: int = 2_000_000) -> float:
    """Cost of one ``if tracer.enabled`` check against the NullTracer."""
    tracer = NullTracer
    t0 = time.perf_counter()
    hits = 0
    for _ in range(n):
        if tracer.enabled:
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits == 0
    # Subtract the bare-loop cost so only the guard itself is charged.
    t0 = time.perf_counter()
    for _ in range(n):
        pass
    elapsed -= time.perf_counter() - t0
    return max(0.0, elapsed) * 1e9 / n


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="macro A/B repetitions per variant (default 3)")
    args = parser.parse_args(argv)

    off_wall = _wall(lambda: None, args.repeats)
    on_wall = _wall(Telemetry, args.repeats)
    result = run_scenario(_scenario())
    delivered = result.stats["delivered"]

    guard_ns = _guard_cost_ns()
    guard_evals = delivered * GUARDS_PER_PACKET
    disabled_micro = guard_evals * guard_ns * 1e-9 / off_wall
    disabled_macro = on_wall / off_wall - 1.0  # context only; includes 'on'

    record = {
        "name": "obs-overhead",
        "cpu_count": os.cpu_count(),
        "scenario": {"policy": "adaptive", "n_paths": 4, "load": 0.7,
                     "delivered": delivered},
        "repeats": args.repeats,
        "wall_off_s": off_wall,
        "wall_on_s": on_wall,
        "enabled_overhead_frac": max(0.0, on_wall / off_wall - 1.0),
        "guard_cost_ns": guard_ns,
        "guard_evals_per_run": guard_evals,
        "disabled_overhead_frac": disabled_micro,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    RESULTS.mkdir(parents=True, exist_ok=True)
    out = RESULTS / "BENCH_OBS_OVERHEAD.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\ndisabled (guard) overhead: {disabled_micro:.3%} "
          f"(bar {MAX_DISABLED_OVERHEAD:.0%}); "
          f"enabled overhead: {record['enabled_overhead_frac']:.1%}; "
          f"macro on/off delta {disabled_macro:+.1%}")

    if disabled_micro >= MAX_DISABLED_OVERHEAD:
        print(f"disabled telemetry overhead {disabled_micro:.2%} exceeds "
              f"the {MAX_DISABLED_OVERHEAD:.0%} bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
