"""The CI tail-regression gate, built on the run ledger.

Runs the canonical gate scenario (fixed config + seed, forensicated),
records it into ``benchmarks/results/LEDGER.jsonl``, and diffs the
fresh entry against the committed ``baseline`` entry with bootstrap
CIs (:func:`repro.obs.ledger.diff_entries`).  The simulated latencies
are a pure function of (config, seed, code), so on an unchanged tree
the diff is exact and the gate is noise-free; a change that slows the
tail by more than ``--max-regress`` (default 20%) fails with exit 1.

Usage::

    python benchmarks/record_ledger_gate.py              # CI gate
    python benchmarks/record_ledger_gate.py --baseline   # re-baseline

``--baseline`` appends a new ``baseline`` entry (diffs always pick the
latest entry per label) -- run it after an *intentional*
perf-affecting change and commit the updated LEDGER.jsonl.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

import repro  # noqa: E402
from repro.obs.ledger import (  # noqa: E402
    DEFAULT_LEDGER,
    append_entry,
    build_entry,
    diff_entries,
    load_ledger,
    render_diff,
    select_entry,
)

#: The gate scenario: the repo's reference multipath configuration,
#: long enough for a stable p99.9 yet a few seconds of wall clock.
GATE_CONFIG = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=30_000.0,
    warmup=5_000.0,
    drain=10_000.0,
    seed=42,
)

KERNEL_RECORD = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results",
    "BENCH_KERNEL.json",
)


def run_gate_entry(label: str) -> dict:
    """Simulate the gate scenario, forensicated, and build its entry."""
    result = repro.run(
        repro.ScenarioConfig(**GATE_CONFIG),
        repro.RunOptions(
            telemetry=repro.Telemetry(metrics_interval=0.0),
            forensics=True,
        ),
    )
    kernel_pps = None
    if os.path.exists(KERNEL_RECORD):
        try:
            with open(KERNEL_RECORD) as fh:
                kernel_pps = json.load(fh).get("full", {}).get("pps")
        except (OSError, json.JSONDecodeError):
            kernel_pps = None
    return build_entry(result, label, kind="gate", kernel_pps=kernel_pps)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="store_true",
                        help="append a fresh 'baseline' entry instead of "
                             "gating against the committed one")
    parser.add_argument("--ledger", default=DEFAULT_LEDGER,
                        help=f"ledger path (default {DEFAULT_LEDGER})")
    parser.add_argument("--max-regress", type=float, default=0.2,
                        help="tail regression bar (default 0.2 = 20%%)")
    args = parser.parse_args(argv)

    if args.baseline:
        entry = run_gate_entry("baseline")
        index = append_entry(entry, args.ledger)
        print(f"baseline recorded as entry {index} in {args.ledger}: "
              f"p50={entry['exact']['p50']:.1f}us "
              f"p99={entry['exact']['p99']:.1f}us "
              f"p99.9={entry['exact']['p999']:.1f}us")
        print("commit the updated ledger to make this the gate reference")
        return 0

    entries = load_ledger(args.ledger)
    try:
        baseline = select_entry(entries, "baseline")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("run `python benchmarks/record_ledger_gate.py --baseline` "
              "and commit the ledger first", file=sys.stderr)
        return 2

    candidate = run_gate_entry("gate")
    append_entry(candidate, args.ledger)
    diff = diff_entries(baseline, candidate, max_regress=args.max_regress)
    print(render_diff(diff))
    if not diff["comparable"]:
        print("error: gate config drifted from the baseline entry -- "
              "re-baseline with --baseline", file=sys.stderr)
        return 2
    return 0 if diff["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
