"""A2 -- ablation: straggler-detector sensitivity.

Head-of-line detection threshold swept with a 4x noisy neighbor active
mid-run.  Measured shape (see EXPERIMENTS.md): the curve's *left* arm is
the sharp one -- a hair-trigger threshold (10 µs) causes jumpy steering
and herding that blow up p99.9 -- while the right arm is gentler because
the detector's EWMA and queue-depth rules still catch the neighbor when
the head-of-line rule is slack; p99 degrades steadily as detection gets
later.
"""

from conftest import run_once

from repro.bench.figures import ablation2_detector


def test_a2_detector(benchmark, report):
    text, data = run_once(benchmark, ablation2_detector)
    report("A2", text)

    p99 = data["p99"]
    p999 = data["p999"]
    # The best p99.9 sits at an intermediate threshold: both a
    # hair-trigger (reorder churn from jumpy steering) and a slack
    # threshold (missed stalls) are worse than the knee.
    best = p999.index(min(p999))
    assert 0 < best < len(p999) - 1
    assert min(p999) < 0.95 * p999[0]
    assert min(p999) < 0.97 * p999[-1]
    # Later detection costs p99: the largest threshold is worse than the
    # smallest on p99 (where hair-trigger steering still helps).
    assert p99[-1] > p99[0]
