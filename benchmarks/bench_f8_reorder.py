"""F8 -- reordering overhead of per-packet vs per-flowlet steering.

Expected shape: per-packet spraying (rr/spray/leastload) buffers a
visible fraction of packets in the reorder stage; flowlet and adaptive
steering keep that fraction near zero because path changes only happen
at flowlet gaps.
"""

from conftest import run_once

from repro.bench.figures import fig8_reorder


def test_f8_reorder(benchmark, report):
    text, data = run_once(benchmark, fig8_reorder)
    report("F8", text)

    # Spraying reorders far more than flowlet-granularity steering.
    assert data["spray"]["held_frac"] > 5.0 * max(data["flowlet"]["held_frac"], 1e-5)
    assert data["rr"]["held_frac"] > 5.0 * max(data["flowlet"]["held_frac"], 1e-5)
    # Adaptive stays close to flowlet's footprint.
    assert data["adaptive"]["held_frac"] < 0.5 * data["spray"]["held_frac"]
    # Held packets pay a real price: nonzero mean hold time under spray.
    assert data["spray"]["mean_hold"] > 0.0
