"""E-SLO2 -- autotuner reaction to an injected path crash.

Both runs start with 2 of 4 paths active at a load one path cannot
carry; path 0 crashes mid-run.  The static baseline is down to a single
live path until the crashed one returns and violates its SLO throughout
the fault; the autotuner unparks spare capacity within a cooldown or
two, so attainment recovers while the fault is still active and the
during-crash window attainment stays well above the baseline's.
"""

from conftest import run_once

from repro.bench.slo_experiments import slo2_fault_recovery


def test_slo2_fault_recovery(benchmark, report):
    text, data = run_once(benchmark, slo2_fault_recovery)
    report("SLO2", text)

    static, auto = data["static-2"], data["autotuned"]

    # Before the crash both provisionings attain the SLO.
    assert static["pre_attain"] >= 0.8
    assert auto["pre_attain"] >= 0.8

    # The autotuner actually unparked spare capacity in response.
    assert auto["unparks"] >= 1
    assert static["unparks"] == 0

    # Attainment recovers while the fault is still active -- strictly
    # faster than the static baseline, which can only wait the fault
    # out (its recovery is bounded below by the crash duration).
    assert auto["recover_us"] is not None
    assert auto["recover_us"] < data["crash_for"]
    if static["recover_us"] is not None:
        assert auto["recover_us"] < static["recover_us"]

    # During the crash the autotuned run keeps most windows green; the
    # static run loses most of them.
    assert auto["crash_attain"] > static["crash_attain"] + 0.3

    # Overall attainment: tuner above baseline.
    assert auto["attainment"] > static["attainment"]
