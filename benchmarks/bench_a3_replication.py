"""A3 -- ablation: selective-replication budget.

All-small-RPC traffic (every packet replication-eligible), budget swept
0 -> 1 at low and high load.  Expected shape: at low load more
replication keeps buying p99.9; at high load the curve turns -- the
replicas congest the paths they were meant to insure against -- and CPU
cost grows with budget at both loads.
"""

from conftest import run_once

from repro.bench.figures import ablation3_replication


def test_a3_replication(benchmark, report):
    text, data = run_once(benchmark, ablation3_replication)
    report("A3", text)

    budgets = data["budgets"]
    rows = data["rows"]
    lo, hi = 0.4, 0.8

    # CPU grows with budget at both loads.
    assert rows[budgets[-1]][lo][1] > rows[budgets[0]][lo][1]
    assert rows[budgets[-1]][hi][1] > rows[budgets[0]][hi][1]
    # At low load, generous replication beats none on p99.9.
    assert rows[1.0][lo][0] < rows[0.0][lo][0]
    # At high load, full replication is no longer the best choice:
    # some intermediate budget does at least as well.
    best_hi = min(rows[b][hi][0] for b in budgets)
    assert best_hi <= rows[1.0][hi][0]
