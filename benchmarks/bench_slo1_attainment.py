"""E-SLO1 -- SLO attainment vs resource cost across load x interference.

Three provisioning strategies at identical offered load (k=4 so the
load convention matches everywhere): static-1 keeps one path active,
static-4 all four, and the autotuner starts from one and scales on
violations.  Expected shape: once a single path saturates, static-1
misses the p99 objective while the autotuner scales out and holds
steady-state attainment near static-4's -- and at low load the
autotuner attains the SLO at a fraction of static-4's path-seconds.
"""

from conftest import run_once

from repro.bench.slo_experiments import slo1_attainment


def _cell(data, load, interference, strategy):
    for c in data["cells"]:
        if (c["load"] == load and c["interference"] == interference
                and c["strategy"] == strategy):
            return c
    raise KeyError((load, interference, strategy))


def test_slo1_attainment(benchmark, report):
    text, data = run_once(benchmark, slo1_attainment)
    report("SLO1", text)

    hi = max(data["loads"])
    lo = min(data["loads"])

    # Past single-path saturation, the static single path misses the
    # SLO badly while the autotuner keeps (post-ramp) attainment high.
    s1 = _cell(data, hi, 0.0, "static-1")
    auto = _cell(data, hi, 0.0, "autotuned")
    assert s1["steady_attainment"] < 0.6
    assert auto["steady_attainment"] >= 0.9
    assert auto["steady_attainment"] > s1["steady_attainment"] + 0.3
    assert auto["n_decisions"] > 0  # it actually had to act

    # Static-4 always attains -- it is the over-provisioned reference.
    for load in data["loads"]:
        for intensity in data["interference"]:
            s4 = _cell(data, load, intensity, "static-4")
            assert s4["attainment"] >= 0.95

    # At low load the autotuner attains the SLO while spending well
    # under static-4's path-seconds (that is the point of the tuner).
    s4_lo = _cell(data, lo, 0.0, "static-4")
    auto_lo = _cell(data, lo, 0.0, "autotuned")
    assert auto_lo["steady_attainment"] >= 0.9
    assert auto_lo["path_seconds"] < 0.6 * s4_lo["path_seconds"]

    # Resource cost tracks offered load: heavier cells spend more.
    auto_hi = _cell(data, hi, 0.0, "autotuned")
    assert auto_hi["path_seconds"] > auto_lo["path_seconds"]

    # Interference on one path makes the single-path baseline worse,
    # never better, at the same load.
    s1_int = _cell(data, lo, max(data["interference"]), "static-1")
    s1_clean = _cell(data, lo, 0.0, "static-1")
    assert s1_int["attainment"] <= s1_clean["attainment"] + 0.05
