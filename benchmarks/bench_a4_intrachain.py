"""A4 -- ablation: intra-chain (ParaGraph) vs cross-chain (MPDP) parallelism.

Expected shape: stage-parallel composition improves the *median* (it
shortens per-packet service time) but its tail stays close to the serial
single-path baseline (same vCPU, same stalls); multipath barely moves
the median and crushes the tail.  Complementary mechanisms.
"""

from conftest import run_once

from repro.bench.figures import ablation4_intrachain


def test_a4_intrachain(benchmark, report):
    text, data = run_once(benchmark, ablation4_intrachain)
    report("A4", text)

    serial = data["serial, 1 path"]
    para = data["stage-parallel, 1 path"]
    opt = data["subgraph-optimal, 1 path"]
    mpdp = data["serial, 4 paths (MPDP)"]

    # Intra-chain parallelism shortens service time (median).
    assert para.p50 < serial.p50
    # Subgraph-level selection is at least as good as all-or-nothing.
    assert opt.p50 < 1.1 * min(serial.p50, para.p50)
    # ...but none of them fix the tail the way multipath does.
    assert mpdp.p99 < 0.7 * para.p99
    assert mpdp.p99 < 0.7 * serial.p99
    assert mpdp.p99 < 0.7 * opt.p99
