"""F6 -- noisy-neighbor interference resilience.

A contention factor of 0-6x is applied to one core mid-run.  For the
single-path host that core is its only lane; the multipath host has
three clean alternatives.  Expected shape: single-path p99 scales with
intensity; hash improves on it (only 1/4 of flows are pinned to the
victim) but cannot move them; adaptive stays near its uncontended
baseline by steering around the victim.
"""

from conftest import run_once

from repro.bench.figures import fig6_interference


def test_f6_interference(benchmark, report):
    text, data = run_once(benchmark, fig6_interference)
    report("F6", text)

    # Interference devastates the single path...
    assert data["single"][-1] > 2.0 * data["single"][0]
    # ...while adaptive holds its tail close to the clean baseline.
    assert data["adaptive"][-1] < 3.0 * data["adaptive"][0] + 20.0
    # And at max intensity the ordering is adaptive < hash < single.
    assert data["adaptive"][-1] < data["hash"][-1] < data["single"][-1]
