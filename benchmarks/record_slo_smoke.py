#!/usr/bin/env python
"""Record the CI slo-smoke determinism check.

Runs one tiny autotuned SLO scenario three times -- twice bare, once
with full telemetry attached -- and requires the three ``slo_report``
payloads (windows, decisions, path-seconds) to be canonical-JSON
identical: the SLO engine is part of the result contract, so a fixed
``(seed, config, spec)`` must produce a bit-identical report whether or
not the run was observed.  Writes the attainment record to
``benchmarks/results/BENCH_SLO_SMOKE.json``.

Usage:  python benchmarks/record_slo_smoke.py
"""

import json
import pathlib
import sys

import repro

RESULTS = pathlib.Path(__file__).resolve().parent / "results"


def _spec():
    return repro.SloSpec(
        objectives=("p99 <= 150us", "delivery >= 99%"),
        window=2_000.0,
        autotune=True,
        start_paths=1,
        cooldown=4_000.0,
        hold_windows=4,
        margin=0.7,
    )


def _run(telemetry=None):
    result = repro.run(
        options=repro.RunOptions(slo=_spec(), telemetry=telemetry),
        policy="adaptive", n_paths=4, chain="heavy", load=0.35,
        duration=30_000.0, warmup=5_000.0, drain=10_000.0, seed=42,
    )
    return result


def main():
    first = _run()
    second = _run()
    tel = repro.Telemetry()
    traced = _run(telemetry=tel)

    payloads = [json.dumps(r.slo_report, sort_keys=True)
                for r in (first, second, traced)]
    if payloads[0] != payloads[1]:
        print("slo_report differs between identical bare runs", file=sys.stderr)
        return 1
    if payloads[0] != payloads[2]:
        print("slo_report differs when telemetry is attached", file=sys.stderr)
        return 1

    rep = first.slo_report
    if rep["n_windows"] == 0:
        print("smoke run closed no attainment windows", file=sys.stderr)
        return 1
    if not rep["decisions"]:
        print("autotuner made no decisions in the smoke scenario",
              file=sys.stderr)
        return 1

    slo_events = [e for e in tel.events if e.track == "slo"]
    record = {
        "name": "slo-smoke",
        "objectives": rep["spec"]["objectives"],
        "n_windows": rep["n_windows"],
        "attained": rep["attained"],
        "attainment": rep["attainment"],
        "path_seconds": rep["path_seconds"],
        "n_decisions": len(rep["decisions"]),
        "final_active": rep["active_log"][-1][1],
        "slo_events": len(slo_events),
        "deterministic": True,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_SLO_SMOKE.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
