"""F3 -- p99 latency vs offered load (the headline figure).

Six policies swept over offered load on the heavy chain with k=4 paths.
Expected shape: single path grows fastest; adaptive multipath stays flat
longest; redundant2 is great at low load and collapses first as load
rises (it doubles the CPU work per packet).
"""

from conftest import run_once

from repro.bench.figures import fig3_load_sweep


def test_f3_load_sweep(benchmark, report):
    text, data = run_once(benchmark, fig3_load_sweep)
    report("F3", text)

    loads = data["loads"]
    mid = loads.index(0.7) if 0.7 in loads else len(loads) // 2

    # At moderate load multipath beats single path on p99 by multiples.
    assert data["adaptive"][mid] < 0.5 * data["single"][mid]
    # Redundancy collapses at the top of the sweep: worst of all
    # multipath policies at the highest load.
    top = -1
    assert data["redundant2"][top] > data["adaptive"][top]
    assert data["redundant2"][top] > data["spray"][top]
    # ...but is competitive at the lowest load.
    assert data["redundant2"][0] <= 1.5 * data["adaptive"][0] + 5.0
    # Every policy degrades monotonically-ish with load (tails can be
    # noisy; compare the endpoints).
    for policy in ("single", "adaptive", "spray"):
        assert data[policy][-1] > data[policy][0]
