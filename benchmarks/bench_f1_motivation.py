"""F1 -- motivation: the virtualization tail tax.

Regenerates the single-path latency-vs-jitter-profile comparison.
Expected shape: medians barely move across profiles; p99/p99.9 inflate
by an order of magnitude or more as scheduling jitter grows.
"""

from conftest import run_once

from repro.bench.figures import fig1_motivation


def test_f1_motivation(benchmark, report):
    text, data = run_once(benchmark, fig1_motivation)
    report("F1", text)

    none = data["none (bare-metal-like)"]
    shared = data["shared core"]
    contended = data["contended core"]

    # The tail tax: jitter inflates p99 dramatically...
    assert shared.p99 > 2.0 * none.p99
    assert contended.p99 > 10.0 * none.p99
    # ...while the no-jitter median stays small (it is a work metric,
    # not a waiting metric).
    assert none.p50 < 10.0
    assert shared.p50 < 3.0 * none.p50 + 5.0
