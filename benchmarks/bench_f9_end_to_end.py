"""F9 -- end-to-end RPC RTT across a fabric.

Two virtualized hosts behind a well-behaved 12 µs fabric; only the
hosts' data planes change.  Expected shape: RTT medians cluster near the
2x fabric crossing + service, while the RTT tail is host-dominated --
adaptive multipath hosts cut p99 by multiples vs single-path hosts, and
static hashing lands in between.
"""

from conftest import run_once

from repro.bench.figures import fig9_end_to_end


def test_f9_end_to_end(benchmark, report):
    text, data = run_once(benchmark, fig9_end_to_end)
    report("F9", text)

    single = data["single-path hosts"]
    hashed = data["hash k=4 hosts"]
    adaptive = data["adaptive k=4 hosts"]

    assert single["rtts"] > 2_000
    # The RTT floor is two fabric crossings (~24 us): medians sit close.
    assert adaptive["p50"] < 2.0 * single["p50"]
    # The tail is last-mile-dominated: multipath wins by multiples.
    assert adaptive["p99"] < 0.5 * single["p99"]
    # Static hashing helps less than adaptive.
    assert adaptive["p99"] < hashed["p99"]
