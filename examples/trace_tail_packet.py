#!/usr/bin/env python
"""Trace the p99.9 packet: where did a tail-latency victim spend its time?

Runs a bursty (ON/OFF) scenario with telemetry attached, asks the span
tracer for the packet whose end-to-end latency sits at the 99.9th
percentile, and prints its full span timeline next to the aggregate
stage breakdown.  This is the paper's tail-latency question made
concrete: for *this specific packet*, was it the vSwitch queue, a
scheduler stall, slow NF service, or the reorder buffer?

Also exports the Perfetto-loadable trace bundle so the same packet can
be inspected visually (load ``trace-tail-packet/trace.json`` at
https://ui.perfetto.dev).

Run:  python examples/trace_tail_packet.py
"""

import repro
from repro.obs import (
    breakdown_table,
    dominant_stage,
    percentile_packet,
    timeline_table,
)

LOAD = 0.75           # offered utilization per path
BURSTINESS = 4.0      # ON/OFF peak rate = 4x the mean
DURATION_US = 60_000.0
WARMUP_US = 10_000.0
SEED = 21
OUT_DIR = "trace-tail-packet"


def main() -> int:
    """Run the bursty scenario, print the p99.9 packet's span timeline."""
    tel = repro.Telemetry()
    result = repro.run(
        options=repro.RunOptions(telemetry=tel),
        policy="adaptive", n_paths=4, traffic="onoff", load=LOAD,
        burstiness=BURSTINESS, duration=DURATION_US, warmup=WARMUP_US,
        seed=SEED,
    )

    print(breakdown_table(tel.tracer, warmup=WARMUP_US,
                          title="bursty traffic: stage breakdown").render())
    print()

    pid = percentile_packet(tel.tracer, 99.9, warmup=WARMUP_US)
    total = tel.tracer.packet_total(pid)
    print(timeline_table(
        tel.tracer, pid,
        title=f"p99.9 packet {pid} (e2e {total:.1f} us, "
              f"dominant: {dominant_stage(tel.tracer, pid)})").render())
    print()
    print(f"sink-measured p99.9: {result.summary.p999:.1f} us "
          f"(the traced packet's {total:.1f} us should sit right there)")

    paths = tel.export(OUT_DIR)
    print(f"\ntrace bundle exported; load {paths['trace']} in Perfetto "
          f"to see packet {pid} on its path track")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
