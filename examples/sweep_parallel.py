#!/usr/bin/env python
"""Parallel parameter sweep with the declarative experiment API.

Builds a :class:`~repro.SweepSpec` -- a load x policy grid over
:class:`~repro.ScenarioConfig` fields -- and hands it to
:func:`~repro.run_sweep`, which fans the cells out across a worker pool
with content-hash result caching.  Per-cell results are bit-identical
whatever the worker count, and a re-run of this script completes in
milliseconds once the cache is warm (delete ``.repro-cache/`` to force
recomputation).

The same grid is reachable from the shell::

    python -m repro sweep --axis load=0.3,0.5,0.7 \\
        --axis policy=single,hash,spray,adaptive --out sweep.json

Run:  python examples/sweep_parallel.py
"""

import repro
from repro import Axis, SweepSpec, Table, run_sweep

SPEC = SweepSpec(
    name="load-vs-policy",
    base=dict(chain="heavy", duration=60_000.0, warmup=8_000.0, seed=1),
    axes=[
        Axis("load", [0.3, 0.5, 0.7]),
        Axis("policy", ["single", "hash", "spray", "adaptive"]),
    ],
)


def main():
    print(f"expanding '{SPEC.name}': {SPEC.n_cells} cells ...")
    sr = run_sweep(
        SPEC,
        progress=lambda done, total, cell: print(
            f"  [{done:2d}/{total}] {cell.params}  "
            f"p99={cell.exact['p99']:.1f}us"
            f"{'  (cached)' if cell.cached else ''}"
        ),
    )

    table = Table(["load", "policy", "p50", "p99", "p99.9"],
                  title="p99 latency across the load x policy grid (us)")
    for cell in sr.cells:
        table.add_row([cell.params["load"], cell.params["policy"],
                       cell.summary.p50, cell.exact["p99"],
                       cell.exact["p999"]])
    print(table.render())

    acct = sr.accounting()
    print(f"\n{acct['cells']} cells in {acct['wall_s']:.1f}s wall, "
          f"{acct['cell_wall_s']:.1f}s of simulation "
          f"(jobs={acct['jobs']}, speedup {acct['speedup']:.1f}x, "
          f"cache {acct['cache_hits']} hit / {acct['cache_misses']} miss)")

    # Any single grid point is just one repro.run away -- same seed, same
    # config, bit-identical summary to the sweep's cell:
    cell = sr.get(load=0.7, policy="adaptive")
    solo = repro.run(repro.ScenarioConfig.from_dict(cell.config))
    assert solo.summary.to_dict() == cell.summary.to_dict()
    print("\nspot check: repro.run on the (0.7, adaptive) cell config "
          "reproduces the sweep result exactly.")


if __name__ == "__main__":
    main()
