#!/usr/bin/env python
"""Noisy-neighbor rescue: watch the controller steer around contention.

Scenario: a 4-path host runs steady traffic.  At t=100 ms a colocated
tenant starts hammering the physical core under path 0 (contention 6x);
at t=250 ms it stops.  We sample delivered p99 in 25 ms windows and print
a timeline, plus the controller's view of path 0's health.

The single-path baseline has nowhere to go -- its tail explodes for the
whole interference window.  The adaptive multipath host detects the
straggler and shifts flowlets to the three clean paths within a few
control periods.

Run:  python examples/interference_rescue.py
"""

import numpy as np

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    NoisyNeighbor,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)

RATE_PPS = 400_000
DURATION_US = 400_000.0
WINDOW_US = 25_000.0
INTERFERE_START = 100_000.0
INTERFERE_END = 250_000.0
INTENSITY = 6.0
SEED = 13


def run(policy: str, n_paths: int):
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)
    cfg = MpdpConfig(
        n_paths=n_paths, policy=policy,
        path=PathConfig(jitter=SHARED_CORE),
        controller_interval=250.0,
    )
    host = MultipathDataPlane(sim, cfg, rngs)
    src = PoissonSource(
        sim, host.factory, host.input, rngs.stream("traffic"),
        rate_pps=RATE_PPS, n_flows=256, duration=DURATION_US,
    )
    src.start()

    # The neighbor lands on path 0's core.
    neighbor = NoisyNeighbor(sim, host.paths[0].vcpu, SHARED_CORE, intensity=INTENSITY)
    neighbor.schedule_burst(INTERFERE_START, INTERFERE_END - INTERFERE_START)

    # Windowed p99: collect per-window latencies via a delivery hook.
    windows = [[] for _ in range(int(DURATION_US / WINDOW_US))]

    def on_delivery(pkt):
        idx = int(pkt.t_done / WINDOW_US)
        if idx < len(windows):
            windows[idx].append(pkt.latency)

    host.sink.on_delivery = on_delivery
    sim.run(until=DURATION_US + 10_000.0)
    host.finalize()
    return host, windows


def main():
    single_host, single_w = run("single", 1)
    multi_host, multi_w = run("adaptive", 4)

    table = Table(
        ["window (ms)", "neighbor", "single p99 (us)", "adaptive p99 (us)"],
        title=f"p99 per {WINDOW_US/1000:.0f} ms window (interference on path 0)",
    )
    for i, (sw, mw) in enumerate(zip(single_w, multi_w)):
        t0 = i * WINDOW_US
        active = INTERFERE_START <= t0 < INTERFERE_END
        sp = np.percentile(sw, 99) if sw else float("nan")
        mp = np.percentile(mw, 99) if mw else float("nan")
        table.add_row([f"{t0/1000:.0f}-{(t0+WINDOW_US)/1000:.0f}",
                       "ON" if active else "", float(sp), float(mp)])
    print(table.render())

    # What the controller saw: fraction of ticks path 0 was healthy,
    # inside vs outside the interference window.
    ctl = multi_host.controller
    in_win = [s for s in ctl.history if INTERFERE_START <= s.time < INTERFERE_END]
    out_win = [s for s in ctl.history if not INTERFERE_START <= s.time < INTERFERE_END]
    frac_in = np.mean([0 in s.healthy for s in in_win]) if in_win else float("nan")
    frac_out = np.mean([0 in s.healthy for s in out_win]) if out_win else float("nan")
    print(f"\ncontroller: path0 judged healthy {frac_out:.0%} of ticks without "
          f"interference, {frac_in:.0%} with interference")
    share = multi_host.paths[0].completed / max(multi_host.sink.delivered, 1)
    print(f"path0 carried {share:.0%} of delivered traffic (fair share would be 25%)")


if __name__ == "__main__":
    main()
