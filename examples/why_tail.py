#!/usr/bin/env python
"""Why is my p99 slow?  Forensics on single-path vs multipath tails.

Runs the same traffic on jittery (contended-core) vCPUs twice -- one
path vs adaptive k=4 -- with tail forensics armed, and compares the
cause histograms side by side.  On one path, the tail is owned by
last-mile events: scheduler stalls and the queue that builds behind
them.  Adaptive multipath steers flowlets away from stalled paths, so
the *same* cause categories collapse -- the paper's claim, stated as
root-cause mass rather than percentiles.

Run:  python examples/why_tail.py
"""

import repro
from repro.metrics import Table
from repro.obs import CAUSES

LOAD = 0.75
DURATION_US = 60_000.0
WARMUP_US = 10_000.0
SEED = 21


def forensicate(label: str, policy: str, n_paths: int):
    """One armed run; returns (label, result, forensics report).

    ``load`` is per-path utilization, so dividing by ``n_paths`` keeps
    the *absolute* offered traffic identical across configurations --
    the single path carries everything, the multipath host spreads the
    same stream over k paths (the paper's F1-style comparison).
    """
    result = repro.run(
        options=repro.RunOptions(forensics=True),
        policy=policy, n_paths=n_paths, jitter=repro.CONTENDED_CORE,
        load=LOAD / n_paths, duration=DURATION_US, warmup=WARMUP_US,
        seed=SEED,
    )
    return label, result, result.forensics_report


def main() -> int:
    runs = [forensicate("single-path", "single", 1),
            forensicate("adaptive k=4", "adaptive", 4)]

    t = Table(["", *(label for label, _, _ in runs)],
              title="tail forensics: cause histogram (packets above p99)")
    t.add_row(["p99 (us)", *(f"{r.summary.p99:.1f}" for _, r, _ in runs)])
    t.add_row(["p99.9 (us)", *(f"{r.summary.p999:.1f}" for _, r, _ in runs)])
    t.add_row(["tail threshold (us)",
               *(f"{rep['threshold_us']:.1f}" for _, _, rep in runs)])
    t.add_row(["analyzed packets", *(rep["analyzed"] for _, _, rep in runs)])
    for cause in CAUSES:
        counts = [rep["cause_histogram"][cause] for _, _, rep in runs]
        if any(counts):
            t.add_row([cause, *counts])
    print(t.render())
    print()

    single_rep = runs[0][2]
    multi_result = runs[1][1]
    # Relative quantiles analyze the top 1% of *each* run, so both
    # histograms sum to the same count by construction.  The collapse
    # shows at a fixed absolute bar: re-attribute the multipath run
    # against the single-path p99 threshold.
    bar = single_rep["threshold_us"]
    lats = multi_result.host.sink.recorder.values()
    above = int((lats >= bar).sum())
    if above:
        q = 100.0 * (1.0 - above / lats.size)
        multi_at_bar = repro.obs.attribute_tail(
            multi_result, repro.obs.ForensicsSpec(quantile=q))
    else:
        multi_at_bar = {"analyzed": 0,
                        "cause_histogram": {c: 0 for c in CAUSES}}

    last_mile = ("sched_stall", "queue_buildup")
    single_mass = sum(single_rep["cause_histogram"][c] for c in last_mile)
    multi_mass = sum(multi_at_bar["cause_histogram"][c] for c in last_mile)
    single_p99 = runs[0][1].summary.p99
    multi_p99 = multi_result.summary.p99
    print(f"packets above the single-path p99 bar ({bar:.0f} us): "
          f"{single_rep['analyzed']} -> {multi_at_bar['analyzed']}")
    print(f"last-mile cause mass there (sched_stall + queue_buildup): "
          f"{single_mass} -> {multi_mass} packets "
          f"({single_mass / max(multi_mass, 1):.1f}x less under multipath)")
    print(f"p99: {single_p99:.1f} -> {multi_p99:.1f} us "
          f"({single_p99 / multi_p99:.1f}x)")
    assert multi_mass < single_mass, \
        "multipath must shrink the last-mile tail mass"
    assert multi_p99 < single_p99

    # The worst single-path packet, annotated: the timeline shows the
    # stall (or the queue behind one) that created it.
    ex = single_rep["exemplars"][0]
    print(f"\nworst single-path packet {ex['packet']}: "
          f"{ex['e2e_us']:.1f} us, cause {ex['cause']}")
    for step in ex["timeline"]:
        lane = f"path{step['path']}" if "path" in step else "-"
        print(f"  {step['t_start']:>10.1f}  {step['stage']:<14} "
              f"{step['dt']:>8.1f} us  {lane}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
