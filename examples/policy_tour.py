#!/usr/bin/env python
"""Tour of every path-selection policy under one workload.

Runs the full policy zoo on identical bursty traffic and prints latency
percentiles, CPU cost, drop counts and reordering footprint -- a compact
map of the design space the paper's evaluation explores (load balancing
quality vs. reordering vs. replication overhead).

Run:  python examples/policy_tour.py
"""

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    OnOffSource,
    PathConfig,
    POLICY_NAMES,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)

DURATION_US = 150_000.0
SEED = 99


def run(policy: str):
    n_paths = 1 if policy == "single" else 4
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)
    cfg = MpdpConfig(
        n_paths=n_paths, policy=policy,
        path=PathConfig(jitter=SHARED_CORE), warmup=15_000.0,
    )
    host = MultipathDataPlane(sim, cfg, rngs)
    src = OnOffSource(
        sim, host.factory, host.input, rngs.stream("traffic"),
        peak_rate_pps=1_500_000, mean_on=300.0, mean_off=600.0,
        duration=DURATION_US, n_flows=256,
    )
    src.start()
    sim.run(until=DURATION_US + 10_000.0)
    host.finalize()
    return host


def main():
    table = Table(
        ["policy", "paths", "p50", "p99", "p99.9", "cpu us/pkt",
         "drops", "reordered", "replicas"],
        title="Policy tour -- bursty ON/OFF traffic, shared-core jitter "
              "(latencies in us)",
    )
    for policy in POLICY_NAMES:
        host = run(policy)
        s = host.sink.recorder.summary()
        st = host.stats()
        reorder = st.get("reorder", {})
        table.add_row([
            policy,
            len(host.paths),
            s.p50,
            s.p99,
            s.p999,
            st["cpu_per_delivered"],
            sum(st["drops"].values()) + st["nic_drops"],
            reorder.get("held", 0),
            st["replicas"],
        ])
    print(table.render())
    print(
        "\nreading guide: 'single' is the baseline; 'hash' adds paths but "
        "cannot react; spraying (rr/spray) balances best but reorders most; "
        "'redundant*' buys tail with CPU; 'adaptive' combines flowlets, "
        "straggler avoidance, and budgeted replication."
    )


if __name__ == "__main__":
    main()
