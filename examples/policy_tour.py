#!/usr/bin/env python
"""Tour of every path-selection policy under one workload.

Runs the full policy zoo on identical bursty traffic and prints latency
percentiles, CPU cost, drop counts and reordering footprint -- a compact
map of the design space the paper's evaluation explores (load balancing
quality vs. reordering vs. replication overhead).

Each run is one :func:`repro.run` call over a declarative
:class:`~repro.ScenarioConfig` -- the same public entry point the sweep
orchestrator fans out (see ``examples/sweep_parallel.py`` for the grid
version of this comparison).

Run:  python examples/policy_tour.py
"""

import repro
from repro import POLICY_NAMES, ScenarioConfig, Table

BASE = ScenarioConfig(
    traffic="onoff", burstiness=3.0, mean_on=300.0, load=0.35,
    duration=150_000.0, warmup=15_000.0, n_flows=256, seed=99,
)


def main():
    table = Table(
        ["policy", "paths", "p50", "p99", "p99.9", "cpu us/pkt",
         "drops", "reordered", "replicas"],
        title="Policy tour -- bursty ON/OFF traffic, shared-core jitter "
              "(latencies in us)",
    )
    for policy in POLICY_NAMES:
        res = repro.run(BASE, policy=policy,
                        n_paths=1 if policy == "single" else 4)
        s = res.summary
        st = res.stats
        reorder = st.get("reorder", {})
        table.add_row([
            policy,
            res.config.n_paths,
            s.p50,
            s.p99,
            s.p999,
            st["cpu_per_delivered"],
            sum(st["drops"].values()) + st["nic_drops"],
            reorder.get("held", 0),
            st["replicas"],
        ])
    print(table.render())
    print(
        "\nreading guide: 'single' is the baseline; 'hash' adds paths but "
        "cannot react; spraying (rr/spray) balances best but reorders most; "
        "'redundant*' buys tail with CPU; 'adaptive' combines flowlets, "
        "straggler avoidance, and budgeted replication."
    )


if __name__ == "__main__":
    main()
