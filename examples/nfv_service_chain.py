#!/usr/bin/env python
"""Custom NFV service chain + datacenter flow workload.

Shows the element-graph API end to end:

1. compose a custom gateway SFC (decap -> firewall -> DPI -> NAT ->
   monitor) as a validated :class:`ElementGraph` and compile it;
2. replicate it across a 4-path multipath data plane;
3. drive it with websearch-distributed flows and report short-flow FCT
   percentiles against the single-path baseline;
4. query the NF state afterwards (NAT mappings, monitor heavy hitters).

Run:  python examples/nfv_service_chain.py
"""

import numpy as np

from repro import (
    ElementGraph,
    FlowSource,
    FlowTracker,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
    WEBSEARCH_CDF,
)
from repro.elements import AclFirewall, AclRule, Dpi, FlowMonitor, Nat, VxlanDecap

FLOW_RATE_FPS = 3_000.0
DURATION_US = 300_000.0
SHORT_FLOW_BYTES = 100_000
SEED = 77


def build_gateway_chain(rng):
    """Compose and validate the gateway SFC from individual elements."""
    g = ElementGraph("gateway")
    g.add(VxlanDecap("decap"))
    g.add(AclFirewall("fw", rules=[
        AclRule(dport=22, action="deny"),      # no ssh from outside
        AclRule(dport=3306, action="deny"),    # no direct DB access
    ]))
    g.add(Dpi("dpi", rng=rng))
    g.add(Nat("nat"))
    g.add(FlowMonitor("mon"))
    g.chain("decap", "fw", "dpi", "nat", "mon")
    g.validate()
    print(f"chain ok: {len(g)} elements, expected per-packet cost "
          f"{g.critical_path_cost():.2f} us")
    return g.compile_chain()


def run(policy: str, n_paths: int):
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)
    tracker = FlowTracker()
    chain = build_gateway_chain(rngs.stream("chain"))
    cfg = MpdpConfig(
        n_paths=n_paths, policy=policy,
        path=PathConfig(jitter=SHARED_CORE),
    )
    host = MultipathDataPlane(sim, cfg, rngs, chain=chain, tracker=tracker)
    src = FlowSource(
        sim, host.factory, host.input, rngs.stream("flows"),
        flow_rate_fps=FLOW_RATE_FPS, size_cdf=WEBSEARCH_CDF,
        tracker=tracker, duration=DURATION_US, max_flow_pkts=500,
        # Flows arrive VXLAN-encapsulated; sizes already include overhead.
    )
    src.start()
    sim.run(until=DURATION_US + 100_000.0)
    host.finalize()
    return host, tracker


def main():
    table = Table(
        ["config", "flows done", "short-flow p50 FCT (us)",
         "short-flow p99 FCT (us)", "pkt p99 (us)"],
        title="Gateway SFC on websearch flows",
    )
    hosts = {}
    for label, policy, k in [
        ("single-path", "single", 1),
        ("multipath adaptive k=4", "adaptive", 4),
    ]:
        host, tracker = run(policy, k)
        hosts[label] = host
        short = tracker.fcts_by_size(max_size=SHORT_FLOW_BYTES)
        table.add_row([
            label,
            len(tracker.completed),
            float(np.percentile(short, 50)),
            float(np.percentile(short, 99)),
            host.sink.recorder.exact_percentile(99),
        ])
    print(table.render())

    # Poke at NF state on one replica of the multipath host.
    host = hosts["multipath adaptive k=4"]
    path0 = host.paths[0]
    nat = next(e for e in path0.chain if e.name.startswith("nat"))
    mon = next(e for e in path0.chain if e.name.startswith("mon"))
    print(f"\npath0 NAT installed {len(nat.table)} mappings "
          f"({nat.misses} slow-path packets)")
    eps_n, delta = mon.sketch.error_bound()
    print(f"path0 monitor sketch: overcount bound {eps_n:,.0f} bytes "
          f"(fail prob {delta:.1%})")
    fc = path0.flowcache
    print(f"path0 vswitch EMC hit rate {fc.hit_rate:.1%} "
          f"({fc.upcalls} slow-path upcalls)")


if __name__ == "__main__":
    main()
