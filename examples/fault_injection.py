#!/usr/bin/env python
"""Fault injection: watch a path die, get ejected, and come back.

Scenario: a 4-path adaptive host runs steady traffic.  At t=60 ms path 0
crashes (its poller dies and its queued packets are lost); at t=100 ms it
restarts.  We sample delivered p99 in 20 ms windows and print a timeline
annotated with the injector's fault events, then compare against a
single-path host suffering the identical fault.

The single-path host has nowhere to go: every packet offered while its
only path is dead becomes an explicit `mpdp:no-live-path` drop.  The
multipath host detects the dead path from pure observables (head-of-line
wait + completion silence), ejects it, re-steers the stranded queue, and
probes it back in after the restart -- delivery never stops.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro import (
    FaultInjector,
    FaultSchedule,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)

RATE_PPS = 400_000
DURATION_US = 200_000.0
WINDOW_US = 20_000.0
CRASH_AT = 60_000.0
CRASH_DUR = 40_000.0
SEED = 13


def run(policy: str, n_paths: int):
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=n_paths, policy=policy,
                   path=PathConfig(jitter=SHARED_CORE)),
        rngs,
    )
    sched = FaultSchedule().crash(0, at=CRASH_AT, duration=CRASH_DUR)
    injector = FaultInjector(sim, host, sched, rng=rngs.stream("faults"))
    injector.install(horizon=DURATION_US + 20_000.0)

    rate = RATE_PPS * (n_paths / 4.0)  # same per-path load for k=1
    src = PoissonSource(sim, host.factory, host.input, rngs.stream("traffic"),
                        rate_pps=rate, n_flows=256, duration=DURATION_US)
    src.start()

    # Windowed p99: collect per-window latencies via a delivery hook.
    windows = [[] for _ in range(int(DURATION_US / WINDOW_US))]

    def on_delivery(pkt):
        idx = int(pkt.t_done / WINDOW_US)
        if idx < len(windows):
            windows[idx].append(pkt.latency)

    host.sink.on_delivery = on_delivery
    sim.run(until=DURATION_US + 20_000.0)
    host.finalize()
    return host, injector, windows


def main():
    adaptive, inj, windows = run("adaptive", 4)

    events = {}
    for t, action, kind, target in inj.timeline:
        events.setdefault(int(t // WINDOW_US), []).append(
            f"path {target} {kind} {action}")
    ctl = adaptive.controller

    print("Windowed delivered p99 (adaptive k=4), path 0 crashed "
          f"{CRASH_AT / 1000:.0f}-{(CRASH_AT + CRASH_DUR) / 1000:.0f} ms:\n")
    t = Table(["window (ms)", "p99 (us)", "fault events"])
    for i, lat in enumerate(windows):
        p99 = float(np.percentile(lat, 99)) if lat else float("nan")
        t.add_row([f"{i * WINDOW_US / 1000:.0f}-{(i + 1) * WINDOW_US / 1000:.0f}",
                   p99, ", ".join(events.get(i, [])) or "-"])
    print(t.render())

    av = inj.tracker.summary(horizon=DURATION_US,
                             targets=[p.path_id for p in adaptive.paths])
    print(f"\nrecovery: ejections={ctl.ejections} "
          f"reinstatements={ctl.reinstatements} rerouted={ctl.rerouted}")
    print(f"detection lag: {av['mean_detection_lag']:.0f} us   "
          f"recovery time: {av['mean_recovery_time']:.0f} us   "
          f"path uptime: {100 * av['path_uptime_fraction']:.1f}%")
    a = adaptive.stats()
    print(f"adaptive k=4 delivered "
          f"{100 * a['delivered'] / adaptive.ingress_count:.1f}% "
          f"of accepted packets")

    single, _, _ = run("single", 1)
    s = single.stats()
    lost = s["drops"].get("mpdp:no-live-path", 0) + \
        s["drops"].get("path:crash", 0)
    print(f"same fault, single path:  delivered "
          f"{100 * s['delivered'] / single.ingress_count:.1f}% "
          f"(lost {lost} packets while its only path was dead)")


if __name__ == "__main__":
    main()
