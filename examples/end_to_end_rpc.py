#!/usr/bin/env python
"""End-to-end RPC across a fabric: two virtualized hosts, full round trip.

Topology::

    client app -> [host A egress wire] -> fabric -> host B MPDP -> server app
    server app -> [host B egress wire] -> fabric -> host A MPDP -> client app

Both hosts run the same data-plane configuration; the fabric adds a
fixed 12 µs with mild jitter.  The client measures request-to-response
RTT.  The punchline: with a well-behaved fabric, swapping the *hosts'*
data plane from single-path to adaptive multipath cuts RTT p99 by
multiples -- the last mile (twice!) dominates the round trip.

Run:  python examples/end_to_end_rpc.py
"""

import numpy as np

from repro import (
    FabricModel,
    HostLink,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)
from repro.net.packet import FiveTuple

RPC_RATE_PPS = 150_000
BG_RATE_PPS = 700_000    # background load on both hosts
DURATION_US = 150_000.0
REQUEST_BYTES = 300
RESPONSE_BYTES = 1_200
SEED = 41


def run(policy: str, n_paths: int):
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)

    cfg = MpdpConfig(n_paths=n_paths, policy=policy,
                     path=PathConfig(jitter=SHARED_CORE))
    host_a = MultipathDataPlane(sim, cfg, rngs)
    host_b = MultipathDataPlane(sim, MpdpConfig(
        n_paths=n_paths, policy=policy,
        path=PathConfig(jitter=SHARED_CORE)), rngs)

    # Fabric legs (A->B and B->A) behind 25G host wires.
    fab_ab = FabricModel(sim, host_b.input, rng=rngs.stream("fab.ab"),
                         base_delay=12.0, jitter_sigma=0.1)
    fab_ba = FabricModel(sim, host_a.input, rng=rngs.stream("fab.ba"),
                         base_delay=12.0, jitter_sigma=0.1)
    wire_a = HostLink(sim, fab_ab.send, rate_bps=25e9)
    wire_b = HostLink(sim, fab_ba.send, rate_bps=25e9)

    rtts = []
    t_sent = {}
    n_sent = [0]

    # RPCs are identified by port (elements may rewrite packet.meta):
    # requests target dport 9000, responses come back from sport 9000.
    # Request identity rides in (flow_id, seq); the response echoes it
    # shifted by +500_000 so the two directions are distinct flows.
    def server_app(pkt):
        if pkt.ftuple.dport != 9000:
            return  # background traffic
        resp = host_b.factory.make(
            pkt.ftuple.reversed(), RESPONSE_BYTES, sim.now,
            flow_id=pkt.flow_id + 500_000, seq=pkt.seq, priority=1,
        )
        wire_b.send(resp)

    def client_app(pkt):
        if pkt.ftuple.sport != 9000 or pkt.flow_id < 500_000:
            return
        t0 = t_sent.pop((pkt.flow_id - 500_000, pkt.seq), None)
        if t0 is not None and t0 > 20_000.0:  # warmup
            rtts.append(sim.now - t0)

    host_b.sink.on_delivery = server_app
    host_a.sink.on_delivery = client_app

    # Client request generator + background load on both hosts.
    def send_request():
        i = n_sent[0]
        n_sent[0] += 1
        req = host_a.factory.make(
            FiveTuple(1, 2, 1024 + (i % 512), 9000), REQUEST_BYTES, sim.now,
            flow_id=i % 512, seq=i // 512, priority=1,
        )
        t_sent[(req.flow_id, req.seq)] = sim.now
        wire_a.send(req)

    rng = rngs.stream("rpc.arrivals")
    t = 0.0
    while t < DURATION_US:
        t += float(rng.exponential(1e6 / RPC_RATE_PPS))
        sim.call_at(t, send_request)

    from repro import PoissonSource

    for host, label in ((host_a, "bg.a"), (host_b, "bg.b")):
        PoissonSource(sim, host.factory, host.input, rngs.stream(label),
                      rate_pps=BG_RATE_PPS, n_flows=256,
                      duration=DURATION_US).start()

    sim.run(until=DURATION_US + 20_000.0)
    host_a.finalize()
    host_b.finalize()
    return np.array(rtts)


def main():
    t = Table(["host data plane", "RTTs", "p50 (us)", "p99 (us)", "p99.9 (us)"],
              title="end-to-end RPC round-trip time (12 us fabric each way)")
    results = {}
    for label, policy, k in [("single-path hosts", "single", 1),
                             ("adaptive k=4 hosts", "adaptive", 4)]:
        rtts = run(policy, k)
        results[label] = rtts
        t.add_row([label, len(rtts),
                   float(np.percentile(rtts, 50)),
                   float(np.percentile(rtts, 99)),
                   float(np.percentile(rtts, 99.9))])
    print(t.render())
    gain = (np.percentile(results["single-path hosts"], 99)
            / np.percentile(results["adaptive k=4 hosts"], 99))
    print(f"\nRTT p99 improvement from fixing the last mile alone: {gain:.1f}x")
    print("(~24 us of fabric in every RTT; everything above that is host-side)")


if __name__ == "__main__":
    main()
