#!/usr/bin/env python
"""Two-class service: latency-critical RPCs sharing paths with bulk.

Combines three mechanisms on one 4-path host:

* a **priority qdisc** on every path (urgent class overtakes bulk);
* the adaptive policy's **selective replication**, which treats
  priority>0 packets as replication-eligible;
* background **bulk** traffic heavy enough to build real queues.

Prints per-class latency percentiles for FIFO vs priority queueing, with
and without replication -- the full last-mile QoS story.

Run:  python examples/priority_classes.py
"""

import numpy as np

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)
from repro.core.policies import AdaptiveMultipath

DURATION_US = 150_000.0
BULK_PPS = 1_400_000     # ~70% of 4 basic-chain paths
RPC_PPS = 60_000         # small, urgent request/response packets
RPC_SIZE = 200
SEED = 23


def run(qdisc: str, replication_budget: float):
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)
    policy = AdaptiveMultipath(replication_budget=replication_budget,
                               critical_size=0)  # replicate by priority only
    cfg = MpdpConfig(
        n_paths=4,
        policy=policy,
        path=PathConfig(jitter=SHARED_CORE, qdisc=qdisc),
        warmup=15_000.0,
    )
    host = MultipathDataPlane(sim, cfg, rngs)

    # Per-class measurement via a delivery hook.
    rpc_lat, bulk_lat = [], []

    def on_delivery(pkt):
        if pkt.t_done < 15_000.0:
            return
        (rpc_lat if pkt.priority > 0 else bulk_lat).append(pkt.latency)

    host.sink.on_delivery = on_delivery

    bulk = PoissonSource(
        sim, host.factory, host.input, rngs.stream("bulk"),
        rate_pps=BULK_PPS, n_flows=256, duration=DURATION_US,
        flow_id_base=0,
    )
    rpc = PoissonSource(
        sim, host.factory, host.input, rngs.stream("rpc"),
        rate_pps=RPC_PPS, size=RPC_SIZE, n_flows=64, duration=DURATION_US,
        flow_id_base=1_000_000, priority=1,
    )
    bulk.start()
    rpc.start()
    sim.run(until=DURATION_US + 10_000.0)
    host.finalize()
    return np.array(rpc_lat), np.array(bulk_lat)


def main():
    t = Table(
        ["config", "RPC p50", "RPC p99", "RPC p99.9", "bulk p99"],
        title="latency-critical RPCs vs bulk (latencies in us)",
    )
    for label, qdisc, budget in [
        ("fifo, no replication", "fifo", 0.0),
        ("fifo + replication", "fifo", 0.5),
        ("priority qdisc", "prio", 0.0),
        ("priority + replication", "prio", 0.5),
    ]:
        rpc, bulk = run(qdisc, budget)
        t.add_row([
            label,
            float(np.percentile(rpc, 50)),
            float(np.percentile(rpc, 99)),
            float(np.percentile(rpc, 99.9)),
            float(np.percentile(bulk, 99)),
        ])
    print(t.render())
    print("\npriority queueing removes bulk-induced queueing from the RPC tail;")
    print("replication additionally hedges scheduler stalls; bulk pays little.")


if __name__ == "__main__":
    main()
