#!/usr/bin/env python
"""Quickstart: single-path vs. multipath tail latency in 60 lines.

Builds a virtualized host twice -- once with the status-quo single
datapath, once with a 4-path adaptive multipath data plane -- drives both
with the same Poisson traffic on jittery (shared-core) vCPUs, and prints
the latency percentiles side by side.

Run:  python examples/quickstart.py
"""

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    Table,
)

RATE_PPS = 500_000       # offered load
DURATION_US = 200_000.0  # 200 ms of simulated traffic
WARMUP_US = 20_000.0     # discard the first 20 ms (queue fill-in)
SEED = 7


def run_host(policy: str, n_paths: int):
    """Simulate one host configuration and return its stats."""
    sim = Simulator()
    rngs = RngRegistry(seed=SEED)  # same seed => same traffic & stalls
    config = MpdpConfig(
        n_paths=n_paths,
        policy=policy,
        path=PathConfig(jitter=SHARED_CORE),  # vhost thread shares a core
        warmup=WARMUP_US,
    )
    host = MultipathDataPlane(sim, config, rngs)
    source = PoissonSource(
        sim, host.factory, host.input, rngs.stream("traffic"),
        rate_pps=RATE_PPS, n_flows=256, duration=DURATION_US,
    )
    source.start()
    sim.run(until=DURATION_US + 10_000.0)
    host.finalize()
    return host


def main():
    table = Table(
        ["config", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)", "cpu us/pkt"],
        title="Last-mile tail latency: single path vs multipath",
    )
    results = {}
    for label, policy, k in [
        ("single-path (baseline)", "single", 1),
        ("multipath adaptive k=4", "adaptive", 4),
    ]:
        host = run_host(policy, k)
        s = host.sink.recorder.summary()
        results[label] = s
        table.add_row([label, s.p50, s.p99, s.p999, s.max, host.cpu_per_delivered()])

    print(table.render())
    base = results["single-path (baseline)"]
    mpdp = results["multipath adaptive k=4"]
    print(
        f"\np99 improvement: {base.p99 / mpdp.p99:.1f}x  |  "
        f"p99.9 improvement: {base.p999 / mpdp.p999:.1f}x"
    )
    print("(same traffic, same cores -- the only change is path diversity)")


if __name__ == "__main__":
    main()
