#!/usr/bin/env python
"""Validate the simulator against queueing theory, then break theory
with jitter.

Part 1 -- a jitter-free single path fed Poisson traffic with
deterministic service is an M/D/1 queue; the measured mean wait must
match the Pollaczek-Khinchine formula across utilizations.

Part 2 -- switch on shared-core scheduling jitter and watch the measured
p99 blow through the M/D/1 prediction while the *mean* stays nearly
faithful: the tail is made by stalls that memoryless queueing theory
does not see.  This gap is precisely the paper's target.

Run:  python examples/queueing_validation.py
"""

import numpy as np

from repro import PoissonSource, Simulator, Table
from repro.analysis import md1_mean_wait, stall_tail_bound
from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.elements import Chain, Delay
from repro.net import PacketFactory

SERVICE_US = 1.0
DURATION_US = 300_000.0


def run_queue(rho: float, jitter: JitterParams):
    """One M/D/1-style path; returns (waits, sojourns) past warmup."""
    sim = Simulator()
    factory = PacketFactory()
    rng = np.random.default_rng(11)
    waits, sojourns = [], []

    def on_done(pkt):
        waits.append(pkt.t_deq - pkt.t_enq)
        sojourns.append(sim.now - pkt.t_enq)

    dp = DataPath(
        sim, 0, Chain([Delay("d", base_cost=SERVICE_US)]), on_done, rng=rng,
        config=PathConfig(batch_size=1, batch_overhead=0.0,
                          queue_capacity=1_000_000, jitter=jitter),
    )
    for attr in ("hit_cost", "miss_cost", "upcall_cost"):
        setattr(dp.flowcache, attr, 0.0)
    src = PoissonSource(sim, factory, dp.enqueue, rng,
                        rate_pps=rho * 1e6, duration=DURATION_US)
    src.start()
    sim.run(until=DURATION_US + 100_000.0)
    cut = int(0.2 * len(waits))
    return np.array(waits[cut:]), np.array(sojourns[cut:])


def main():
    print("Part 1: jitter-free path vs M/D/1 (Pollaczek-Khinchine)\n")
    t = Table(["rho", "P-K mean wait", "measured", "error"],
              title="mean queueing wait (us), deterministic service")
    for rho in (0.3, 0.5, 0.7, 0.85):
        waits, _ = run_queue(rho, JitterParams())
        predicted = md1_mean_wait(rho, SERVICE_US)
        err = abs(waits.mean() - predicted) / max(predicted, 1e-9)
        t.add_row([f"{rho:.2f}", predicted, float(waits.mean()), f"{err:.1%}"])
    print(t.render())

    print("\nPart 2: the same queue with shared-core scheduling jitter\n")
    t2 = Table(["rho", "metric", "M/D/1 world", "with jitter"],
               title="where theory stops: stalls own the tail")
    for rho in (0.5, 0.7):
        w_clean, s_clean = run_queue(rho, JitterParams())
        w_jit, s_jit = run_queue(rho, SHARED_CORE)
        t2.add_row([f"{rho:.2f}", "mean sojourn",
                    float(s_clean.mean()), float(s_jit.mean())])
        t2.add_row([f"{rho:.2f}", "p99 sojourn",
                    float(np.percentile(s_clean, 99)),
                    float(np.percentile(s_jit, 99))])
    print(t2.render())
    bound = stall_tail_bound(SHARED_CORE, 0.99)
    print(f"\nanalytic residual-stall floor on the jittery p99: ~{bound:.0f} us")
    print("(no single-path configuration can beat that floor -- only path")
    print(" diversity removes the stall term, which is the paper's thesis)")


if __name__ == "__main__":
    main()
