"""Analytical consequences of the run/stall vCPU model.

The :class:`~repro.dataplane.vcpu.JitterParams` model is an alternating
renewal process: exponential run periods of mean :math:`R`, lognormal
stalls with mean :math:`B`.  Two first-order consequences anchor the
validation tests and the capacity planning in the bench harness:

* **availability** -- the server is up a fraction
  :math:`A = R / (R + B)` of the time, so the *effective* service rate
  is :math:`A \\cdot \\mu`;
* **tail floor** -- a packet arriving uniformly in time lands inside a
  stall with probability :math:`1 - A`, and (by inspection paradox) the
  residual stall it then waits out has mean
  :math:`E[B^2] / (2 E[B]) > E[B]/2`, which lower-bounds the achievable
  tail of any single-path configuration -- the analytical heart of the
  paper's argument that only *path diversity* can remove the stall term
  from the tail.
"""

from __future__ import annotations

import math

from repro.dataplane.vcpu import JitterParams


def stall_availability(params: JitterParams) -> float:
    """Fraction of time the vCPU is runnable: ``R / (R + B)``."""
    if not params.enabled:
        return 1.0
    mean_stall = params.mean_stall()
    return params.mean_run / (params.mean_run + mean_stall)


def effective_service_rate(params: JitterParams, base_rate_pps: float) -> float:
    """Long-run sustainable service rate under the jitter profile."""
    if base_rate_pps <= 0:
        raise ValueError(f"base rate must be positive, got {base_rate_pps}")
    return stall_availability(params) * base_rate_pps


def _lognormal_moments(median: float, sigma: float):
    mu = math.log(median)
    m1 = math.exp(mu + sigma**2 / 2.0)
    m2 = math.exp(2.0 * mu + 2.0 * sigma**2)
    return m1, m2


def stall_tail_bound(params: JitterParams, quantile: float = 0.99) -> float:
    """Lower bound on the single-path sojourn ``quantile`` due to stalls.

    A packet arriving at a uniformly random time is caught inside a stall
    with probability ``p_hit = 1 - A``; conditioned on being caught, its
    extra delay is the residual stall, mean ``E[B^2] / (2 E[B])``
    (inspection paradox).  If ``1 - quantile < p_hit``, the quantile is at
    least the residual-stall quantile-within-stalls; we return the
    conservative mean-residual bound in that regime and 0 otherwise.

    This is a *floor*, not an estimate: queueing on top of the stall only
    adds delay.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    if not params.enabled:
        return 0.0
    m1, m2 = _lognormal_moments(params.stall_median, params.stall_sigma)
    availability = params.mean_run / (params.mean_run + m1)
    p_hit = 1.0 - availability
    if 1.0 - quantile >= p_hit:
        return 0.0
    return m2 / (2.0 * m1)
