"""Closed-form queueing results (M/M/1, M/D/1, M/G/1).

Times follow the simulation convention (µs).  ``rho`` is utilization
``lambda * E[S]`` and must be < 1 for a stable queue.

These formulas anchor the validation tests: a jitter-free single
:class:`~repro.dataplane.path.DataPath` fed Poisson traffic with
deterministic per-packet cost is an M/D/1 queue (plus the constant NIC
pipeline), and the simulator must reproduce the Pollaczek-Khinchine
mean wait to a few percent.
"""

from __future__ import annotations

import math


def _check_rho(rho: float) -> None:
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")


def utilization(rate_pps: float, service_us: float) -> float:
    """Offered utilization of a single server (lambda * E[S])."""
    if rate_pps < 0 or service_us < 0:
        raise ValueError("rate and service time must be non-negative")
    return rate_pps / 1e6 * service_us


def mm1_mean_wait(rho: float, service_us: float) -> float:
    """Mean queueing wait (excluding service) of M/M/1.

    ``W_q = rho / (1 - rho) * E[S]``.
    """
    _check_rho(rho)
    return rho / (1.0 - rho) * service_us


def mm1_mean_sojourn(rho: float, service_us: float) -> float:
    """Mean time in system of M/M/1: ``E[S] / (1 - rho)``."""
    _check_rho(rho)
    return service_us / (1.0 - rho)


def mm1_sojourn_quantile(rho: float, service_us: float, q: float) -> float:
    """Sojourn-time quantile of M/M/1 (sojourn is exponential):

    ``T_q = -ln(1 - q) * E[S] / (1 - rho)``.
    """
    _check_rho(rho)
    if not 0.0 <= q < 1.0:
        raise ValueError(f"q must be in [0, 1), got {q}")
    return -math.log(1.0 - q) * service_us / (1.0 - rho)


def mg1_mean_wait(rate_pps: float, mean_service_us: float, second_moment_us2: float) -> float:
    """Pollaczek-Khinchine mean wait of M/G/1.

    ``W_q = lambda * E[S^2] / (2 (1 - rho))`` with lambda in 1/µs.
    """
    lam = rate_pps / 1e6
    rho = lam * mean_service_us
    _check_rho(rho)
    if second_moment_us2 < mean_service_us**2:
        raise ValueError("E[S^2] cannot be below E[S]^2")
    return lam * second_moment_us2 / (2.0 * (1.0 - rho))


def md1_mean_wait(rho: float, service_us: float) -> float:
    """Mean wait of M/D/1 (deterministic service): half of M/M/1's.

    ``W_q = rho / (2 (1 - rho)) * E[S]`` -- the P-K formula with
    ``E[S^2] = E[S]^2``.
    """
    _check_rho(rho)
    return rho / (2.0 * (1.0 - rho)) * service_us
