"""Analytical queueing models used to validate the simulator.

The data-plane simulator must reproduce textbook queueing behaviour in
the regimes where closed forms exist, or none of its tail measurements
can be trusted.  This subpackage provides the closed forms
(:mod:`~repro.analysis.queueing`) and the jitter-aware extensions
(:mod:`~repro.analysis.jitter`); ``tests/test_validation.py`` holds the
sim-vs-theory comparisons.
"""

from repro.analysis.queueing import (
    mm1_mean_wait,
    mm1_mean_sojourn,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_sojourn_quantile,
    utilization,
)
from repro.analysis.jitter import (
    stall_availability,
    effective_service_rate,
    stall_tail_bound,
)

__all__ = [
    "mm1_mean_wait",
    "mm1_mean_sojourn",
    "md1_mean_wait",
    "mg1_mean_wait",
    "mm1_sojourn_quantile",
    "utilization",
    "stall_availability",
    "effective_service_rate",
    "stall_tail_bound",
]
