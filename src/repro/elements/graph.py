"""Element-graph composition and validation.

Chains deployed on data-plane paths are *compiled* from an element graph,
mirroring how Click configurations are written: elements are vertices,
packet hand-offs are edges.  The graph layer validates structure (acyclic,
single entry, reachable exit) before the data plane will accept it --
misconfigured NF graphs are a real operational failure mode and the tests
exercise the validation.

``parallel_stages`` exposes the level structure of the DAG (sets of
elements with no mutual dependencies).  This is the ParaGraph-style
analysis the same research group published for intra-chain parallelism;
the multipath data plane here parallelizes *across* chain replicas
instead, but the analysis is kept for the ablation comparing the two.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import networkx as nx

from repro.elements.base import Chain, Element


class GraphError(ValueError):
    """Raised when an element graph fails validation."""


class ElementGraph:
    """A DAG of packet-processing elements.

    Build with :meth:`add` / :meth:`connect`, then :meth:`compile_chain`
    to produce the linear pipeline a path executes.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._elements: Dict[str, Element] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Register an element vertex; returns it for chaining."""
        if element.name in self._elements:
            raise GraphError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element
        self._g.add_node(element.name)
        return element

    def connect(self, upstream: str, downstream: str) -> None:
        """Add a packet hand-off edge from ``upstream`` to ``downstream``."""
        for n in (upstream, downstream):
            if n not in self._elements:
                raise GraphError(f"unknown element {n!r}")
        self._g.add_edge(upstream, downstream)

    def chain(self, *names: str) -> None:
        """Connect ``names`` in sequence (convenience)."""
        for up, down in zip(names, names[1:]):
            self.connect(up, down)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        return self._elements[name]

    def entries(self) -> List[str]:
        """Elements with no upstream (packet entry points)."""
        return [n for n in self._g.nodes if self._g.in_degree(n) == 0]

    def exits(self) -> List[str]:
        """Elements with no downstream (packet exit points)."""
        return [n for n in self._g.nodes if self._g.out_degree(n) == 0]

    # ------------------------------------------------------------------
    # Validation and compilation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`.

        Invariants: non-empty, acyclic, exactly one entry, every element
        reachable from the entry.
        """
        if not self._elements:
            raise GraphError("empty element graph")
        if not nx.is_directed_acyclic_graph(self._g):
            cycle = nx.find_cycle(self._g)
            raise GraphError(f"element graph has a cycle: {cycle}")
        entries = self.entries()
        if len(entries) != 1:
            raise GraphError(f"need exactly one entry element, found {entries}")
        reachable = set(nx.descendants(self._g, entries[0])) | {entries[0]}
        unreachable = set(self._g.nodes) - reachable
        if unreachable:
            raise GraphError(f"elements unreachable from entry: {sorted(unreachable)}")

    def topological_order(self) -> List[Element]:
        """Elements in a valid execution order."""
        self.validate()
        return [self._elements[n] for n in nx.topological_sort(self._g)]

    def compile_chain(self) -> Chain:
        """Compile a *linear* graph into a :class:`Chain`.

        Raises :class:`GraphError` if any element has fan-out/fan-in > 1
        (a branching graph cannot be a single pipeline).
        """
        self.validate()
        for n in self._g.nodes:
            if self._g.out_degree(n) > 1 or self._g.in_degree(n) > 1:
                raise GraphError(
                    f"element {n!r} has fan-in/out > 1; graph is not a linear chain"
                )
        return Chain(self.topological_order(), name=self.name)

    def compile_parallel(self, copy_cost: float = 0.15, merge_cost: float = 0.2):
        """Compile into a ParaGraph-style :class:`StageParallelChain`.

        Works for any valid DAG (branching allowed); levels come from
        :meth:`parallel_stages`.
        """
        from repro.elements.parallel import StageParallelChain

        return StageParallelChain(
            self.parallel_stages(), name=self.name,
            copy_cost=copy_cost, merge_cost=merge_cost,
        )

    def compile_optimal(
        self,
        copy_cost: float = 0.15,
        merge_cost: float = 0.2,
        packet_size: int = 1554,
    ):
        """Subgraph-level composition: parallelize only where it pays.

        For each dependency level, compare serial cost (sum of members)
        against parallel cost (max of members + copy/merge overheads) at
        the given packet size, and emit the cheaper composition --
        ParaGraph's central idea of *subgraph-level* (rather than
        all-or-nothing) parallelism.  Levels that do not pay are expanded
        into singleton stages in topological order.
        """
        from repro.elements.parallel import StageParallelChain

        stages = []
        for level in self.parallel_stages():
            costs = [el.base_cost + el.per_byte * packet_size for el in level]
            serial = sum(costs)
            parallel = max(costs) + copy_cost * (len(level) - 1) + merge_cost
            if len(level) > 1 and parallel < serial:
                stages.append(list(level))
            else:
                stages.extend([el] for el in level)
        return StageParallelChain(
            stages, name=f"{self.name}-opt",
            copy_cost=copy_cost, merge_cost=merge_cost,
        )

    def parallel_stages(self) -> List[List[Element]]:
        """Group elements into dependency levels (ParaGraph-style).

        Elements within one level have no path between them and could be
        executed concurrently on a packet copy.  Used by the intra-chain
        parallelism ablation.
        """
        self.validate()
        levels: Dict[str, int] = {}
        for n in nx.topological_sort(self._g):
            preds = list(self._g.predecessors(n))
            levels[n] = 1 + max((levels[p] for p in preds), default=-1)
        n_levels = max(levels.values()) + 1
        stages: List[List[Element]] = [[] for _ in range(n_levels)]
        for name, lvl in levels.items():
            stages[lvl].append(self._elements[name])
        return stages

    def critical_path_cost(self, packet_size: int = 1554) -> float:
        """Longest-path expected cost through the DAG (no-jitter model)."""
        self.validate()
        cost: Dict[str, float] = {}
        for n in nx.topological_sort(self._g):
            el = self._elements[n]
            own = el.base_cost + el.per_byte * packet_size
            preds = list(self._g.predecessors(n))
            cost[n] = own + max((cost[p] for p in preds), default=0.0)
        return max(cost.values())


def chain_from_names(
    names: Sequence[str],
    elements: Dict[str, Element],
    chain_name: str = "chain",
) -> Chain:
    """Build a validated linear chain from element instances by name."""
    g = ElementGraph(chain_name)
    for n in names:
        g.add(elements[n])
    g.chain(*names)
    return g.compile_chain()
