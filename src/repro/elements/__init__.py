"""Click-style packet-processing elements and NF chains.

The authors' prototype lineage (ParaGraph and follow-ups) builds data
planes from **Click** elements running over DPDK.  This subpackage models
that layer: an :class:`~repro.elements.base.Element` consumes a packet,
mutates it (headers, drops, marks) and reports its *service cost* in µs;
an :class:`~repro.elements.graph.ElementGraph` composes elements into a
validated DAG and compiles linear :class:`~repro.elements.base.Chain`
pipelines that the data-plane paths execute per packet.

The NF library (:mod:`~repro.elements.nf`) implements the standard
middlebox set used by NFV evaluations: classifier, ACL firewall, NAT,
token-bucket rate limiter, flow monitor (with a count-min sketch), L4 load
balancer, DPI, and VXLAN-style encap/decap.
"""

from repro.elements.base import Element, Chain, StatelessElement, PASS, DROP
from repro.elements.graph import ElementGraph, GraphError, chain_from_names
from repro.elements.nf import (
    Classifier,
    AclFirewall,
    AclRule,
    Nat,
    RateLimiter,
    FlowMonitor,
    LoadBalancer,
    Dpi,
    VxlanEncap,
    VxlanDecap,
    Delay,
    standard_chain,
    STANDARD_CHAINS,
)
from repro.elements.sketch import CountMinSketch
from repro.elements.parallel import StageParallelChain

__all__ = [
    "Element",
    "Chain",
    "StatelessElement",
    "PASS",
    "DROP",
    "ElementGraph",
    "GraphError",
    "chain_from_names",
    "Classifier",
    "AclFirewall",
    "AclRule",
    "Nat",
    "RateLimiter",
    "FlowMonitor",
    "LoadBalancer",
    "Dpi",
    "VxlanEncap",
    "VxlanDecap",
    "Delay",
    "standard_chain",
    "STANDARD_CHAINS",
    "CountMinSketch",
    "StageParallelChain",
]
