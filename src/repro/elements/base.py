"""Element and Chain abstractions.

An element's contract is a single method::

    cost_us = element.process(packet, now)

The element may mutate the packet (rewrite its five-tuple, adjust its
size, set ``packet.dropped``) and must return the CPU time in µs the
operation consumed.  Returning a cost even for dropped packets matters:
real data planes burn cycles deciding to drop.

Service-cost model
------------------
Every element derives its cost from ``base_cost + per_byte * size``, with
optional lognormal jitter (``jitter_sigma``) modeling cache misses and
slow paths.  Costs default to the order of 0.1--0.5 µs/packet/element,
matching published per-element costs of software data planes (Click/DPDK
forwarding microbenchmarks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.net.packet import Packet

#: Verdict constants for readability in element implementations.
PASS = "pass"
DROP = "drop"

#: Pre-sample size for jitter batches.
_JITTER_BATCH = 2048


class Element:
    """Base packet-processing element.

    Parameters
    ----------
    name:
        Instance name (unique within a graph).
    base_cost:
        Fixed per-packet CPU cost (µs).
    per_byte:
        Additional cost per payload byte (µs/byte).
    jitter_sigma:
        Lognormal sigma multiplying the cost; 0 = deterministic.
    rng:
        Random stream (required when ``jitter_sigma > 0``; also used by
        subclasses with probabilistic behaviour).
    """

    #: Subclasses that keep per-flow state set this True; the multipath
    #: layer consults it to decide whether chain replicas need state
    #: sharing or flow-affinity (see repro.core docs).
    stateful = False

    def __init__(
        self,
        name: str,
        base_cost: float = 0.2,
        per_byte: float = 0.0,
        jitter_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base_cost < 0 or per_byte < 0:
            raise ValueError("costs must be non-negative")
        if jitter_sigma > 0 and rng is None:
            raise ValueError(f"element {name!r}: jitter requires an rng")
        self.name = name
        self.base_cost = base_cost
        self.per_byte = per_byte
        self.jitter_sigma = jitter_sigma
        self.rng = rng
        self.processed = 0
        self.drops = 0
        self._jit: np.ndarray = np.empty(0)
        self._jit_i = 0

    # ------------------------------------------------------------------
    def _jittered(self, cost: float) -> float:
        """Apply one lognormal jitter draw (callers check sigma first)."""
        if self._jit_i >= len(self._jit):
            self._jit = self.rng.lognormal(0.0, self.jitter_sigma, _JITTER_BATCH)
            self._jit_i = 0
        cost *= float(self._jit[self._jit_i])
        self._jit_i += 1
        return cost

    def cost_of(self, packet: Packet) -> float:
        """Service cost for ``packet`` under the element's cost model."""
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            return self._jittered(cost)
        return cost

    def process(self, packet: Packet, now: float) -> float:
        """Handle one packet; default is pure forwarding at model cost."""
        self.processed += 1
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            return self._jittered(cost)
        return cost

    def drop(self, packet: Packet, reason: str) -> None:
        """Mark ``packet`` dropped by this element."""
        packet.dropped = f"{self.name}:{reason}"
        self.drops += 1

    def reset_stats(self) -> None:
        """Zero the element's counters (state, if any, is kept)."""
        self.processed = 0
        self.drops = 0

    def clone(self, suffix: str) -> "Element":
        """Create an independent replica of this element.

        Used when instantiating one chain replica per data-plane path.
        The default implementation re-constructs from the public cost
        parameters; stateful subclasses override to replicate their
        configuration (state itself always starts empty: replicas on
        different paths intentionally do not share state, which is why
        stateful elements interact with flow-affinity policies).
        """
        return type(self)(
            f"{self.name}{suffix}",
            base_cost=self.base_cost,
            per_byte=self.per_byte,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class StatelessElement(Element):
    """Marker base for elements safe to replicate without coordination."""

    stateful = False


class Chain:
    """A linear pipeline of processors executed per packet.

    ``process`` runs every member in order until one drops the packet,
    accumulating service cost.  The cost is returned even on drop so the
    caller charges the CPU correctly.

    Members are usually :class:`Element` instances, but anything with the
    processor surface (``process``/``clone``/``stateful``/``mean_cost``)
    composes -- e.g. a nested
    :class:`~repro.elements.parallel.StageParallelChain`.

    ``elements`` is treated as fixed after construction: the per-packet
    dispatch walks a precomputed table of bound ``process`` methods, and
    ``mean_cost`` memoizes per packet size.  Compose a new :class:`Chain`
    instead of mutating the member list in place.
    """

    def __init__(self, elements: Sequence[Element], name: str = "chain") -> None:
        self.elements: List[Element] = list(elements)
        self.name = name
        self.processed = 0
        self.dropped = 0
        #: Bound-method dispatch table for the per-packet hot loop.
        self._procs = tuple(el.process for el in self.elements)
        self._mean_cost_cache: dict = {}

    def process(self, packet: Packet, now: float) -> float:
        """Run the packet through the chain; returns total CPU cost (µs)."""
        total = 0.0
        self.processed += 1
        for proc in self._procs:
            total += proc(packet, now)
            if packet.dropped is not None:
                self.dropped += 1
                break
        return total

    @property
    def stateful(self) -> bool:
        """True if any member element keeps per-flow state."""
        return any(el.stateful for el in self.elements)

    def mean_cost(self, packet_size: int = 1554) -> float:
        """Expected no-jitter cost of a packet of ``packet_size`` bytes.

        Memoized per size: element cost parameters are fixed after
        construction, and the queue-aware policies call this on every
        selection decision.
        """
        cached = self._mean_cost_cache.get(packet_size)
        if cached is not None:
            return cached
        total = 0.0
        for el in self.elements:
            if isinstance(el, Element):
                total += el.base_cost + el.per_byte * packet_size
            else:  # nested composite (Chain / StageParallelChain)
                total += el.mean_cost(packet_size)
        self._mean_cost_cache[packet_size] = total
        return total

    def clone(self, suffix: str) -> "Chain":
        """Replicate the whole chain (fresh state in every element)."""
        return Chain([el.clone(suffix) for el in self.elements], name=f"{self.name}{suffix}")

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " -> ".join(el.name for el in self.elements)
        return f"<Chain {self.name}: {names}>"
