"""Count-min sketch for the flow monitor element.

A real flow monitor cannot keep exact per-flow counters at line rate;
production monitors use sketches.  Including one here keeps the monitor's
cost/accuracy behaviour realistic and gives the property-based tests a
meaty invariant (estimate >= true count; error bound with high
probability).
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np


class CountMinSketch:
    """Classic count-min sketch with ``depth`` rows of ``width`` counters.

    Guarantees (for stream length N): the estimate never undercounts, and
    overcounts by more than ``(e/width) * N`` with probability at most
    ``exp(-depth)``.
    """

    __slots__ = ("depth", "width", "_table", "_seeds", "total")

    def __init__(self, width: int = 2048, depth: int = 4, seed: int = 7) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.depth = depth
        self.width = width
        self._table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Independent odd multipliers for multiply-shift hashing.
        self._seeds = rng.integers(1, 2**61 - 1, size=depth, dtype=np.int64) | 1
        self.total = 0

    def _indices(self, key: Hashable) -> np.ndarray:
        h = hash(key) & 0x7FFFFFFFFFFFFFFF
        # Multiply-shift family: one multiply per row, vectorized.
        mixed = (h * self._seeds) & 0x7FFFFFFFFFFFFFFF
        return mixed % self.width

    def add(self, key: Hashable, count: int = 1) -> None:
        """Increment the counters for ``key``."""
        idx = self._indices(key)
        self._table[np.arange(self.depth), idx] += count
        self.total += count

    def estimate(self, key: Hashable) -> int:
        """Point estimate of the count for ``key`` (never undercounts)."""
        idx = self._indices(key)
        return int(self._table[np.arange(self.depth), idx].min())

    def heavy_hitters(self, threshold: int, candidates) -> list:
        """Filter ``candidates`` to those estimated above ``threshold``."""
        return [k for k in candidates if self.estimate(k) >= threshold]

    def error_bound(self) -> Tuple[float, float]:
        """Return ``(epsilon*N, failure_probability)`` for this geometry."""
        eps_n = np.e / self.width * self.total
        delta = float(np.exp(-self.depth))
        return float(eps_n), delta

    def reset(self) -> None:
        """Zero all counters."""
        self._table.fill(0)
        self.total = 0
