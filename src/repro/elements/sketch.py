"""Count-min sketch for the flow monitor element.

A real flow monitor cannot keep exact per-flow counters at line rate;
production monitors use sketches.  Including one here keeps the monitor's
cost/accuracy behaviour realistic and gives the property-based tests a
meaty invariant (estimate >= true count; error bound with high
probability).
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

_MASK = 0x7FFFFFFFFFFFFFFF


class CountMinSketch:
    """Classic count-min sketch with ``depth`` rows of ``width`` counters.

    Guarantees (for stream length N): the estimate never undercounts, and
    overcounts by more than ``(e/width) * N`` with probability at most
    ``exp(-depth)``.

    The counter table is plain Python int lists: :meth:`add` runs once per
    packet in the flow monitor, and scalar list updates beat numpy fancy
    indexing by an order of magnitude at that granularity.  Counts are
    exact integers either way, so the representation is observationally
    identical.
    """

    __slots__ = ("depth", "width", "_rows", "_seeds", "_pairs", "_wmask", "total")

    def __init__(self, width: int = 2048, depth: int = 4, seed: int = 7) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.depth = depth
        self.width = width
        self._rows = [[0] * width for _ in range(depth)]
        rng = np.random.default_rng(seed)
        # Independent odd multipliers for multiply-shift hashing (the same
        # draws as always; kept as Python ints for the scalar hot path).
        seeds = rng.integers(1, 2**61 - 1, size=depth, dtype=np.int64) | 1
        self._seeds = [int(s) for s in seeds]
        # Power-of-two widths (the default) reduce row indexing to a
        # bitwise AND; ``x % w == x & (w - 1)`` for non-negative x.
        self._wmask = width - 1 if width & (width - 1) == 0 else 0
        # (row, seed) pairs so the per-packet update iterates one tuple
        # list instead of indexing two parallel lists.
        self._pairs = list(zip(self._rows, self._seeds))
        self.total = 0

    def _indices(self, key: Hashable) -> list:
        h = hash(key) & _MASK
        # Multiply-shift family: one multiply per row.
        width = self.width
        return [((h * s) & _MASK) % width for s in self._seeds]

    def add(self, key: Hashable, count: int = 1) -> None:
        """Increment the counters for ``key``."""
        h = hash(key) & _MASK
        wmask = self._wmask
        if wmask:
            # wmask's bits are a subset of _MASK's, so one AND suffices.
            for row, s in self._pairs:
                row[(h * s) & wmask] += count
        else:
            width = self.width
            for row, s in self._pairs:
                row[((h * s) & _MASK) % width] += count
        self.total += count

    def estimate(self, key: Hashable) -> int:
        """Point estimate of the count for ``key`` (never undercounts)."""
        h = hash(key) & _MASK
        width = self.width
        rows = self._rows
        return min(
            rows[i][((h * s) & _MASK) % width] for i, s in enumerate(self._seeds)
        )

    def heavy_hitters(self, threshold: int, candidates) -> list:
        """Filter ``candidates`` to those estimated above ``threshold``."""
        return [k for k in candidates if self.estimate(k) >= threshold]

    def error_bound(self) -> Tuple[float, float]:
        """Return ``(epsilon*N, failure_probability)`` for this geometry."""
        eps_n = np.e / self.width * self.total
        delta = float(np.exp(-self.depth))
        return float(eps_n), delta

    def reset(self) -> None:
        """Zero all counters."""
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
        self.total = 0
