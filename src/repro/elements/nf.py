"""The network-function library.

Each NF is an :class:`~repro.elements.base.Element` with a cost model
calibrated to published software-data-plane numbers (order 0.1--0.5 µs
per packet per element on a DPDK-class core; DPI and flow-setup slow
paths cost several µs).  Stateful NFs (NAT, load balancer, monitor) keep
real state so the tests can assert functional behaviour, not just cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.elements.base import Chain, Element, StatelessElement
from repro.elements.sketch import CountMinSketch
from repro.net.packet import FiveTuple, Packet

_WILDCARD = -1


@dataclass(frozen=True)
class AclRule:
    """One firewall rule; ``-1`` fields are wildcards.

    ``action`` is ``"allow"`` or ``"deny"``.
    """

    src: int = _WILDCARD
    dst: int = _WILDCARD
    sport: int = _WILDCARD
    dport: int = _WILDCARD
    proto: int = _WILDCARD
    action: str = "allow"

    def matches(self, ft: FiveTuple) -> bool:
        return (
            (self.src == _WILDCARD or self.src == ft.src)
            and (self.dst == _WILDCARD or self.dst == ft.dst)
            and (self.sport == _WILDCARD or self.sport == ft.sport)
            and (self.dport == _WILDCARD or self.dport == ft.dport)
            and (self.proto == _WILDCARD or self.proto == ft.proto)
        )


class Classifier(StatelessElement):
    """Tags packets with a traffic class stored in ``packet.meta``.

    Rules are ``(AclRule-style predicate, class_label)`` pairs evaluated
    first-match; unmatched packets get ``default_class``.
    """

    def __init__(
        self,
        name: str = "classifier",
        rules: Optional[Sequence[Tuple[AclRule, str]]] = None,
        default_class: str = "best-effort",
        base_cost: float = 0.15,
        per_rule: float = 0.01,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        self.rules: List[Tuple[AclRule, str]] = list(rules or [])
        self.default_class = default_class
        self.per_rule = per_rule

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            cost = self._jittered(cost)
        label = self.default_class
        rules = self.rules
        if rules:
            per_rule = self.per_rule
            ft = packet.ftuple
            for rule, cls in rules:
                cost += per_rule
                # Inlined AclRule.matches (the per-packet hot path).
                if (
                    (rule.src == _WILDCARD or rule.src == ft.src)
                    and (rule.dst == _WILDCARD or rule.dst == ft.dst)
                    and (rule.sport == _WILDCARD or rule.sport == ft.sport)
                    and (rule.dport == _WILDCARD or rule.dport == ft.dport)
                    and (rule.proto == _WILDCARD or rule.proto == ft.proto)
                ):
                    label = cls
                    break
        packet.meta = label
        return cost

    def clone(self, suffix: str) -> "Classifier":
        return Classifier(
            f"{self.name}{suffix}",
            rules=self.rules,
            default_class=self.default_class,
            base_cost=self.base_cost,
            per_rule=self.per_rule,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class AclFirewall(StatelessElement):
    """First-match ACL firewall with linear rule scan cost."""

    def __init__(
        self,
        name: str = "firewall",
        rules: Optional[Sequence[AclRule]] = None,
        default_action: str = "allow",
        base_cost: float = 0.15,
        per_rule: float = 0.008,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        self.rules: List[AclRule] = list(rules or [])
        self.default_action = default_action
        self.per_rule = per_rule

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            cost = self._jittered(cost)
        action = self.default_action
        rules = self.rules
        if rules:
            per_rule = self.per_rule
            ft = packet.ftuple
            for rule in rules:
                cost += per_rule
                # Inlined AclRule.matches (the per-packet hot path).
                if (
                    (rule.src == _WILDCARD or rule.src == ft.src)
                    and (rule.dst == _WILDCARD or rule.dst == ft.dst)
                    and (rule.sport == _WILDCARD or rule.sport == ft.sport)
                    and (rule.dport == _WILDCARD or rule.dport == ft.dport)
                    and (rule.proto == _WILDCARD or rule.proto == ft.proto)
                ):
                    action = rule.action
                    break
        if action == "deny":
            self.drop(packet, "acl-deny")
        return cost

    def clone(self, suffix: str) -> "AclFirewall":
        return AclFirewall(
            f"{self.name}{suffix}",
            rules=self.rules,
            default_action=self.default_action,
            base_cost=self.base_cost,
            per_rule=self.per_rule,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class Nat(Element):
    """Source NAT with a per-flow translation table.

    First packet of a flow takes the slow path (allocate a port, install
    the mapping, ``miss_cost``); subsequent packets hit the table at
    ``base_cost``.  The translation rewrites ``src`` and ``sport``.
    """

    stateful = True

    def __init__(
        self,
        name: str = "nat",
        public_ip: int = 9999,
        port_base: int = 20_000,
        base_cost: float = 0.18,
        miss_cost: float = 1.5,
        max_entries: int = 1_000_000,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        self.public_ip = public_ip
        self.port_base = port_base
        self.miss_cost = miss_cost
        self.max_entries = max_entries
        self.table: Dict[FiveTuple, FiveTuple] = {}
        self._next_port = port_base
        self.misses = 0

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            cost = self._jittered(cost)
        mapped = self.table.get(packet.ftuple)
        if mapped is None:
            self.misses += 1
            cost += self.miss_cost
            if len(self.table) >= self.max_entries:
                self.drop(packet, "nat-table-full")
                return cost
            mapped = FiveTuple(
                self.public_ip,
                packet.ftuple.dst,
                self._next_port,
                packet.ftuple.dport,
                packet.ftuple.proto,
            )
            self._next_port += 1
            self.table[packet.ftuple] = mapped
        packet.ftuple = mapped
        return cost

    def clone(self, suffix: str) -> "Nat":
        return Nat(
            f"{self.name}{suffix}",
            public_ip=self.public_ip,
            port_base=self.port_base,
            base_cost=self.base_cost,
            miss_cost=self.miss_cost,
            max_entries=self.max_entries,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class RateLimiter(Element):
    """Token-bucket policer: drops packets exceeding ``rate_bps``.

    The bucket refills lazily from the simulation clock, so no periodic
    refill events are needed.
    """

    stateful = True

    def __init__(
        self,
        name: str = "ratelimiter",
        rate_bps: float = 40e9,
        burst_bytes: float = 512 * 1024,
        base_cost: float = 0.12,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_Bpu = rate_bps / 8.0 / 1e6  # bytes per µs
        self.burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._t_last = 0.0

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.cost_of(packet)
        # Lazy refill.
        self._tokens = min(self.burst, self._tokens + (now - self._t_last) * self.rate_Bpu)
        self._t_last = now
        if packet.size <= self._tokens:
            self._tokens -= packet.size
        else:
            self.drop(packet, "rate-exceeded")
        return cost

    def clone(self, suffix: str) -> "RateLimiter":
        return RateLimiter(
            f"{self.name}{suffix}",
            rate_bps=self.rate_Bpu * 8.0 * 1e6,
            burst_bytes=self.burst,
            base_cost=self.base_cost,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class FlowMonitor(Element):
    """Per-flow byte/packet accounting over a count-min sketch."""

    stateful = True

    def __init__(
        self,
        name: str = "monitor",
        sketch_width: int = 2048,
        sketch_depth: int = 4,
        base_cost: float = 0.16,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        self.sketch = CountMinSketch(sketch_width, sketch_depth)
        self.sketch_width = sketch_width
        self.sketch_depth = sketch_depth

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        size = packet.size
        # Inlined CountMinSketch.add (one update per packet; the call and
        # re-hoisting overhead dominate the four counter increments).
        sk = self.sketch
        h = hash(packet.ftuple) & 0x7FFFFFFFFFFFFFFF
        wmask = sk._wmask
        if wmask:
            for row, s in sk._pairs:
                row[(h * s) & wmask] += size
            sk.total += size
        else:
            sk.add(packet.ftuple, size)
        cost = self.base_cost + self.per_byte * size
        if self.jitter_sigma > 0.0:
            return self._jittered(cost)
        return cost

    def estimate_bytes(self, ftuple: FiveTuple) -> int:
        """Estimated byte count observed for ``ftuple``."""
        return self.sketch.estimate(ftuple)

    def clone(self, suffix: str) -> "FlowMonitor":
        return FlowMonitor(
            f"{self.name}{suffix}",
            sketch_width=self.sketch_width,
            sketch_depth=self.sketch_depth,
            base_cost=self.base_cost,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class LoadBalancer(Element):
    """L4 load balancer: VIP -> backend with per-connection affinity."""

    stateful = True

    def __init__(
        self,
        name: str = "lb",
        backends: Sequence[int] = (101, 102, 103, 104),
        base_cost: float = 0.2,
        miss_cost: float = 0.8,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, **kw)
        if not backends:
            raise ValueError("need at least one backend")
        self.backends = list(backends)
        self.miss_cost = miss_cost
        self.conn_table: Dict[FiveTuple, int] = {}
        self.per_backend = {b: 0 for b in self.backends}

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.cost_of(packet)
        backend = self.conn_table.get(packet.ftuple)
        if backend is None:
            cost += self.miss_cost
            backend = self.backends[hash(packet.ftuple) % len(self.backends)]
            self.conn_table[packet.ftuple] = backend
        self.per_backend[backend] += 1
        packet.ftuple = packet.ftuple._replace(dst=backend)
        return cost

    def clone(self, suffix: str) -> "LoadBalancer":
        return LoadBalancer(
            f"{self.name}{suffix}",
            backends=self.backends,
            base_cost=self.base_cost,
            miss_cost=self.miss_cost,
            jitter_sigma=self.jitter_sigma,
            rng=self.rng,
        )


class Dpi(StatelessElement):
    """Deep packet inspection: cost scales with payload bytes.

    A fraction ``deep_scan_prob`` of packets trip the expensive pattern
    matcher (multiplier ``deep_scan_factor``), producing the long-tailed
    per-element service times DPI is known for.
    """

    def __init__(
        self,
        name: str = "dpi",
        base_cost: float = 0.25,
        per_byte: float = 0.0004,
        deep_scan_prob: float = 0.02,
        deep_scan_factor: float = 8.0,
        rng: Optional[np.random.Generator] = None,
        **kw,
    ) -> None:
        super().__init__(name, base_cost=base_cost, per_byte=per_byte, rng=rng, **kw)
        if deep_scan_prob > 0 and rng is None:
            raise ValueError("deep_scan_prob > 0 requires an rng")
        self.deep_scan_prob = deep_scan_prob
        self.deep_scan_factor = deep_scan_factor
        self.deep_scans = 0
        self._draws: np.ndarray = np.empty(0)
        self._draw_i = 0

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        cost = self.base_cost + self.per_byte * packet.size
        if self.jitter_sigma > 0.0:
            cost = self._jittered(cost)
        if self.deep_scan_prob > 0.0:
            if self._draw_i >= len(self._draws):
                self._draws = self.rng.random(2048)
                self._draw_i = 0
            if self._draws[self._draw_i] < self.deep_scan_prob:
                cost *= self.deep_scan_factor
                self.deep_scans += 1
            self._draw_i += 1
        return cost

    def clone(self, suffix: str) -> "Dpi":
        return Dpi(
            f"{self.name}{suffix}",
            base_cost=self.base_cost,
            per_byte=self.per_byte,
            deep_scan_prob=self.deep_scan_prob,
            deep_scan_factor=self.deep_scan_factor,
            rng=self.rng,
            jitter_sigma=self.jitter_sigma,
        )


#: VXLAN outer header bytes added by encap.
VXLAN_OVERHEAD = 50


class VxlanEncap(StatelessElement):
    """Adds VXLAN overhead bytes and a fixed encapsulation cost."""

    def __init__(self, name: str = "vxlan-encap", base_cost: float = 0.15, **kw) -> None:
        super().__init__(name, base_cost=base_cost, **kw)

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        packet.size += VXLAN_OVERHEAD
        return self.cost_of(packet)


class VxlanDecap(StatelessElement):
    """Strips VXLAN overhead; drops runt packets that cannot be decapped."""

    def __init__(self, name: str = "vxlan-decap", base_cost: float = 0.12, **kw) -> None:
        super().__init__(name, base_cost=base_cost, **kw)

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        if packet.size <= VXLAN_OVERHEAD:
            self.drop(packet, "runt")
        else:
            packet.size -= VXLAN_OVERHEAD
        return self.cost_of(packet)


class Delay(StatelessElement):
    """Fixed-cost pass-through element (testing and calibration)."""

    def __init__(self, name: str = "delay", base_cost: float = 0.1, **kw) -> None:
        super().__init__(name, base_cost=base_cost, **kw)


# ----------------------------------------------------------------------
# Canned chains used throughout the evaluation
# ----------------------------------------------------------------------

def _chain_basic(rng: Optional[np.random.Generator]) -> Chain:
    """classifier -> firewall -> monitor (the light 3-element SFC)."""
    return Chain(
        [
            Classifier(rules=[], rng=rng),
            AclFirewall(rules=[AclRule(dport=22, action="deny")], rng=rng),
            FlowMonitor(rng=rng),
        ],
        name="basic",
    )


def _chain_nat(rng: Optional[np.random.Generator]) -> Chain:
    """firewall -> nat -> monitor (the stateful gateway SFC)."""
    return Chain(
        [
            AclFirewall(rules=[AclRule(dport=22, action="deny")], rng=rng),
            Nat(rng=rng),
            FlowMonitor(rng=rng),
        ],
        name="nat",
    )


def _chain_heavy(rng: Optional[np.random.Generator]) -> Chain:
    """classifier -> firewall -> dpi -> nat -> monitor (5-element, DPI-heavy)."""
    if rng is None:
        raise ValueError("heavy chain needs an rng for DPI")
    return Chain(
        [
            Classifier(rules=[], rng=rng),
            AclFirewall(rules=[AclRule(dport=22, action="deny")], rng=rng),
            Dpi(rng=rng),
            Nat(rng=rng),
            FlowMonitor(rng=rng),
        ],
        name="heavy",
    )


def _chain_tunnel(rng: Optional[np.random.Generator]) -> Chain:
    """decap -> firewall -> lb -> encap (the overlay/virtual-switching SFC)."""
    return Chain(
        [
            VxlanDecap(rng=rng),
            AclFirewall(rules=[], rng=rng),
            LoadBalancer(rng=rng),
            VxlanEncap(rng=rng),
        ],
        name="tunnel",
    )


#: Registry of canned chain builders: name -> builder(rng) -> Chain.
STANDARD_CHAINS = {
    "basic": _chain_basic,
    "nat": _chain_nat,
    "heavy": _chain_heavy,
    "tunnel": _chain_tunnel,
}


def standard_chain(name: str, rng: Optional[np.random.Generator] = None) -> Chain:
    """Instantiate one of the canned evaluation chains by name."""
    try:
        builder = STANDARD_CHAINS[name]
    except KeyError:
        raise KeyError(
            f"unknown chain {name!r}; available: {sorted(STANDARD_CHAINS)}"
        ) from None
    return builder(rng)
