"""Intra-chain (ParaGraph-style) parallel composition.

The authors' earlier system, ParaGraph, parallelizes *within* one chain:
independent elements execute concurrently on packet copies, and a merger
recombines the results.  The multipath data plane parallelizes *across*
chain replicas instead.  :class:`StageParallelChain` implements the
intra-chain model so the two approaches can be compared (ablation A4):

* per packet, each dependency level of the element DAG costs the **max**
  of its members' costs (they run concurrently on copies) instead of the
  sum;
* every level with >1 member charges ``copy_cost`` per extra member
  (lightweight packet copy) plus one ``merge_cost`` (recombination) --
  the overheads that made complete NF parallelism unattractive and
  motivated subgraph-level composition.

The semantics of element side effects are preserved by executing members
in deterministic order on the *same* packet object; a real system would
partition header/state writes, which our NF library's elements do not
conflict on within a level (levels are dependency-free by construction).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.elements.base import Element
from repro.net.packet import Packet


class StageParallelChain:
    """Executes dependency levels of an element graph in parallel.

    Drop-in replacement for :class:`~repro.elements.base.Chain` (same
    ``process`` / ``mean_cost`` / ``clone`` surface), built from the
    ``parallel_stages()`` of an :class:`~repro.elements.graph.ElementGraph`.
    """

    def __init__(
        self,
        stages: Sequence[Sequence[Element]],
        name: str = "parachain",
        copy_cost: float = 0.15,
        merge_cost: float = 0.2,
    ) -> None:
        if not stages or any(not s for s in stages):
            raise ValueError("stages must be non-empty lists of elements")
        if copy_cost < 0 or merge_cost < 0:
            raise ValueError("overheads must be >= 0")
        self.stages: List[List[Element]] = [list(s) for s in stages]
        self.name = name
        self.copy_cost = copy_cost
        self.merge_cost = merge_cost
        self.processed = 0
        self.dropped = 0

    @property
    def elements(self) -> List[Element]:
        """All member elements in stage order (Chain-compatible)."""
        return [el for stage in self.stages for el in stage]

    @property
    def stateful(self) -> bool:
        return any(el.stateful for el in self.elements)

    def process(self, packet: Packet, now: float) -> float:
        """Run the packet through all levels; cost = sum of level maxima
        plus copy/merge overheads.  Stops at the level where any member
        drops the packet (the merger sees the drop)."""
        self.processed += 1
        total = 0.0
        for stage in self.stages:
            if len(stage) == 1:
                total += stage[0].process(packet, now)
            else:
                costs = [el.process(packet, now) for el in stage]
                total += max(costs)
                total += self.copy_cost * (len(stage) - 1) + self.merge_cost
            if packet.dropped is not None:
                self.dropped += 1
                break
        return total

    def mean_cost(self, packet_size: int = 1554) -> float:
        """Expected no-jitter cost of one packet."""
        total = 0.0
        for stage in self.stages:
            costs = [el.base_cost + el.per_byte * packet_size for el in stage]
            total += max(costs)
            if len(stage) > 1:
                total += self.copy_cost * (len(stage) - 1) + self.merge_cost
        return total

    def clone(self, suffix: str) -> "StageParallelChain":
        return StageParallelChain(
            [[el.clone(suffix) for el in stage] for stage in self.stages],
            name=f"{self.name}{suffix}",
            copy_cost=self.copy_cost,
            merge_cost=self.merge_cost,
        )

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "/".join(str(len(s)) for s in self.stages)
        return f"<StageParallelChain {self.name} stages={shape}>"
