"""Run options: everything orthogonal to the scenario itself.

:class:`RunOptions` is the v1 consolidation of the keyword arguments
``repro.run`` accreted as subsystems grew (``telemetry=``, ``faults=``,
``slo=``, and now checking and recycling).  The split is deliberate:

* :class:`~repro.bench.scenarios.ScenarioConfig` describes the
  *experiment* -- it serializes, sweeps, and keys result caches;
* :class:`RunOptions` describes *this invocation* -- observations and
  harness toggles that must not change the simulated trajectory or the
  result payload (telemetry, invariant checking, packet recycling), plus
  the two config conveniences (``faults``/``slo``) that fold into the
  config before the run.

``faults``/``slo`` passed here override a ``None`` field on the config;
setting both the config field and the option is an error (ambiguous).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.check.spec import CheckSpec


@dataclass
class RunOptions:
    """Per-invocation options for :func:`repro.run`.

    Attributes
    ----------
    telemetry:
        Observability bundle (:class:`repro.obs.Telemetry`); spans,
        metrics and instant events are collected into it and attached to
        the result.  Purely observational.
    faults:
        :class:`repro.faults.FaultSchedule` folded into
        ``config.faults`` (convenience; error if the config already has
        one).
    slo:
        :class:`repro.slo.SloSpec` folded into ``config.slo`` (same
        contract as ``faults``).
    check:
        Arm the runtime invariant engine: ``True`` for the default
        :class:`~repro.check.spec.CheckSpec`, or a spec instance.  The
        engine's findings land on ``result.check_report``; the simulated
        trajectory and every other result field are bit-identical armed
        or detached.
    forensics:
        Run post-run tail attribution: ``True`` for the default
        :class:`~repro.obs.forensics.ForensicsSpec` (p99, top-5
        exemplars), or a spec instance.  The report lands on
        ``result.forensics_report``.  Forensics needs span telemetry;
        when ``telemetry`` is not also set, a default
        :class:`~repro.obs.Telemetry` is attached for the run.  Pure
        post-processing: the simulated trajectory is bit-identical
        armed or detached.
    recycle:
        Recycle terminal packets through the factory free list (the
        default).  Disable when a custom ``sink.on_delivery`` hook
        retains delivered ``Packet`` objects; results are bit-identical
        either way (the differential harness enforces this).
    workers:
        Worker processes for cluster runs (``repro.run`` with a
        :class:`~repro.cluster.ClusterConfig`); ``None`` resolves via
        :func:`repro.cluster.resolve_workers`.  Purely an execution
        knob: the serialized :class:`~repro.cluster.ClusterResult` is
        bit-identical at any worker count.  Ignored for single-host
        scenario runs.
    scheduler:
        Event-scheduler backend for every simulator this run builds
        (including cluster shards): ``"heap"`` or ``"calendar"``.
        ``None`` resolves via the ``REPRO_SCHEDULER`` environment
        variable, falling back to ``"calendar"``.  Backends dispatch in
        the exact same total order, so results are bit-identical either
        way (the differential harness and the golden cross-backend tests
        enforce this) -- which is why the knob lives here and not on
        :class:`~repro.bench.scenarios.ScenarioConfig`: it must never
        key a cache or change a payload.
    """

    telemetry: Optional[object] = None
    faults: Optional[object] = None
    slo: Optional[object] = None
    check: Union[bool, CheckSpec, None] = None
    forensics: Union[bool, object, None] = None
    recycle: bool = True
    workers: Optional[int] = None
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scheduler is not None:
            from repro.sim.engine import SCHEDULERS

            if self.scheduler not in SCHEDULERS:
                raise ValueError(
                    f"scheduler must be one of {SCHEDULERS} (or None), "
                    f"got {self.scheduler!r}"
                )

    def forensics_spec(self):
        """Resolve ``forensics`` to a
        :class:`~repro.obs.forensics.ForensicsSpec` (or None when off)."""
        if self.forensics is None or self.forensics is False:
            return None
        from repro.obs.forensics import ForensicsSpec

        if self.forensics is True:
            return ForensicsSpec()
        if isinstance(self.forensics, ForensicsSpec):
            return self.forensics.validate()
        raise ValueError(
            f"forensics must be None, a bool, or a ForensicsSpec, "
            f"got {type(self.forensics).__name__}"
        )

    def check_spec(self) -> Optional[CheckSpec]:
        """Resolve ``check`` to a :class:`CheckSpec` (or None when off)."""
        if self.check is None or self.check is False:
            return None
        if self.check is True:
            return CheckSpec()
        if isinstance(self.check, CheckSpec):
            return self.check
        raise ValueError(
            f"check must be None, a bool, or a CheckSpec, "
            f"got {type(self.check).__name__}"
        )

    def merged_with(self, **legacy) -> "RunOptions":
        """Fold legacy ``repro.run`` kwargs into a copy of this options
        object; a field set in both places is an error (ambiguous)."""
        updates = {}
        for name, value in legacy.items():
            if value is None:
                continue
            if getattr(self, name) is not None:
                raise ValueError(
                    f"{name} passed both as a legacy keyword and inside "
                    f"RunOptions; set it once"
                )
            updates[name] = value
        return dataclasses.replace(self, **updates) if updates else self
