"""Cross-shard conservation: no packet vanishes between hosts.

The single-host invariant engine (:mod:`repro.check.invariants`)
accounts every packet *inside* one data plane.  This module extends the
conservation family across the shard boundary of a cluster run, over
the router counters each host reports:

* **pairwise envelope conservation** -- for every host pair ``(i, j)``:
  ``sent_i[j] == received_j[i] + fabric_dropped_j[i]``.  Fabric loss is
  drawn at the *source* and the envelope still travels (flagged), so a
  lost packet is accounted at its destination rather than silently
  never materializing; any mismatch means the barrier exchange dropped
  or duplicated an envelope.
* **per-host generation split** -- every generated packet went exactly
  one way: ``generated_i == local_i + sum_j sent_i[j]``.

:func:`check_cluster_conservation` is pure post-run arithmetic over the
result payload (no runtime hooks), so it can run on a live
:class:`~repro.cluster.ClusterResult` or one round-tripped from JSON.
"""

from __future__ import annotations

from typing import Dict, List


def check_cluster_conservation(result) -> Dict:
    """Verify the cross-shard conservation identities.

    Accepts a :class:`~repro.cluster.ClusterResult` or its
    :meth:`to_dict` payload.  Returns a report dict with ``ok``,
    per-identity totals and a (possibly empty) list of human-readable
    ``violations``; :func:`repro.cluster.run_cluster` raises
    :class:`~repro.check.invariants.InvariantViolation` when checking
    is armed and ``ok`` is false.
    """
    hosts = result["hosts"] if isinstance(result, dict) else result.hosts
    violations: List[str] = []
    total_sent = total_received = total_dropped = 0
    for h in hosts:
        hid = h["host_id"]
        router = h["router"]
        gen = router["generated"]
        local = router["local"]
        sent_total = sum(router["sent"].values())
        total_sent += sent_total
        total_received += sum(router["received"].values())
        total_dropped += sum(router["fabric_dropped"].values())
        if gen != local + sent_total:
            violations.append(
                f"host {hid}: generated {gen} != local {local} + "
                f"sent {sent_total}"
            )
    by_id = {h["host_id"]: h["router"] for h in hosts}
    for i, src_router in sorted(by_id.items()):
        for j_str, n_sent in sorted(src_router["sent"].items()):
            j = int(j_str)
            dst_router = by_id.get(j)
            if dst_router is None:
                violations.append(
                    f"host {i} sent {n_sent} envelopes to unknown host {j}"
                )
                continue
            got = dst_router["received"].get(str(i), 0)
            lost = dst_router["fabric_dropped"].get(str(i), 0)
            if n_sent != got + lost:
                violations.append(
                    f"pair ({i}->{j}): sent {n_sent} != received {got} "
                    f"+ fabric_dropped {lost}"
                )
    # The reverse direction: nothing received that was never sent.
    for j, dst_router in sorted(by_id.items()):
        seen = set(dst_router["received"]) | set(dst_router["fabric_dropped"])
        for i_str in sorted(seen):
            i = int(i_str)
            src_router = by_id.get(i)
            sent = 0 if src_router is None else \
                src_router["sent"].get(str(j), 0)
            got = dst_router["received"].get(i_str, 0)
            lost = dst_router["fabric_dropped"].get(i_str, 0)
            if sent == 0 and got + lost > 0:
                violations.append(
                    f"pair ({i}->{j}): accounted {got + lost} envelopes "
                    f"that host {i} never sent"
                )
    return {
        "ok": not violations,
        "envelopes_sent": total_sent,
        "envelopes_received": total_received,
        "fabric_dropped": total_dropped,
        "violations": violations,
    }
