"""Property-based scenario fuzzing.

:func:`fuzz_scenarios` generates random-but-valid
:class:`~repro.bench.scenarios.ScenarioConfig`\\ s -- spanning policies,
chains, traffic models, qdisc-free host shapes, interference, and fault
schedules -- and runs each with every invariant armed.  The property
under test is simply *"no armed invariant fires"*: conservation, dedup,
ordering and controller consistency must hold on every reachable
configuration, not just the canned experiment grid.

A failing case is **shrunk** greedily toward a minimal reproducer
(drop the faults, calm the traffic, fewer paths/flows, shorter run),
re-running after each candidate reduction and keeping it only while the
violation persists.  The minimal config is written to disk as JSON
(``ScenarioConfig.from_dict``-loadable) so a failure travels as one
small file.

Everything is seeded: the same ``seed`` regenerates the same cases.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.check.invariants import InvariantEngine
from repro.check.spec import CheckSpec

#: Policies the fuzzer draws from (all registry names; replication
#: variants need n_paths >= their copy count and are gated below).
_POLICIES = ("single", "hash", "rr", "spray", "flowlet", "leastload",
             "po2", "weighted", "redundant2", "redundant3", "adaptive")
_CHAINS = ("basic", "nat", "heavy", "tunnel")
_TRAFFIC = ("poisson", "onoff", "incast")
_FAULT_KINDS = ("crash", "hang", "degrade", "drop_burst", "sched_freeze")


def generate_config(rng: np.random.Generator) -> ScenarioConfig:
    """Draw one random-but-valid scenario (validated before return)."""
    n_paths = int(rng.integers(1, 6))
    policy = str(rng.choice(_POLICIES))
    if policy == "redundant3" and n_paths < 3:
        n_paths = 3
    elif policy == "redundant2" and n_paths < 2:
        n_paths = 2
    traffic = str(rng.choice(_TRAFFIC))
    duration = float(rng.integers(4, 13)) * 1000.0
    cfg = ScenarioConfig(
        policy=policy,
        n_paths=n_paths,
        chain=str(rng.choice(_CHAINS)),
        traffic=traffic,
        load=float(rng.uniform(0.15, 0.9)),
        duration=duration,
        warmup=float(rng.integers(0, 3)) * 250.0,
        drain=2000.0,
        seed=int(rng.integers(0, 2**31 - 1)),
        n_flows=int(rng.integers(8, 65)),
    )
    if traffic == "onoff":
        cfg.burstiness = float(rng.uniform(1.0, 4.0))
        cfg.mean_on = float(rng.uniform(100.0, 600.0))
    elif traffic == "incast":
        cfg.fan_in = int(rng.integers(2, 25))
        cfg.burst_pkts = int(rng.integers(1, 13))
        cfg.epoch = float(rng.uniform(500.0, 3000.0))
    if rng.random() < 0.3:
        cfg.interfere_intensity = float(rng.uniform(0.5, 4.0))
        cfg.interfere_path = int(rng.integers(0, n_paths))
    if rng.random() < 0.25:
        cfg.mpdp_overrides = {"evacuation": True}
    if rng.random() < 0.45:
        cfg.faults = _random_faults(rng, n_paths, duration)
    return cfg.validate()


def _random_faults(rng: np.random.Generator, n_paths: int, duration: float):
    """A 1-3 event schedule with kind-correct parameters."""
    from repro.faults import FaultSchedule

    sched = FaultSchedule()
    for _ in range(int(rng.integers(1, 4))):
        kind = str(rng.choice(_FAULT_KINDS))
        at = float(rng.uniform(0.1, 0.6)) * duration
        dur = float(rng.uniform(0.1, 0.35)) * duration
        path = int(rng.integers(0, n_paths))
        if kind == "crash":
            sched.crash(path, at=at, duration=dur)
        elif kind == "hang":
            sched.hang(path, at=at, duration=dur)
        elif kind == "degrade":
            sched.degrade(path, at=at, duration=dur,
                          factor=float(rng.uniform(2.0, 8.0)))
        elif kind == "drop_burst":
            sched.drop_burst(at=at, duration=dur,
                             prob=float(rng.uniform(0.2, 1.0)))
        else:
            sched.sched_freeze(path, at=at, duration=min(dur, 2000.0))
    return sched


def run_armed(config: ScenarioConfig,
              sample_interval: float = 250.0) -> Dict:
    """Run one config with every invariant armed; returns the check report."""
    engine = InvariantEngine(CheckSpec(sample_interval=sample_interval))
    result = run_scenario(config, check=engine)
    return result.check_report


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _shrink_steps(cfg: ScenarioConfig) -> List:
    """Candidate reductions, most drastic first; each returns a new config."""
    import dataclasses as _dc

    steps = []
    if cfg.faults is not None:
        steps.append(lambda c: _dc.replace(c, faults=None))
    if cfg.interfere_intensity > 0:
        steps.append(lambda c: _dc.replace(c, interfere_intensity=0.0))
    if cfg.mpdp_overrides:
        steps.append(lambda c: _dc.replace(c, mpdp_overrides={}))
    if cfg.traffic != "poisson":
        steps.append(lambda c: _dc.replace(c, traffic="poisson"))
    if cfg.chain != "basic":
        steps.append(lambda c: _dc.replace(c, chain="basic"))
    if cfg.n_flows > 8:
        steps.append(lambda c: _dc.replace(c, n_flows=8))
    if cfg.n_paths > 2 and not str(cfg.policy).startswith("redundant3"):
        steps.append(lambda c: _dc.replace(c, n_paths=2))
    if cfg.duration > 2000.0:
        steps.append(
            lambda c: _dc.replace(c, duration=max(2000.0, c.duration / 2),
                                  warmup=0.0)
        )
    if cfg.load > 0.5:
        steps.append(lambda c: _dc.replace(c, load=0.5))
    return steps


def shrink_config(cfg: ScenarioConfig,
                  sample_interval: float = 250.0,
                  budget: int = 20) -> ScenarioConfig:
    """Greedily minimize a violating config, keeping each reduction only
    while the run still reports a violation; at most ``budget`` re-runs."""
    current = cfg
    runs = 0
    progress = True
    while progress and runs < budget:
        progress = False
        for step in _shrink_steps(current):
            if runs >= budget:
                break
            try:
                candidate = step(current).validate()
            except ValueError:
                continue
            runs += 1
            if not run_armed(candidate, sample_interval)["ok"]:
                current = candidate
                progress = True
                break
    return current


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def fuzz_scenarios(cases: int = 25,
                   seed: int = 0,
                   out_dir: Optional[str] = None,
                   sample_interval: float = 250.0,
                   shrink: bool = True,
                   progress=None) -> Dict:
    """Fuzz ``cases`` random scenarios with all invariants armed.

    Returns a ``fuzz_report`` payload: per-failure the violating config
    (original and shrunk), the first violation, and -- when ``out_dir``
    is given -- the path of the minimal repro JSON written there.
    ``progress`` is an optional ``fn(index, config, report)`` callback
    (the CLI prints one line per case).
    """
    from repro import schemas

    if cases < 1:
        raise ValueError(f"cases must be >= 1, got {cases}")
    rng = np.random.default_rng(seed)
    failures = []
    for i in range(cases):
        cfg = generate_config(rng)
        report = run_armed(cfg, sample_interval)
        if progress is not None:
            progress(i, cfg, report)
        if report["ok"]:
            continue
        entry = {
            "case": i,
            "config": cfg.to_dict(),
            "first_violation": report["first_violation"],
            "violation_count": report["violation_count"],
        }
        if shrink:
            minimal = shrink_config(cfg, sample_interval)
            entry["shrunk_config"] = minimal.to_dict()
            minimal_report = run_armed(minimal, sample_interval)
            entry["shrunk_first_violation"] = minimal_report["first_violation"]
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"fuzz-repro-{seed}-{i}.json")
            with open(path, "w") as fh:
                json.dump(entry.get("shrunk_config", entry["config"]),
                          fh, indent=2, sort_keys=True)
                fh.write("\n")
            entry["repro_path"] = path
        failures.append(entry)
    return {
        "schema_version": schemas.version_for("fuzz_report"),
        "ok": not failures,
        "cases": cases,
        "seed": seed,
        "sample_interval": sample_interval,
        "failures": failures,
    }
