"""Configuration for the runtime invariant engine.

A :class:`CheckSpec` selects which invariant families are armed and how
often the conservation sampler fires.  Like telemetry, checking is an
*observation* of a run -- it is not part of :class:`ScenarioConfig`, it
never perturbs the simulated trajectory, and the result payload is
bit-identical armed or detached (the ``check_report`` rides alongside,
serialized only when present).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class CheckSpec:
    """Knobs for one armed :class:`~repro.check.invariants.InvariantEngine`.

    Attributes
    ----------
    sample_interval:
        Conservation/queue-audit sampling period (µs).  Samples run at
        LOW event priority so they observe quiescent states and never
        interleave with same-time data-plane work.
    conservation / dedup / fifo / flow_order / control:
        Arm/disarm individual invariant families (all on by default).
    audit_queues:
        Include the O(queue-length) per-queue byte-accounting audit in
        each sample.
    strict:
        Raise :class:`InvariantViolation` at the first violation instead
        of recording it (debugging aid; reports are the default).
    max_violations:
        Recording cap; further violations are counted but not stored.
    """

    sample_interval: float = 500.0
    conservation: bool = True
    dedup: bool = True
    fifo: bool = True
    flow_order: bool = True
    control: bool = True
    audit_queues: bool = True
    strict: bool = False
    max_violations: int = 100

    def validate(self) -> "CheckSpec":
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive (µs), got "
                f"{self.sample_interval}"
            )
        if self.max_violations < 1:
            raise ValueError(
                f"max_violations must be >= 1, got {self.max_violations}"
            )
        return self

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckSpec":
        """Build a spec from :meth:`to_dict`-shaped (JSON) data."""
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown CheckSpec field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(names)}"
            )
        return cls(**data)
