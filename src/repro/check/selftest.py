"""Mutation self-test: prove the checker catches real bugs.

A green invariant report is only trustworthy if the engine demonstrably
*fires* when the property it guards is broken.  This module deliberately
breaks the deduplicator -- every replicated copy is delivered instead of
first-copy-wins -- and asserts that:

1. the armed invariant engine reports a ``dedup`` violation naming the
   twice-delivered packet, and
2. the differential comparison between the intact and the broken run
   flags result drift (delivered counts, latency percentiles),

then restores the guard and re-runs the same scenario armed, expecting a
clean report.  Run via ``repro check selftest`` (CI does).
"""

from __future__ import annotations

from typing import Dict

from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.check.diff import deep_diff
from repro.check.invariants import InvariantEngine
from repro.check.spec import CheckSpec

#: Replication scenario the mutation runs against: every packet takes
#: two paths, so an unguarded dedup double-delivers almost everything.
SELFTEST_CONFIG = dict(
    policy="redundant2",
    n_paths=3,
    load=0.35,
    duration=6000.0,
    warmup=500.0,
    drain=3000.0,
    seed=42,
    n_flows=32,
)


def _armed_run(config: ScenarioConfig):
    engine = InvariantEngine(CheckSpec(sample_interval=250.0))
    # Recycling stays off: the broken-dedup variant double-frees packets
    # (both copies reach the sink), which would alias pool entries.
    result = run_scenario(config, check=engine, recycle=False)
    return result


def mutation_selftest(seed: int = 42) -> Dict:
    """Break dedup, expect the engine and the differ to both catch it.

    Returns a JSON-friendly report; ``ok`` means all three expectations
    held (violation fired, drift flagged, intact run clean).
    """
    from repro.core.replicator import Deduplicator

    config = ScenarioConfig(**{**SELFTEST_CONFIG, "seed": seed})

    intact = _armed_run(config)
    intact_clean = intact.check_report["ok"]

    original = Deduplicator.should_deliver

    def deliver_every_copy(self, packet):
        # Keep the table bookkeeping (entries still expire) but ignore
        # the first-copy-wins verdict -- the exact bug the dedup
        # invariant exists to catch.
        original(self, packet)
        return True

    Deduplicator.should_deliver = deliver_every_copy
    try:
        broken = _armed_run(config)
    finally:
        Deduplicator.should_deliver = original

    report = broken.check_report
    first = report["first_violation"]
    caught = (not report["ok"]) and first is not None \
        and first["invariant"] == "dedup"

    intact_payload = intact.to_dict()
    broken_payload = broken.to_dict()
    intact_payload.pop("check_report", None)
    broken_payload.pop("check_report", None)
    drift = deep_diff(intact_payload, broken_payload)

    return {
        "ok": bool(caught and drift and intact_clean),
        "mutation": "Deduplicator.should_deliver delivers every copy",
        "violation_caught": bool(caught),
        "first_violation": first,
        "broken_violation_count": report["violation_count"],
        "drift_detected": bool(drift),
        "drift_example": drift[:5],
        "intact_clean": bool(intact_clean),
    }
