"""repro.check -- runtime invariants, scenario fuzzing, differential replay.

Three layers of systematic correctness checking for the simulator:

* :class:`InvariantEngine` (``repro check run`` / ``RunOptions(check=...)``)
  -- cheap assertion hooks armed at the data plane's trust boundaries,
  checking conservation, dedup soundness, FIFO-per-path ordering,
  per-flow delivery order, controller consistency, and clock
  monotonicity; zero-cost no-ops when detached.
* :func:`fuzz_scenarios` (``repro check fuzz``) -- property-based
  generation of random-but-valid :class:`ScenarioConfig`\\ s, run with
  all invariants armed; failures shrink to a minimal repro config.
* :func:`diff_scenario` (``repro check diff``) -- differential replay
  of one scenario across harness variants that must not change results
  (telemetry on/off, faults kwarg-vs-config, jobs=1 vs N, packet
  recycling on/off, checking armed/detached), diffed field by field.

:func:`mutation_selftest` (``repro check selftest``) proves the engine
catches real violations by deliberately breaking the deduplicator.
See docs/CHECKING.md.
"""

from repro.check.invariants import (
    INVARIANT_NAMES,
    InvariantEngine,
    InvariantViolation,
    NullInvariants,
    Violation,
)
from repro.check.spec import CheckSpec

__all__ = [
    "CheckSpec",
    "InvariantEngine",
    "InvariantViolation",
    "INVARIANT_NAMES",
    "NullInvariants",
    "Violation",
    "fuzz_scenarios",
    "diff_scenario",
    "deep_diff",
    "mutation_selftest",
    "check_cluster_conservation",
]


def __getattr__(name):
    # Lazy: fuzz/diff/selftest import the scenario harness, which imports
    # the data-plane modules that themselves import this package.
    if name == "fuzz_scenarios":
        from repro.check.fuzz import fuzz_scenarios

        return fuzz_scenarios
    if name == "diff_scenario":
        from repro.check.diff import diff_scenario

        return diff_scenario
    if name == "deep_diff":
        from repro.check.diff import deep_diff

        return deep_diff
    if name == "mutation_selftest":
        from repro.check.selftest import mutation_selftest

        return mutation_selftest
    if name == "check_cluster_conservation":
        from repro.check.cluster import check_cluster_conservation

        return check_cluster_conservation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
