"""Differential replay harness.

One determinism contract underpins every artifact this library emits:
harness toggles -- telemetry, how faults are passed, worker counts,
packet recycling, invariant checking -- must never change *what* a
scenario computes.  :func:`diff_scenario` enforces it by brute force:
re-run the same scenario under each variant and diff the result payloads
field by field.  Any drift is a bug in the harness (or a component
secretly keying behaviour off an observation hook), and the per-leaf
diff names exactly which field moved.

Variants exercised (each skipped with a reason when not applicable):

``telemetry``     full observability bundle attached vs bare.
``faults_kwarg``  fault schedule passed per-invocation (``RunOptions``)
                  vs embedded in the config (fault scenarios only).
``recycle_off``   terminal-packet recycling disabled vs enabled.
``check_armed``   invariant engine armed vs detached.
``scheduler``     the non-default event-scheduler backend (heap vs
                  calendar) replaying the base run.
``jobs``          a 2-cell sweep run with ``jobs=1`` vs ``jobs=2``
                  (fork pool), compared cell by cell, cache bypassed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.bench.scenarios import ScenarioConfig, run_scenario

#: Cap on recorded leaf diffs per variant (the first one names the bug).
MAX_DIFFS = 20


def deep_diff(a, b, path: str = "", out: Optional[List[str]] = None,
              ) -> List[str]:
    """Recursively compare two JSON-ish values; returns leaf-level
    difference descriptions (empty when identical).

    NaNs compare equal to each other (latency percentiles of empty
    windows are NaN on both sides); floats compare exactly otherwise --
    the whole point is bit-identity, not tolerance.
    """
    if out is None:
        out = []
    if len(out) >= MAX_DIFFS:
        return out
    where = path or "<root>"
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
        and not isinstance(a, bool) and not isinstance(b, bool)
    ):
        out.append(f"{where}: type {type(a).__name__} != {type(b).__name__}")
        return out
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            child = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(f"{child}: missing on left")
            elif key not in b:
                out.append(f"{child}: missing on right")
            else:
                deep_diff(a[key], b[key], child, out)
            if len(out) >= MAX_DIFFS:
                return out
        return out
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{where}: length {len(a)} != {len(b)}")
            return out
        for i, (x, y) in enumerate(zip(a, b)):
            deep_diff(x, y, f"{path}[{i}]", out)
            if len(out) >= MAX_DIFFS:
                return out
        return out
    if isinstance(a, float) and isinstance(b, float) and math.isnan(a) \
            and math.isnan(b):
        return out
    if a != b:
        out.append(f"{where}: {a!r} != {b!r}")
    return out


def _identity(result) -> Dict:
    """A result's comparable payload: everything except observations."""
    out = result.to_dict()
    out.pop("check_report", None)
    return out


def diff_scenario(config: ScenarioConfig,
                  jobs: int = 2,
                  variants: Optional[List[str]] = None) -> Dict:
    """Differentially replay ``config`` across harness variants.

    Returns a ``diff_report`` payload; ``all_identical`` is the
    headline, per-variant entries carry ``identical`` plus the leaf
    diffs when drift was found.  ``variants`` restricts the run to a
    subset of variant names (default: all applicable).
    """
    import dataclasses as _dc

    from repro import schemas

    config.validate()
    wanted = None if variants is None else set(variants)
    report: Dict[str, Dict] = {}
    skipped: Dict[str, str] = {}

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    base = _identity(run_scenario(config))

    def compare(name: str, other: Dict) -> None:
        diffs = deep_diff(base, other)
        report[name] = {"identical": not diffs, "diffs": diffs}

    if want("telemetry"):
        from repro.obs import Telemetry

        compare("telemetry",
                _identity(run_scenario(config, telemetry=Telemetry())))
    if want("faults_kwarg"):
        if config.faults is None:
            skipped["faults_kwarg"] = "config has no fault schedule"
        else:
            # Same schedule, passed per-invocation instead of embedded.
            import repro

            bare = _dc.replace(config, faults=None)
            result = repro.run(bare, repro.RunOptions(faults=config.faults))
            compare("faults_kwarg", _identity(result))
    if want("recycle_off"):
        compare("recycle_off", _identity(run_scenario(config, recycle=False)))
    if want("check_armed"):
        compare("check_armed", _identity(run_scenario(config, check=True)))
    if want("scheduler"):
        # The non-default backend must replay the base payload exactly
        # (the base run used the resolved default, normally calendar).
        from repro.sim.engine import default_scheduler

        other = "heap" if default_scheduler() == "calendar" else "calendar"
        compare("scheduler",
                _identity(run_scenario(config, scheduler=other)))
    if want("jobs"):
        jobs = max(2, jobs)
        serial = _sweep_identity(config, jobs=1)
        parallel = _sweep_identity(config, jobs=jobs)
        diffs = deep_diff(serial, parallel)
        report["jobs"] = {"identical": not diffs, "diffs": diffs}

    return {
        "schema_version": schemas.version_for("diff_report"),
        "config": config.to_dict(),
        "variants": report,
        "skipped": skipped,
        "all_identical": all(v["identical"] for v in report.values()),
    }


def _sweep_identity(config: ScenarioConfig, jobs: int) -> List[Dict]:
    """Identity dicts of a 2-cell sweep over ``config`` (seed axis).

    Two cells so a multi-worker pool genuinely exercises parallel
    workers (``resolve_jobs`` caps jobs at the cell count); the cache is
    bypassed so both runs actually simulate.
    """
    from repro.sweep import Axis, SweepSpec, run_sweep

    base = config.to_dict()
    spec = SweepSpec(
        name="check-diff-jobs",
        base=base,
        axes=[Axis("seed", [config.seed, config.seed + 1])],
    )
    sweep = run_sweep(spec, jobs=jobs, cache=False, progress=None)
    return sweep.identity()
