"""Runtime invariant engine.

The engine arms cheap assertion hooks at the data plane's trust
boundaries -- the delivery sink, the per-path completion fan-in, the
reorder buffer, and the controller tick -- plus a LOW-priority periodic
*conservation sampler* that balances the books:

``conservation``
    At every sample point, every packet the NIC accepted (plus every
    replica created) is delivered, suppressed, dropped, or visibly in
    flight (NIC ring + path queues + reorder buffer), with at most one
    in-service batch per path unaccounted (completions scheduled but not
    yet fired).
``dedup``
    No logical packet is delivered twice: under replication all copies
    share one logical key (``copy_of`` / primary pid) and exactly one
    may cross the sink.
``fifo``
    Per-path completion order preserves enqueue order on FIFO queues
    (``t_enq`` non-decreasing per path; re-steered packets are
    re-stamped on their new queue, so the invariant survives
    evacuation/ejection).  Automatically disarmed for non-FIFO qdiscs.
``flow_order``
    The reorder buffer's in-order deliveries carry strictly increasing
    sequence numbers per flow (late deliveries are exempt -- they are
    the buffer's documented give-up path).
``control``
    Controller state stays consistent: ``live_ids`` is exactly paths
    minus ejected minus parked, the two out-of-service sets are
    disjoint, and published weights are a normalized distribution.
``clock``
    Observed simulation time never runs backwards; queue byte
    accounting matches queue contents (sampled audit).

Zero-cost when detached: components hold the :data:`NullInvariants`
singleton (``enabled=False``), so every hook site is one attribute
check -- the same pattern as :data:`repro.obs.span.NullTracer`.  Armed
or not, the simulated trajectory is bit-identical: hooks only *read*
data-plane state, and the sampler runs at LOW priority without touching
any random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.check.spec import CheckSpec
from repro.sim.engine import LOW

#: Invariant family names, in report order.
INVARIANT_NAMES = ("conservation", "dedup", "fifo", "flow_order",
                   "control", "clock")


class InvariantViolation(AssertionError):
    """Raised at the first violation when ``CheckSpec.strict`` is set."""


@dataclass
class Violation:
    """One recorded invariant breach."""

    invariant: str
    time: float
    message: str
    #: Offending packet id (-1 when the violation is not packet-scoped).
    pid: int = -1

    def to_dict(self) -> Dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "pid": self.pid,
        }


class _NullInvariants:
    """Detached stand-in: every hook is a no-op behind ``enabled=False``.

    Hot-path sites guard with ``if self.invariants.enabled:`` so the
    detached cost is one attribute check per site -- identical to the
    NullTracer observability pattern.
    """

    __slots__ = ()
    enabled = False

    def on_deliver(self, packet) -> None:  # pragma: no cover - never armed
        pass

    def on_path_complete(self, packet) -> None:  # pragma: no cover
        pass

    def on_reorder_deliver(self, flow_id, seq, late) -> None:  # pragma: no cover
        pass

    def on_control_tick(self, controller) -> None:  # pragma: no cover
        pass


#: Shared detached singleton (assign, never mutate).
NullInvariants = _NullInvariants()


class InvariantEngine:
    """Armed invariant checker for one simulation run.

    Attach with :meth:`attach` after the host is built; hooks fire
    during the run; call :meth:`finalize` after ``host.finalize()`` and
    read :meth:`report`.  The engine is observational: arming it must
    not change any result payload (the golden determinism tests pin
    this).
    """

    enabled = True

    def __init__(self, spec: Optional[CheckSpec] = None) -> None:
        self.spec = (spec or CheckSpec()).validate()
        self.violations: List[Violation] = []
        #: Total violations seen (may exceed ``len(violations)`` once the
        #: recording cap is hit).
        self.violation_count = 0
        #: Hook-invocation counters (proof the checks actually ran).
        self.checked: Dict[str, int] = {name: 0 for name in INVARIANT_NAMES}
        self.samples = 0
        self._sim = None
        self._host = None
        self._sampler = None
        self._service_slack = 0
        self._fifo_armed = False
        self._last_now = float("-inf")
        # dedup: logical keys already delivered (copy_of / primary pid).
        self._delivered_keys = set()
        # fifo: per-path last completed t_enq.
        self._last_enq: Dict[int, float] = {}
        # flow_order: per-flow last in-order sequence number.
        self._last_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim, host) -> None:
        """Arm the hooks on ``host``'s components and start the sampler."""
        from repro.dataplane.queues import PathQueue

        if self._sim is not None:
            raise ValueError(
                "InvariantEngine is single-use: it holds per-run state "
                "(delivered keys, per-path/flow cursors); build a fresh "
                "engine for each run"
            )
        self._sim = sim
        self._host = host
        spec = self.spec
        if spec.dedup or spec.clock:
            host.sink.invariants = self
        if spec.fifo:
            # Per-path FIFO ordering only holds for the plain drop-tail
            # queue; prio/drr qdiscs reorder by design.
            self._fifo_armed = all(
                type(p.queue) is PathQueue for p in host.paths
            )
            if self._fifo_armed:
                host.invariants = self
        if spec.flow_order and host.reorder is not None:
            host.reorder.invariants = self
        if spec.control and host.controller is not None:
            host.controller.invariants = self
        self._service_slack = sum(p.poller.batch_size for p in host.paths)
        if spec.conservation:
            self._sampler = sim.periodic(
                spec.sample_interval, self._sample, priority=LOW
            )

    def finalize(self) -> None:
        """Stop the sampler and take the closing conservation sample."""
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None
        if self.spec.conservation and self._host is not None:
            self._sample()

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _violate(self, invariant: str, message: str, pid: int = -1) -> None:
        now = self._sim.now if self._sim is not None else 0.0
        self.violation_count += 1
        if len(self.violations) < self.spec.max_violations:
            self.violations.append(Violation(invariant, now, message, pid))
        if self.spec.strict:
            raise InvariantViolation(
                f"[{invariant}] t={now:.3f}us pid={pid}: {message}"
            )

    def _check_clock(self) -> None:
        self.checked["clock"] += 1
        now = self._sim._now
        if now < self._last_now:
            self._violate(
                "clock",
                f"simulation clock ran backwards: {now} after {self._last_now}",
            )
        self._last_now = now

    # ------------------------------------------------------------------
    # Hot-path hooks (guarded by ``invariants.enabled`` at each site)
    # ------------------------------------------------------------------
    def on_deliver(self, packet) -> None:
        """Sink hook: dedup soundness + timestamp sanity per delivery."""
        self._check_clock()
        if self.spec.dedup:
            self.checked["dedup"] += 1
            key = packet.copy_of if packet.copy_of >= 0 else packet.pid
            if key in self._delivered_keys:
                self._violate(
                    "dedup",
                    f"logical packet {key} delivered twice "
                    f"(second copy pid={packet.pid}, flow={packet.flow_id}, "
                    f"seq={packet.seq})",
                    pid=packet.pid,
                )
            else:
                self._delivered_keys.add(key)
        if packet.t_done < packet.t_created:
            self._violate(
                "clock",
                f"delivery before creation: t_done={packet.t_done} < "
                f"t_created={packet.t_created}",
                pid=packet.pid,
            )

    def on_path_complete(self, packet) -> None:
        """Per-path completion hook: FIFO enqueue-order preservation."""
        if not self._fifo_armed:
            return
        self.checked["fifo"] += 1
        path_id = packet.path_id
        last = self._last_enq.get(path_id)
        if last is not None and packet.t_enq < last:
            self._violate(
                "fifo",
                f"path {path_id} completed t_enq={packet.t_enq} after "
                f"t_enq={last} (FIFO order broken)",
                pid=packet.pid,
            )
        self._last_enq[path_id] = packet.t_enq

    def on_reorder_deliver(self, flow_id: int, seq: int, late: bool) -> None:
        """Reorder-buffer hook: in-order deliveries strictly increase."""
        self.checked["flow_order"] += 1
        if late:
            return
        last = self._last_seq.get(flow_id)
        if last is not None and seq <= last:
            self._violate(
                "flow_order",
                f"flow {flow_id} delivered seq {seq} in-order after "
                f"seq {last}",
            )
        self._last_seq[flow_id] = seq

    def on_control_tick(self, controller) -> None:
        """Controller hook: live-set consistency and weight sanity."""
        self._check_clock()
        self.checked["control"] += 1
        all_ids = {p.path_id for p in controller.paths}
        expected_live = all_ids - controller.ejected - controller.admin_down
        if set(controller.live_ids) != expected_live:
            self._violate(
                "control",
                f"live_ids {sorted(controller.live_ids)} != paths - ejected "
                f"- parked {sorted(expected_live)}",
            )
        overlap = controller.ejected & controller.admin_down
        if overlap:
            self._violate(
                "control",
                f"paths {sorted(overlap)} both ejected and admin-parked",
            )
        weights = controller.weights
        if len(weights) != len(controller.paths) or any(
            w < 0.0 for w in weights
        ) or abs(sum(weights) - 1.0) > 1e-6:
            self._violate(
                "control",
                f"weights not a normalized distribution: {weights}",
            )
        for p in controller.paths:
            if len(p.queue) < 0 or p.queue.bytes < 0:
                self._violate(
                    "control",
                    f"path {p.path_id} negative queue occupancy "
                    f"(len={len(p.queue)}, bytes={p.queue.bytes})",
                )

    # ------------------------------------------------------------------
    # Periodic conservation sample
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        self._check_clock()
        self.samples += 1
        self.checked["conservation"] += 1
        host = self._host
        nic = host.nic
        units = nic.received + host.replicator.replicas_created
        drops = 0
        for v in host.drops.values():
            drops += v
        for p in host.paths:
            # Classed qdiscs evict lower-priority packets internally on
            # overflow; those drops never reach the host callback.
            drops += getattr(p.queue, "evicted", 0)
        accounted = host.sink.delivered + host.suppressed + drops
        in_flight = units - accounted
        visible = nic.ring_occupancy
        for p in host.paths:
            visible += len(p.queue)
        if host.reorder is not None:
            visible += host.reorder.occupancy
        if in_flight < 0:
            self._violate(
                "conservation",
                f"over-accounted: delivered+suppressed+dropped={accounted} "
                f"exceeds accepted+replicas={units}",
            )
        else:
            # Packets popped into an in-service batch have completions
            # scheduled but not yet fired: at most one batch per path.
            slack = in_flight - visible
            if slack < 0 or slack > self._service_slack:
                self._violate(
                    "conservation",
                    f"books don't balance: in_flight={in_flight} vs "
                    f"visible={visible} (ring+queues+reorder); in-service "
                    f"slack {slack} outside [0, {self._service_slack}]",
                )
        if self.spec.audit_queues:
            for p in host.paths:
                # Registry qdiscs outside this repo may not implement
                # the audit protocol; skip them rather than crash.
                audit = getattr(p.queue, "audit", None)
                if audit is not None:
                    msg = audit()
                    if msg is not None:
                        self._violate("conservation",
                                      f"path {p.path_id} queue audit: {msg}")
        # Dedup table hygiene: fully-accounted entries must be evicted.
        dead = [k for k, e in host.dedup._outstanding.items() if e[0] <= 0]
        if dead:
            self._violate(
                "dedup",
                f"dedup table retains fully-accounted entries {dead[:5]}"
                + ("..." if len(dead) > 5 else ""),
            )
        if host.reorder is not None and host.reorder.occupancy < 0:
            self._violate(
                "conservation",
                f"reorder occupancy negative: {host.reorder.occupancy}",
            )

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def report(self) -> Dict:
        """Post-run ``check_report`` payload (JSON-friendly).

        ``ok`` is the headline; ``first_violation`` names the first
        broken invariant with the offending packet/time, and
        ``invariants`` records per-family hook counts so a green report
        can be distinguished from a report whose checks never ran.
        """
        from repro import schemas

        first = self.violations[0].to_dict() if self.violations else None
        return {
            "schema_version": schemas.version_for("check_report"),
            "ok": self.violation_count == 0,
            "spec": self.spec.to_dict(),
            "samples": self.samples,
            "invariants": dict(self.checked),
            "violation_count": self.violation_count,
            "first_violation": first,
            "violations": [v.to_dict() for v in self.violations],
        }
