"""Path-selection policies.

A policy answers one question per ingress packet: *which path(s) does
this packet take?*  ``select`` returns a non-empty list of path ids --
the first is the primary, any further ids receive replicas (first copy
to complete wins).

The zoo spans the design space the paper's evaluation compares:

======================  =========================  ====================
policy                  granularity                signal used
======================  =========================  ====================
:class:`SinglePath`     none (baseline)            --
:class:`RandomHash`     per flow (ECMP-like)       hash only
:class:`RoundRobin`     per packet                 none
:class:`RandomSpray`    per packet                 none
:class:`FlowletSwitching` per flowlet              queue/latency at boundary
:class:`LeastLoaded`    per packet                 expected wait
:class:`PowerOfTwo`     per packet                 depth of 2 samples
:class:`RedundantK`     per packet, r copies       none
:class:`AdaptiveMultipath` per flowlet + selective  health + wait + budget
                        replication
======================  =========================  ====================

``needs_reorder`` declares whether a policy can reorder packets within a
flow, letting :class:`~repro.core.mpdp.MultipathDataPlane` skip the
reorder buffer when it provably cannot (single path, per-flow hashing).

Under fault injection the controller may *eject* dead paths from the
live set (see :class:`~repro.core.controller.PathController`).  Health-
aware policies mask ejected paths automatically -- the shared detector
marks them unhealthy and zeroes their weights -- while oblivious ones
(single, hash, rr, spray, po2, redundant) keep selecting them and rely
on the controller re-steering the dead queue each tick.  Every selector
must survive ``n_paths -> n_paths-1 -> n_paths`` live-set transitions
without raising; the all-ejected corner is guarded in the data plane.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import DetectorConfig, StragglerDetector
from repro.core.flowlet import FlowletTable
from repro.dataplane.path import DataPath
from repro.net.packet import Packet

#: Batch size for pre-sampled random draws.
_BATCH = 4096


class Policy:
    """Base class; subclasses implement :meth:`select`."""

    name = "base"
    #: True if the policy may send packets of one flow over different
    #: paths close together in time (=> reorder buffer required).
    needs_reorder = True

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        """Choose path ids for ``packet`` (primary first)."""
        raise NotImplementedError

    def on_feedback(self, packet: Packet, now: float) -> None:
        """Optional completion feedback hook (default: ignore)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Policy {self.name}>"


class SinglePath(Policy):
    """Everything on one fixed path -- the status-quo baseline."""

    name = "single"
    needs_reorder = False

    def __init__(self, path_id: int = 0) -> None:
        self.path_id = path_id

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        return [self.path_id]


class RandomHash(Policy):
    """Per-flow hashing (the intra-host analogue of ECMP).

    Flow affinity means no reordering, but elephant collisions and the
    inability to move away from a stalled path cap its tail benefit.
    """

    name = "hash"
    needs_reorder = False

    def __init__(self, salt: int = 0x5BD1E995) -> None:
        self.salt = salt

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        h = (hash(packet.ftuple) ^ self.salt) * 0x9E3779B97F4A7C15
        return [(h >> 16) % len(paths)]


class RoundRobin(Policy):
    """Per-packet round-robin spraying: perfect balance, max reordering."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        pid = self._next
        self._next = (pid + 1) % len(paths)
        return [pid]


class RandomSpray(Policy):
    """Per-packet uniform random spraying."""

    name = "spray"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._draws = np.empty(0, dtype=np.int64)
        self._i = 0
        self._k = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        k = len(paths)
        if self._i >= len(self._draws) or k != self._k:
            self._draws = self.rng.integers(0, k, _BATCH)
            self._i = 0
            self._k = k
        pid = int(self._draws[self._i])
        self._i += 1
        return [pid]


def _rotating_argmin(paths, now, offset: int) -> int:
    """Least expected wait with a rotating tie-break.

    A plain ``min`` resolves ties toward the lowest path id, which pins
    all idle-system traffic onto path 0 (and then flags it as the
    slowest path).  Starting the scan at a rotating offset spreads
    equal-wait choices evenly at zero cost.
    """
    k = len(paths)
    i = offset % k
    best = paths[i].path_id
    best_wait = float("inf")
    for _ in range(k):
        p = paths[i]
        # Inlined DataPath.expected_wait (called k times per decision).
        m = p._mean_cost
        if m == 0.0:
            m = p._mean_cost = p.chain.mean_cost()
        w = len(p.queue) * m
        pending_cpu = p.vcpu._free_at - now
        if pending_cpu > 0.0:
            w += pending_cpu
        if w < best_wait:
            best_wait = w
            best = p.path_id
        i += 1
        if i == k:
            i = 0
    return best


class LeastLoaded(Policy):
    """Per-packet join-the-shortest-expected-wait (rotating tie-break)."""

    name = "leastload"

    def __init__(self) -> None:
        self._rr = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        self._rr += 1
        return [_rotating_argmin(paths, now, self._rr)]


class PowerOfTwo(Policy):
    """JSQ(2): sample two random paths, join the shorter queue.

    Classic load-balancing result: almost all of least-loaded's benefit
    at a fraction of its state-inspection cost.
    """

    name = "po2"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._draws = np.empty((0, 2), dtype=np.int64)
        self._i = 0
        self._k = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        k = len(paths)
        if k == 1:
            return [0]
        if self._i >= len(self._draws) or k != self._k:
            self._draws = self.rng.integers(0, k, size=(_BATCH, 2))
            self._i = 0
            self._k = k
        a, b = self._draws[self._i]
        self._i += 1
        a, b = int(a), int(b)
        if a == b:
            b = (b + 1) % k
        return [a if paths[a].expected_wait(now) <= paths[b].expected_wait(now) else b]


class FlowletSwitching(Policy):
    """Re-pick the path only at flowlet boundaries.

    At a boundary the new flowlet joins the path with the least expected
    wait; within a flowlet, affinity holds.  Reordering is possible only
    when the inter-flowlet gap underestimates path skew, so it is rare
    with a well-chosen timeout (ablation A1 sweeps it).
    """

    name = "flowlet"

    def __init__(self, timeout: float = 100.0) -> None:
        self.table = FlowletTable(timeout=timeout)
        self._rr = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        fid = packet.flow_id
        self._rr += 1
        if fid < 0:
            # Flow-less packet: treat as its own flowlet boundary.
            return [_rotating_argmin(paths, now, self._rr)]
        current = self.table.lookup(fid, now)
        if current is not None:
            return [current]
        chosen = _rotating_argmin(paths, now, self._rr)
        self.table.assign(fid, chosen, now)
        return [chosen]


class WeightedRandom(Policy):
    """Flowlet-granularity weighted-random selection from control-plane
    weights.

    The controller publishes normalized per-path weights every tick
    (inverse expected wait among healthy paths); new flowlets sample a
    path from that distribution.  Randomization avoids the synchronized
    herding a deterministic argmin can cause when many flowlet
    boundaries coincide (e.g. at burst onset), at the cost of sometimes
    picking a slower-but-healthy path.

    The policy needs :meth:`bind_controller` before traffic flows; the
    :class:`~repro.core.mpdp.MultipathDataPlane` facade does this
    automatically.
    """

    name = "weighted"

    def __init__(
        self,
        rng: np.random.Generator,
        flowlet_timeout: float = 100.0,
    ) -> None:
        self.rng = rng
        self.table = FlowletTable(timeout=flowlet_timeout)
        self.controller = None
        self._draws = np.empty(0)
        self._i = 0

    def bind_controller(self, controller) -> None:
        """Attach the weight source (done by the MPDP facade)."""
        self.controller = controller

    def _pick(self, k: int) -> int:
        if self._i >= len(self._draws):
            self._draws = self.rng.random(_BATCH)
            self._i = 0
        u = float(self._draws[self._i])
        self._i += 1
        if self.controller is None:
            return int(u * k) % k  # uniform fallback before binding
        weights = self.controller.weights
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u <= acc:
                return i
        return k - 1

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        fid = packet.flow_id
        if fid >= 0:
            current = self.table.lookup(fid, now)
            if current is not None:
                return [current]
        chosen = self._pick(len(paths))
        if fid >= 0:
            self.table.assign(fid, chosen, now)
        return [chosen]


class RedundantK(Policy):
    """Full redundancy: every packet goes down ``r`` distinct paths.

    Round-robin rotates the primary so replicas spread evenly.
    """

    name = "redundant"

    def __init__(self, r: int = 2) -> None:
        if r < 2:
            raise ValueError(f"redundancy requires r >= 2, got {r}")
        self.r = r
        self._next = 0

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        k = len(paths)
        r = min(self.r, k)
        first = self._next
        self._next = (first + 1) % k
        return [(first + i) % k for i in range(r)]


class AdaptiveMultipath(Policy):
    """The paper-style policy: flowlet granularity + straggler avoidance
    + budgeted selective replication.

    Decision per packet:

    1. Live flowlet whose path is still healthy -> stay (no reordering).
    2. Otherwise pick the healthy path with the least expected wait and
       rebind the flowlet.
    3. If the packet is *latency-critical* (small size or elevated
       priority) and the replication budget allows, add one replica on
       the next-best healthy path: insurance against a stall that begins
       after steering.

    The replication budget is a fraction of total traffic, enforced by a
    self-correcting counter, so redundancy cannot snowball under load --
    the failure mode of :class:`RedundantK`.
    """

    name = "adaptive"

    def __init__(
        self,
        flowlet_timeout: float = 100.0,
        detector: Optional[StragglerDetector] = None,
        replication_budget: float = 0.05,
        critical_size: int = 300,
        min_healthy_for_replication: int = 2,
        health_refresh: float = 10.0,
    ) -> None:
        if not 0.0 <= replication_budget <= 1.0:
            raise ValueError("replication_budget must be in [0, 1]")
        if health_refresh < 0:
            raise ValueError("health_refresh must be >= 0")
        self.table = FlowletTable(timeout=flowlet_timeout)
        self.detector = detector or StragglerDetector(DetectorConfig())
        self.replication_budget = replication_budget
        self.critical_size = critical_size
        self.min_healthy_for_replication = min_healthy_for_replication
        #: Health evaluations are cached this many µs (a real controller
        #: polls path state, it does not recompute it per packet).  Keep
        #: well below the detector's hol_threshold so reaction time is
        #: unaffected; 0 disables caching.
        self.health_refresh = health_refresh
        self.total = 0
        self.replicated = 0
        self.rerouted_flowlets = 0
        self._rr = 0
        self._health_t = float("-inf")
        self._health_cache: List[int] = []
        self._health_set: frozenset = frozenset()
        # Cached single-path results: select() returns the same list
        # object for repeat picks of one path (callers only read it).
        self._single: dict = {}

    # ------------------------------------------------------------------
    def _healthy(self, paths: Sequence[DataPath], now: float) -> List[int]:
        if now - self._health_t <= self.health_refresh and self._health_cache:
            return self._health_cache
        healthy = [h.path_id for h in self.detector.evaluate(paths, now) if h.healthy]
        if not healthy:
            # Every path ejected (all-fault corner): degrade to the full
            # set rather than raise.  The data plane's no-live-path guard
            # normally drops traffic before selection reaches here.
            healthy = [p.path_id for p in paths]
        self._health_t = now
        self._health_cache = healthy
        self._health_set = frozenset(healthy)
        return healthy

    def select(self, packet: Packet, paths: Sequence[DataPath], now: float) -> List[int]:
        self.total += 1
        # Inlined _healthy cache hit (the overwhelmingly common case).
        if now - self._health_t <= self.health_refresh and self._health_cache:
            healthy = self._health_cache
        else:
            healthy = self._healthy(paths, now)
        fid = packet.flow_id

        primary: Optional[int] = None
        if fid >= 0:
            # Inlined FlowletTable.lookup (same bookkeeping).
            table = self.table
            entry = table._table.get(fid)
            if entry is not None and now - entry[1] <= table.timeout:
                entry[1] = now
                table.hits += 1
                current = entry[0]
                if current in self._health_set:
                    primary = current
                else:
                    # Mid-flowlet escape from a straggler.
                    self.rerouted_flowlets += 1
            else:
                table.boundaries += 1
        if primary is None:
            self._rr += 1
            # Path ids ascend with position, so the full healthy set can
            # scan `paths` directly without building a sublist.
            pool = paths if len(healthy) == len(paths) else [paths[i] for i in healthy]
            primary = _rotating_argmin(pool, now, self._rr)
            if fid >= 0:
                self.table.assign(fid, primary, now)

        # Selective replication for latency-critical packets.
        if (
            self.replication_budget > 0.0
            and len(healthy) >= self.min_healthy_for_replication
            and (packet.priority > 0 or packet.size <= self.critical_size)
            and self.replicated < self.replication_budget * self.total
        ):
            others = [i for i in healthy if i != primary]
            if others:
                backup = min(
                    (paths[i] for i in others), key=lambda p: p.expected_wait(now)
                ).path_id
                self.replicated += 1
                return [primary, backup]
        single = self._single.get(primary)
        if single is None:
            single = self._single[primary] = [primary]
        return single


#: Policy registry: name -> (class, needs_rng, fixed constructor kwargs).
#: ``make_policy`` resolves every spec form through this single table, so
#: adding a policy is one entry here -- sweeps, the CLI and
#: ``ScenarioConfig.validate`` all pick it up automatically.
POLICY_REGISTRY: Dict[str, Tuple[type, bool, Dict[str, object]]] = {
    "single": (SinglePath, False, {}),
    "hash": (RandomHash, False, {}),
    "rr": (RoundRobin, False, {}),
    "spray": (RandomSpray, True, {}),
    "flowlet": (FlowletSwitching, False, {}),
    "leastload": (LeastLoaded, False, {}),
    "po2": (PowerOfTwo, True, {}),
    "weighted": (WeightedRandom, True, {}),
    "redundant2": (RedundantK, False, {"r": 2}),
    "redundant3": (RedundantK, False, {"r": 3}),
    "redundant": (RedundantK, False, {}),
    "adaptive": (AdaptiveMultipath, False, {}),
}

#: Names the benchmark harness sweeps over (the parametric base entry
#: ``redundant`` is constructible but not part of the standard sweep).
POLICY_NAMES = tuple(n for n in POLICY_REGISTRY if n != "redundant")


def make_policy(spec, rng: Optional[np.random.Generator] = None, **kw) -> Policy:
    """Instantiate a policy from a registry-style spec.

    ``spec`` may be:

    * a registry name (``"adaptive"``) -- see :data:`POLICY_REGISTRY`;
    * a mapping ``{"name": <registry name>, **params}`` -- the form sweep
      axes produce, so grids can axis over parametrized policies without
      special cases;
    * an already-built :class:`Policy`, returned as-is (no overrides
      allowed -- construct it with the parameters you want).

    ``rng`` is required for the randomized policies (``spray``, ``po2``,
    ``weighted``).  Extra keyword arguments (and mapping params) are
    forwarded to the policy constructor.
    """
    if isinstance(spec, Policy):
        if kw:
            raise ValueError(
                "cannot apply constructor overrides to an already-built "
                f"Policy instance ({type(spec).__name__})"
            )
        return spec
    if isinstance(spec, dict):
        params = dict(spec)
        name = params.pop("name", None)
        if name is None:
            raise ValueError(
                f"policy spec mapping needs a 'name' key, got {sorted(spec)}"
            )
        params.update(kw)
        return make_policy(name, rng=rng, **params)
    try:
        cls, needs_rng, fixed = POLICY_REGISTRY[spec]
    except (KeyError, TypeError):
        raise KeyError(
            f"unknown policy {spec!r}; available: {POLICY_NAMES}"
        ) from None
    merged = {**fixed, **kw}
    if needs_rng:
        if rng is None:
            raise ValueError(f"{spec} policy requires an rng")
        return cls(rng, **merged)
    return cls(**merged)
