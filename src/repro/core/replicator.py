"""Packet replication and first-copy-wins deduplication.

Redundancy is the bluntest tail-cutting instrument ("The Tail at Scale"):
send each packet down ``r`` paths, deliver whichever copy finishes first,
suppress the rest.  It trades CPU (every copy is fully processed) for
tail latency, which is why it wins at low load and collapses near
saturation -- experiments F3/F5/A3 trace exactly that frontier.

:class:`Replicator` allocates the clone packets (real pid allocation via
the shared factory, so accounting stays honest); :class:`Deduplicator`
sits at the completion boundary, delivers the first copy of each
replicated packet, and swallows the rest.  Non-replicated packets pass
through the deduplicator with a single dict probe.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.packet import Packet, PacketFactory


class Replicator:
    """Creates replica packets for redundant transmission."""

    __slots__ = ("factory", "replicas_created")

    def __init__(self, factory: PacketFactory) -> None:
        self.factory = factory
        self.replicas_created = 0

    def replicate(self, packet: Packet, n_copies: int) -> List[Packet]:
        """Return ``n_copies`` replicas of ``packet`` (primary excluded)."""
        if n_copies < 0:
            raise ValueError(f"n_copies must be >= 0, got {n_copies}")
        out = []
        for _ in range(n_copies):
            out.append(packet.clone(self.factory.next_pid()))
        self.replicas_created += len(out)
        return out


class Deduplicator:
    """First-copy-wins suppression for replicated packets.

    For each replicated primary pid the deduplicator tracks how many
    copies are still in flight; the first copy to complete is delivered,
    later copies are suppressed, and the entry is removed once every copy
    has been accounted for (completed *or* dropped), bounding memory.
    """

    __slots__ = ("_outstanding", "delivered_first", "suppressed", "registered")

    def __init__(self) -> None:
        # primary pid -> [copies_in_flight, first_delivered?]
        self._outstanding: Dict[int, List] = {}
        self.delivered_first = 0
        self.suppressed = 0
        self.registered = 0

    def register(self, primary: Packet, total_copies: int) -> None:
        """Declare that ``primary`` travels as ``total_copies`` copies
        (including itself); must be called before any copy completes."""
        if total_copies < 2:
            raise ValueError("registration requires at least 2 copies")
        if primary.pid in self._outstanding:
            raise ValueError(f"packet {primary.pid} already registered")
        self._outstanding[primary.pid] = [total_copies, False]
        self.registered += 1

    def _key(self, packet: Packet) -> int:
        return packet.copy_of if packet.copy_of >= 0 else packet.pid

    def should_deliver(self, packet: Packet) -> bool:
        """Account one completed copy; True if it is the first to arrive."""
        entry = self._outstanding.get(self._key(packet))
        if entry is None:
            return True  # not replicated (or already fully accounted)
        entry[0] -= 1
        first = not entry[1]
        if first:
            entry[1] = True
            self.delivered_first += 1
        else:
            self.suppressed += 1
        if entry[0] <= 0:
            del self._outstanding[self._key(packet)]
        return first

    def on_copy_dropped(self, packet: Packet) -> None:
        """Account a copy that died inside the data plane."""
        key = self._key(packet)
        entry = self._outstanding.get(key)
        if entry is None:
            return
        entry[0] -= 1
        if entry[0] <= 0:
            del self._outstanding[key]

    @property
    def outstanding(self) -> int:
        """Replicated packets not yet fully accounted (memory gauge)."""
        return len(self._outstanding)
