"""Flowlet tracking.

A *flowlet* is a burst of packets of one flow separated from the next
burst by an idle gap larger than a timeout.  Re-picking the path only at
flowlet boundaries gives most of packet-spraying's load balancing while
keeping reordering rare: if the gap exceeds the path-latency skew, the
previous flowlet has fully drained before the next one starts on a new
path (the classic CONGA/Flowlet argument, applied intra-host).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class FlowletTable:
    """Maps flow id -> (current path, last packet time).

    ``lookup`` returns the current path while the flowlet is live and
    ``None`` at a flowlet boundary (caller then picks a new path and
    records it with ``assign``).

    Entries idle beyond ``gc_age`` are dropped opportunistically during a
    periodic sweep to bound memory on long runs.
    """

    __slots__ = ("timeout", "gc_age", "_table", "boundaries", "hits")

    def __init__(self, timeout: float = 100.0, gc_age: float = 1_000_000.0) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        self.timeout = timeout
        self.gc_age = gc_age
        # flow_id -> [path_id, last_seen]; a mutable pair so the per-packet
        # refresh is an in-place store, not a tuple allocation.
        self._table: Dict[int, list] = {}
        #: Number of flowlet boundaries observed (new flow or gap expiry).
        self.boundaries = 0
        #: Number of lookups that stayed within a live flowlet.
        self.hits = 0

    def lookup(self, flow_id: int, now: float) -> Optional[int]:
        """Return the live flowlet's path, or None at a boundary.

        Always refreshes the last-seen time: a packet extends its
        flowlet whether or not the caller re-assigns the path.
        """
        entry = self._table.get(flow_id)
        if entry is not None and now - entry[1] <= self.timeout:
            entry[1] = now
            self.hits += 1
            return entry[0]
        self.boundaries += 1
        return None

    def assign(self, flow_id: int, path_id: int, now: float) -> None:
        """Bind the new flowlet of ``flow_id`` to ``path_id``."""
        self._table[flow_id] = [path_id, now]

    def current_path(self, flow_id: int) -> Optional[int]:
        """Peek the bound path without refreshing (diagnostics)."""
        entry = self._table.get(flow_id)
        return entry[0] if entry is not None else None

    def gc(self, now: float) -> int:
        """Drop entries idle beyond ``gc_age``; returns count removed."""
        stale = [fid for fid, (_p, t) in self._table.items() if now - t > self.gc_age]
        for fid in stale:
            del self._table[fid]
        return len(stale)

    def __len__(self) -> int:
        return len(self._table)
