"""Sequence-restoring merge buffer.

When one flow's packets traverse different paths, they can complete out
of order.  The reorder buffer re-serializes each flow by sequence number
before delivery, holding out-of-order arrivals up to ``timeout`` µs: if
the missing predecessor does not show up (it was dropped, or is stuck
behind a long stall), the buffer gives up waiting and advances -- late
packets are then delivered immediately on arrival (TCP would treat them
as duplicates/ooo anyway; waiting longer only hurts).

The holding delay this buffer adds is exactly the reordering cost that
packet spraying pays and flowlet switching mostly avoids -- experiment F8
measures it from the counters kept here.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

from repro.check.invariants import NullInvariants
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


class _FlowState:
    """Per-flow reorder state."""

    __slots__ = ("expected", "heap", "deadline_scheduled")

    def __init__(self) -> None:
        self.expected = 0
        #: Min-heap of (seq, arrival_time, packet) waiting for predecessors.
        self.heap: List[Tuple[int, float, int, Packet]] = []
        self.deadline_scheduled = False


class ReorderBuffer:
    """Per-flow sequence restoration with timeout flush.

    Parameters
    ----------
    deliver:
        Downstream callable receiving packets in restored order.
    timeout:
        Maximum µs an out-of-order packet is held waiting for its
        predecessors.
    """

    __slots__ = (
        "sim",
        "deliver",
        "timeout",
        "_flows",
        "held",
        "delivered_inorder",
        "delivered_late",
        "timeout_flushes",
        "total_hold_time",
        "occupancy",
        "peak_occupancy",
        "tracer",
        "invariants",
    )

    def __init__(self, sim: Simulator, deliver: Callable[[Packet], None], timeout: float = 500.0) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.sim = sim
        self.deliver = deliver
        self.timeout = timeout
        self._flows: Dict[int, _FlowState] = {}
        #: Packets that were ever buffered (arrived out of order).
        self.held = 0
        self.delivered_inorder = 0
        #: Packets that arrived after their seq was already passed.
        self.delivered_late = 0
        self.timeout_flushes = 0
        #: Sum of µs packets spent inside the buffer.
        self.total_hold_time = 0.0
        self.occupancy = 0
        self.peak_occupancy = 0
        #: Span tracer (observability); records hold time per held packet.
        self.tracer = NullTracer
        #: Invariant engine (repro.check); no-op singleton when detached.
        self.invariants = NullInvariants

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Accept one completed packet; delivers what is now in order."""
        if packet.flow_id < 0:
            # Flow-less traffic bypasses reordering entirely.
            self.delivered_inorder += 1
            self.deliver(packet)
            return
        st = self._flows.get(packet.flow_id)
        if st is None:
            st = _FlowState()
            self._flows[packet.flow_id] = st
        seq = packet.seq
        expected = st.expected
        if seq < expected:
            self.delivered_late += 1
            if self.invariants.enabled:
                self.invariants.on_reorder_deliver(packet.flow_id, seq, True)
            self.deliver(packet)
            return
        if seq == expected:
            st.expected = expected + 1
            self.delivered_inorder += 1
            if self.invariants.enabled:
                self.invariants.on_reorder_deliver(packet.flow_id, seq, False)
            self.deliver(packet)
            if st.heap:
                self._drain(st)
            return
        # Out of order: hold.
        heapq.heappush(st.heap, (seq, self.sim.now, packet.pid, packet))
        self.held += 1
        self.occupancy += 1
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        if not st.deadline_scheduled:
            st.deadline_scheduled = True
            self.sim.call_in(self.timeout, self._check_deadline, packet.flow_id)

    def _drain(self, st: _FlowState) -> None:
        """Deliver buffered packets that are now in order."""
        now = self.sim.now
        heap = st.heap
        while heap and heap[0][0] <= st.expected:
            seq, t_in, _pid, pkt = heapq.heappop(heap)
            self.occupancy -= 1
            self.total_hold_time += now - t_in
            if self.tracer.enabled:
                self.tracer.record(now, "reorder_buffer", pkt.pid, now - t_in)
            if seq < st.expected:
                self.delivered_late += 1
                late = True
            else:
                st.expected = seq + 1
                self.delivered_inorder += 1
                late = False
            if self.invariants.enabled:
                self.invariants.on_reorder_deliver(pkt.flow_id, seq, late)
            self.deliver(pkt)

    def _check_deadline(self, flow_id: int) -> None:
        """Flush the flow's head if it has waited past the timeout."""
        st = self._flows.get(flow_id)
        if st is None:
            return
        st.deadline_scheduled = False
        if not st.heap:
            return
        now = self.sim.now
        head_seq, head_t = st.heap[0][0], st.heap[0][1]
        # Epsilon-tolerant expiry: at large timestamps `now - head_t` can
        # land a few ulps under the timeout while the remaining delay is
        # below the float resolution of `now`, which would reschedule the
        # check at the *same* instant forever (time-frozen livelock).
        if now - head_t >= self.timeout - 1e-6:
            # Give up on the gap: skip expected forward to the head.
            self.timeout_flushes += 1
            st.expected = head_seq
            self._drain(st)
        if st.heap and not st.deadline_scheduled:
            st.deadline_scheduled = True
            remaining = max(0.01, self.timeout - (now - st.heap[0][1]))
            self.sim.call_in(remaining, self._check_deadline, flow_id)

    # ------------------------------------------------------------------
    def mean_hold_time(self) -> float:
        """Average µs spent in the buffer by packets that were held."""
        drained = self.held - self.occupancy
        return self.total_hold_time / drained if drained > 0 else 0.0

    def flush_all(self) -> int:
        """Deliver everything still buffered (end-of-run drain); returns count."""
        n = 0
        for st in self._flows.values():
            now = self.sim.now
            while st.heap:
                _seq, t_in, _pid, pkt = heapq.heappop(st.heap)
                self.occupancy -= 1
                self.total_hold_time += now - t_in
                if self.tracer.enabled:
                    self.tracer.record(now, "reorder_buffer", pkt.pid,
                                       now - t_in)
                self.delivered_late += 1
                if self.invariants.enabled:
                    self.invariants.on_reorder_deliver(pkt.flow_id, pkt.seq,
                                                       True)
                self.deliver(pkt)
                n += 1
        return n

    def __len__(self) -> int:
        return self.occupancy
