"""The multipath data plane (MPDP) -- the paper's contribution.

The idea: replicate the intra-host datapath into ``k`` parallel *paths*
(queue + poller + chain replica on separate vCPUs) and steer or replicate
traffic across them so a transient stall on one path stops defining the
latency tail.

Components:

* :mod:`~repro.core.policies` -- the path-selection policy zoo: the
  single-path baseline, flow-hash (ECMP-like), round-robin / random
  packet spraying, flowlet switching, queue-aware least-loaded and
  power-of-two-choices, full redundancy (``RedundantK``), and the
  paper-style :class:`~repro.core.policies.AdaptiveMultipath` combining
  flowlet granularity, straggler avoidance and selective replication;
* :mod:`~repro.core.flowlet` -- flowlet tracking table;
* :mod:`~repro.core.detector` -- per-path straggler detection from
  online latency/queue signals;
* :mod:`~repro.core.replicator` -- packet replication and
  first-copy-wins deduplication;
* :mod:`~repro.core.reorder` -- sequence-restoring merge buffer with
  timeout flush;
* :mod:`~repro.core.controller` -- the periodic control loop that
  recomputes path weights and health;
* :mod:`~repro.core.mpdp` -- :class:`~repro.core.mpdp.MultipathDataPlane`,
  the facade wiring NIC, paths, policy, dedup, reorder and sink together.
"""

from repro.core.flowlet import FlowletTable
from repro.core.detector import StragglerDetector, PathHealth
from repro.core.reorder import ReorderBuffer
from repro.core.replicator import Replicator, Deduplicator
from repro.core.policies import (
    Policy,
    SinglePath,
    RandomHash,
    RoundRobin,
    RandomSpray,
    FlowletSwitching,
    LeastLoaded,
    PowerOfTwo,
    WeightedRandom,
    RedundantK,
    AdaptiveMultipath,
    make_policy,
    POLICY_NAMES,
    POLICY_REGISTRY,
)
from repro.core.controller import PathController
from repro.core.mpdp import MultipathDataPlane, MpdpConfig

__all__ = [
    "FlowletTable",
    "StragglerDetector",
    "PathHealth",
    "ReorderBuffer",
    "Replicator",
    "Deduplicator",
    "Policy",
    "SinglePath",
    "RandomHash",
    "RoundRobin",
    "RandomSpray",
    "FlowletSwitching",
    "LeastLoaded",
    "PowerOfTwo",
    "WeightedRandom",
    "RedundantK",
    "AdaptiveMultipath",
    "make_policy",
    "POLICY_NAMES",
    "POLICY_REGISTRY",
    "PathController",
    "MultipathDataPlane",
    "MpdpConfig",
]
