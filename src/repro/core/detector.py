"""Per-path straggler detection.

A path is a *straggler* when its recent behaviour predicts inflated
sojourn for new arrivals.  The detector fuses three online signals, each
cheap to maintain:

1. **relative EWMA sojourn** -- path's EWMA latency vs. the current
   across-path minimum (catches persistent slowness);
2. **head-of-line wait** -- how long the path's oldest queued packet has
   waited (catches an *ongoing* stall immediately, before any completion
   event reflects it -- the key to fast reaction);
3. **queue depth ratio** -- backlog vs. the across-path average.

Fusing with OR (any signal trips) favours fast detection; the false-trip
cost is merely steering away from a healthy path for one control period,
which is benign, whereas a missed stall costs a tail spike.  The A2
ablation quantifies this trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.dataplane.path import DataPath


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for straggler classification.

    Attributes
    ----------
    ewma_factor:
        Straggle if path EWMA > factor * min EWMA across paths...
    ewma_floor:
        ...but only when the EWMA also exceeds this absolute floor (µs).
        Without the floor, sub-µs baselines make the relative rule trip
        on noise and the policies herd onto one path.
    hol_threshold:
        Straggle if head-of-line wait exceeds this many µs.
    depth_factor:
        Straggle if queue depth > factor * mean depth (and depth > 8).
    """

    ewma_factor: float = 3.0
    ewma_floor: float = 30.0
    hol_threshold: float = 40.0
    depth_factor: float = 4.0
    #: The EWMA rule only applies while its evidence is fresh: the path
    #: completed a packet within this window (µs) or holds a backlog.
    #: Without this, "unhealthy" is an absorbing state -- a branded path
    #: receives no traffic, so its EWMA never updates and it never
    #: recovers (e.g. after a noisy neighbor departs).
    ewma_staleness: float = 2_000.0

    def __post_init__(self) -> None:
        if self.ewma_factor < 1.0 or self.depth_factor < 1.0:
            raise ValueError("factors must be >= 1")
        if self.hol_threshold <= 0 or self.ewma_floor < 0:
            raise ValueError("hol_threshold must be positive and ewma_floor >= 0")
        if self.ewma_staleness <= 0:
            raise ValueError("ewma_staleness must be positive")


@dataclass
class PathHealth:
    """Published health snapshot for one path."""

    path_id: int
    healthy: bool
    ewma: float
    hol_wait: float
    depth: int
    reason: str = ""


class StragglerDetector:
    """Classifies each path healthy/straggler from live signals."""

    def __init__(self, config: DetectorConfig = DetectorConfig()) -> None:
        self.config = config
        #: Count of (path, straggler) verdicts issued, for ablations.
        self.straggler_verdicts = 0
        self.evaluations = 0
        #: Path ids ejected from the live set by the controller's
        #: liveness check (see PathController).  The controller mutates
        #: this set in place; ejected paths are always unhealthy, and the
        #: all-straggling forced-healthy rule skips them -- a dead path
        #: must never be offered to a selector as the least-bad option.
        self.ejected: set = set()
        #: Path ids administratively parked (SLO autotuner scale-down;
        #: see PathController.set_admin_down).  Same in-place-mutation
        #: contract as ``ejected``: parked paths are always unhealthy and
        #: excluded from the forced-healthy fallback, so health-aware
        #: selectors steer no new traffic onto them.
        self.admin_down: set = set()

    def evaluate(self, paths: Sequence[DataPath], now: float) -> List[PathHealth]:
        """Assess all paths; always leaves at least one path healthy.

        If every path trips a signal (global overload), the least-bad
        path by expected wait is forced healthy so the selection policies
        always have somewhere to steer.
        """
        cfg = self.config
        self.evaluations += 1
        ewmas = [p.ewma_latency.value for p in paths]
        valid = [e for e in ewmas if not math.isnan(e)]
        min_ewma = min(valid) if valid else float("nan")
        depths = [p.depth for p in paths]
        mean_depth = sum(depths) / len(depths) if depths else 0.0

        ejected = self.ejected
        admin_down = self.admin_down
        out: List[PathHealth] = []
        for p, ewma, depth in zip(paths, ewmas, depths):
            reason = ""
            hol = p.queue.head_wait(now)
            if p.path_id in admin_down:
                reason = "admin_down"
            elif p.path_id in ejected:
                reason = "ejected"
            elif hol > cfg.hol_threshold:
                reason = f"hol_wait {hol:.0f}us"
            elif (
                not math.isnan(ewma)
                and not math.isnan(min_ewma)
                and min_ewma > 0
                and ewma > cfg.ewma_floor
                and ewma > cfg.ewma_factor * min_ewma
                and (depth > 0 or now - p.last_completion <= cfg.ewma_staleness)
            ):
                reason = f"ewma {ewma:.0f}us vs min {min_ewma:.0f}us"
            elif depth > 8 and mean_depth > 0 and depth > cfg.depth_factor * mean_depth:
                reason = f"depth {depth} vs mean {mean_depth:.1f}"
            healthy = reason == ""
            if not healthy:
                self.straggler_verdicts += 1
            out.append(PathHealth(p.path_id, healthy, ewma, hol, depth, reason))

        if not any(h.healthy for h in out):
            # Global overload: force the least-bad *live* path healthy so
            # selectors have somewhere to steer.  With every path ejected
            # there is no such path -- all stay unhealthy and the data
            # plane's no-live-path guard takes over.
            candidates = [i for i in range(len(paths))
                          if paths[i].path_id not in ejected
                          and paths[i].path_id not in admin_down]
            if candidates:
                best = min(candidates, key=lambda i: paths[i].expected_wait(now))
                out[best].healthy = True
                out[best].reason += " (forced: all straggling)"
        return out

    def healthy_ids(self, paths: Sequence[DataPath], now: float) -> List[int]:
        """Convenience: ids of currently healthy paths."""
        return [h.path_id for h in self.evaluate(paths, now) if h.healthy]
