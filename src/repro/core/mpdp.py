"""MultipathDataPlane: the end-to-end facade.

Wires together everything a virtualized host needs::

    wire -> PhysicalNic -> [policy.select] -> DataPath_0..k-1
                                                  |  completions
                                                  v
                               Deduplicator -> ReorderBuffer -> DeliverySink

Usage::

    from repro import MultipathDataPlane, MpdpConfig, Simulator, RngRegistry

    sim = Simulator()
    rngs = RngRegistry(seed=42)
    mpdp = MultipathDataPlane(sim, MpdpConfig(n_paths=4, policy="adaptive"), rngs)
    # feed mpdp.input from any traffic source, then:
    sim.run(until=1_000_000.0)
    print(mpdp.sink.recorder.summary())

The config's ``policy`` may be a registry name, a spec mapping
``{"name": ..., **params}`` (see
:data:`repro.core.policies.POLICY_REGISTRY`) or a :class:`Policy`
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.check.invariants import NullInvariants
from repro.core.controller import PathController
from repro.core.detector import StragglerDetector
from repro.core.policies import Policy, make_policy
from repro.core.reorder import ReorderBuffer
from repro.core.replicator import Deduplicator, Replicator
from repro.dataplane.nic import PhysicalNic
from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.sink import DeliverySink
from repro.elements.base import Chain
from repro.elements.nf import standard_chain
from repro.metrics.collectors import LatencyRecorder
from repro.net.flow import FlowTracker
from repro.net.packet import POOL_MAX, Packet, PacketFactory
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class MpdpConfig:
    """Construction parameters for :class:`MultipathDataPlane`.

    Attributes
    ----------
    n_paths:
        Number of datapath instances (``1`` = single-path baseline).
    policy:
        Policy registry name or a ready :class:`Policy` instance.
    chain:
        Canned chain name (see ``STANDARD_CHAINS``) -- ignored if an
        explicit chain object is passed to the constructor.
    path:
        Per-path :class:`PathConfig` (queues, batching, jitter profile).
    reorder_timeout:
        Reorder-buffer flush timeout (µs).
    use_reorder:
        Force the reorder buffer on/off; ``None`` = follow
        ``policy.needs_reorder``.
    nic_ring / nic_rx_cost:
        Physical NIC parameters.
    controller_interval:
        Control-loop period (µs); 0 disables the controller.
    warmup:
        Latency samples before this simulation time are discarded.
    """

    n_paths: int = 4
    policy: Union[str, Policy] = "adaptive"
    chain: str = "basic"
    path: PathConfig = field(default_factory=PathConfig)
    reorder_timeout: float = 500.0
    use_reorder: Optional[bool] = None
    nic_ring: int = 4096
    nic_rx_cost: float = 0.05
    controller_interval: float = 500.0
    #: Queue evacuation: re-steer packets queued behind a detected
    #: straggler to healthy paths at each control tick (extension; see
    #: PathController.evacuate).
    evacuation: bool = False
    #: Path ejection: liveness-check dead paths out of the live set and
    #: reinstate them after probes succeed (fault-recovery extension;
    #: see PathController.eject).  Off by default -- the fault-free data
    #: plane must stay bit-identical -- and switched on automatically by
    #: FaultInjector.install().
    ejection: bool = False
    liveness_timeout: float = 1500.0
    warmup: float = 0.0
    latency_reservoir: int = 100_000
    keep_all_latencies: bool = False

    def __post_init__(self) -> None:
        if self.n_paths <= 0:
            raise ValueError(f"n_paths must be positive, got {self.n_paths}")


class MultipathDataPlane:
    """A virtualized host with a k-path data plane."""

    def __init__(
        self,
        sim: Simulator,
        config: MpdpConfig,
        rngs: RngRegistry,
        chain: Optional[Chain] = None,
        tracker: Optional[FlowTracker] = None,
        recorder: Optional[LatencyRecorder] = None,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rngs = rngs
        self.factory = PacketFactory()
        #: Optional observability bundle (:class:`repro.obs.Telemetry`).
        #: All components share its tracer; with no telemetry they share
        #: the NullTracer and every trace site is one attribute check.
        self.telemetry = telemetry
        tracer = telemetry.tracer if telemetry is not None else NullTracer

        # --- policy -------------------------------------------------
        if isinstance(config.policy, Policy):
            self.policy: Policy = config.policy
        else:
            self.policy = make_policy(config.policy, rng=rngs.stream("policy"))

        # --- measurement boundary ------------------------------------
        if recorder is None:
            recorder = LatencyRecorder(
                keep_all=config.keep_all_latencies,
                reservoir=config.latency_reservoir,
                warmup=config.warmup,
            )
        self.tracker = tracker
        self.sink = DeliverySink(sim, recorder=recorder, tracker=tracker)
        self.sink.tracer = tracer

        use_reorder = (
            config.use_reorder
            if config.use_reorder is not None
            else self.policy.needs_reorder
        )
        self.reorder: Optional[ReorderBuffer] = (
            ReorderBuffer(sim, self.sink.deliver, timeout=config.reorder_timeout)
            if use_reorder
            else None
        )
        if self.reorder is not None:
            self.reorder.tracer = tracer
        self._deliver: Callable[[Packet], None] = (
            self.reorder.on_packet if self.reorder is not None else self.sink.deliver
        )

        # --- replication ----------------------------------------------
        self.replicator = Replicator(self.factory)
        self.dedup = Deduplicator()

        # --- paths ----------------------------------------------------
        base_chain = chain if chain is not None else standard_chain(
            config.chain, rngs.stream("chain")
        )
        self.paths: List[DataPath] = []
        for i in range(config.n_paths):
            replica = base_chain.clone(f"@{i}") if config.n_paths > 1 else base_chain
            self.paths.append(
                DataPath(
                    sim,
                    i,
                    replica,
                    complete=self._on_path_complete,
                    drop=self._on_path_drop,
                    rng=rngs.stream(f"vcpu{i}"),
                    config=config.path,
                    tracer=tracer,
                )
            )

        # --- NIC --------------------------------------------------------
        self.nic = PhysicalNic(
            sim,
            dispatch=self.ingress,
            ring_size=config.nic_ring,
            rx_cost=config.nic_rx_cost,
        )
        self.nic.tracer = tracer

        # --- controller --------------------------------------------------
        self.controller: Optional[PathController] = None
        detector = getattr(self.policy, "detector", None) or StragglerDetector()
        if config.controller_interval > 0:
            self.controller = PathController(
                sim,
                self.paths,
                detector,
                interval=config.controller_interval,
                evacuate=config.evacuation,
                eject=config.ejection,
                liveness_timeout=config.liveness_timeout,
            )
            table = getattr(self.policy, "table", None)
            if table is not None:
                self.controller.register_flowlet_table(table)
            bind = getattr(self.policy, "bind_controller", None)
            if bind is not None:
                bind(self.controller)
            self.controller.start()

        # --- counters ------------------------------------------------------
        self.ingress_count = 0
        self.suppressed = 0
        self.drops: Dict[str, int] = {}
        #: Invariant engine (repro.check); the detached singleton keeps
        #: the completion fan-in at one attribute check.
        self.invariants = NullInvariants
        #: Packet free list (see :meth:`enable_packet_recycling`).
        self._pool = None

        if telemetry is not None:
            telemetry.register_host(self)

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    @property
    def input(self) -> Callable[[Packet], None]:
        """Where traffic sources (or the fabric model) deliver packets."""
        return self.nic.on_wire

    def ingress(self, packet: Packet) -> None:
        """Steer one packet from the NIC onto its path(s)."""
        self.ingress_count += 1
        ctl = self.controller
        if ctl is not None and ctl.eject and not ctl.live_ids:
            # Every path ejected: no selector may be asked to pick a dead
            # path, and nothing may be delivered through one.  Count the
            # loss explicitly rather than stranding packets on a queue
            # nobody will ever serve.
            packet.dropped = "mpdp:no-live-path"
            self._count_drop(packet)
            return
        paths = self.paths
        choice = self.policy.select(packet, paths, self.sim._now)
        if len(choice) == 1:
            # Inlined DataPath.enqueue (steer + queue push).
            path = paths[choice[0]]
            packet.path_id = path.path_id
            if not path.queue.push(packet):
                self._count_drop(packet)
            return
        # Replicated transmission: primary + replicas, first copy wins.
        copies = [packet] + self.replicator.replicate(packet, len(choice) - 1)
        self.dedup.register(packet, len(choice))
        telemetry = self.telemetry
        if telemetry is not None and telemetry.tracer.enabled:
            # Replication group record: lets forensics tie suppressed /
            # dropped clone pids back to the primary.
            telemetry.tracer.record(
                self.sim._now, "replicate", packet.pid, 0.0,
                {"copies": [cp.pid for cp in copies[1:]],
                 "paths": list(choice)},
            )
        for path_id, cp in zip(choice, copies):
            if not self.paths[path_id].enqueue(cp):
                self._count_drop(cp)
                self.dedup.on_copy_dropped(cp)

    # ------------------------------------------------------------------
    # Completion / drop plumbing
    # ------------------------------------------------------------------
    def _on_path_complete(self, packet: Packet) -> None:
        if self.invariants.enabled:
            self.invariants.on_path_complete(packet)
        # Fast path: no replicated packets in flight (the dedup table is
        # the same dict object for the lifetime of the host), so the
        # completion cannot need suppression.
        if not self.dedup._outstanding:
            self._deliver(packet)
        elif self.dedup.should_deliver(packet):
            self._deliver(packet)
        else:
            self.suppressed += 1
            pool = self._pool
            if pool is not None and len(pool) < POOL_MAX:
                pool.append(packet)

    def _on_path_drop(self, packet: Packet) -> None:
        self._count_drop(packet)
        self.dedup.on_copy_dropped(packet)
        pool = self._pool
        if pool is not None and len(pool) < POOL_MAX:
            pool.append(packet)

    def enable_packet_recycling(self) -> None:
        """Wire terminal components to the factory's packet free list.

        Delivered, suppressed, and path-dropped packets are parked for
        reuse by the traffic sources (fresh pid, fully reset fields).
        Opt in only when nothing downstream retains delivered ``Packet``
        objects (the standard scenario harness qualifies; custom
        ``sink.on_delivery`` hooks that store packets do not).
        """
        pool = self.factory.free
        self.sink._pool = pool
        self._pool = pool

    def _count_drop(self, packet: Packet) -> None:
        reason = packet.dropped or "unknown"
        # Collapse per-path names ("path3.q:overflow" -> "queue:overflow",
        # "path2:crash" -> "path:crash").
        if ".q:" in reason:
            reason = "queue:" + reason.split(":", 1)[1]
        elif reason.startswith("path") and ":" in reason:
            reason = "path:" + reason.split(":", 1)[1]
        self.drops[reason] = self.drops.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_cpu_time(self) -> float:
        """Useful CPU µs burned across all paths (includes replicas)."""
        return sum(p.vcpu.busy_time for p in self.paths)

    def cpu_per_delivered(self) -> float:
        """Mean CPU µs per *delivered* packet -- the T2 overhead metric.

        Replication inflates this (suppressed copies burn CPU but deliver
        nothing), which is exactly the overhead the experiment quantifies.
        """
        d = self.sink.delivered
        return self.total_cpu_time() / d if d else float("nan")

    def drop_count(self) -> int:
        """Total packets dropped anywhere in the host."""
        return sum(self.drops.values()) + self.nic.dropped

    def stats(self) -> Dict:
        """One-call diagnostic snapshot (tests and benches use this)."""
        out = {
            "ingress": self.ingress_count,
            "delivered": self.sink.delivered,
            "suppressed": self.suppressed,
            "replicas": self.replicator.replicas_created,
            "drops": dict(self.drops),
            "nic_drops": self.nic.dropped,
            "cpu_time": self.total_cpu_time(),
            "cpu_per_delivered": self.cpu_per_delivered(),
            "path_completed": [p.completed for p in self.paths],
            "path_depth": [p.depth for p in self.paths],
            "queue_drops": [p.queue.dropped for p in self.paths],
        }
        if self.controller is not None and self.controller.eject:
            out["ejections"] = self.controller.ejections
            out["reinstatements"] = self.controller.reinstatements
            out["rerouted"] = self.controller.rerouted
            out["fault_drops"] = sum(p.fault_dropped for p in self.paths)
        if self.reorder is not None:
            out["reorder"] = {
                "held": self.reorder.held,
                "late": self.reorder.delivered_late,
                "timeout_flushes": self.reorder.timeout_flushes,
                "mean_hold": self.reorder.mean_hold_time(),
                "peak_occupancy": self.reorder.peak_occupancy,
            }
        return out

    def finalize(self) -> None:
        """End-of-run cleanup: stop the controller, drain the reorder buffer."""
        if self.controller is not None:
            self.controller.stop()
        if self.reorder is not None:
            self.reorder.flush_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MultipathDataPlane k={len(self.paths)} policy={self.policy.name} "
            f"delivered={self.sink.delivered}>"
        )
