"""The periodic control loop.

Per-packet logic must stay O(1), so anything that scans all paths or
cleans tables runs here instead, every ``interval`` µs:

* evaluate path health via the shared :class:`StragglerDetector` and
  keep a history (the interference experiments plot it);
* recompute normalized path weights from expected waits (published for
  diagnostics and for weighted selection variants);
* garbage-collect the flowlet table(s) registered with the controller.

The controller is optional -- the data plane works without it -- but all
adaptive experiments enable it so the history exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.detector import StragglerDetector
from repro.core.flowlet import FlowletTable
from repro.dataplane.path import DataPath
from repro.sim.engine import Simulator


@dataclass
class ControlSnapshot:
    """One control-tick observation."""

    time: float
    healthy: List[int]
    weights: List[float]
    ewmas: List[float]
    depths: List[int]


class PathController:
    """Periodic path monitor and weight publisher."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[DataPath],
        detector: StragglerDetector,
        interval: float = 500.0,
        keep_history: bool = True,
        evacuate: bool = False,
        evacuate_batch: int = 64,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if evacuate_batch <= 0:
            raise ValueError(f"evacuate_batch must be positive, got {evacuate_batch}")
        self.sim = sim
        self.paths = list(paths)
        self.detector = detector
        self.interval = interval
        self.keep_history = keep_history
        #: Queue evacuation: when a path is judged straggling, re-steer
        #: its queued (not-yet-served) packets to healthy paths.  This is
        #: the extension attacking p99.9 -- steering alone only protects
        #: *future* packets; packets already queued behind a stall still
        #: eat it unless moved.
        self.evacuate = evacuate
        self.evacuate_batch = evacuate_batch
        self.evacuated = 0
        #: Latest normalized weights (uniform until the first tick).
        self.weights: List[float] = [1.0 / len(self.paths)] * len(self.paths)
        self.history: List[ControlSnapshot] = []
        self.ticks = 0
        self._tables: List[FlowletTable] = []
        self._running = False

    def register_flowlet_table(self, table: FlowletTable) -> None:
        """Add a flowlet table to the periodic GC sweep."""
        self._tables.append(table)

    def start(self) -> None:
        """Begin ticking (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.call_in(self.interval, self._tick)

    def stop(self) -> None:
        """Stop ticking after the current tick (lets ``run()`` drain)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        self.ticks += 1
        health = self.detector.evaluate(self.paths, now)
        healthy_ids = [h.path_id for h in health if h.healthy]

        # Weights: inverse expected wait among healthy paths, normalized.
        eps = 1.0
        raw = []
        for p, h in zip(self.paths, health):
            if h.healthy:
                raw.append(1.0 / (p.expected_wait(now) + eps))
            else:
                raw.append(0.0)
        total = sum(raw)
        if total > 0:
            self.weights = [r / total for r in raw]
        else:  # pragma: no cover - detector guarantees one healthy path
            self.weights = [1.0 / len(self.paths)] * len(self.paths)

        if self.evacuate and len(healthy_ids) < len(self.paths) and healthy_ids:
            self._evacuate_stragglers(health, healthy_ids, now)

        if self.keep_history:
            self.history.append(
                ControlSnapshot(
                    time=now,
                    healthy=healthy_ids,
                    weights=list(self.weights),
                    ewmas=[h.ewma for h in health],
                    depths=[h.depth for h in health],
                )
            )
        # Housekeeping every ~100 ticks: flowlet GC.
        if self.ticks % 100 == 0:
            for table in self._tables:
                table.gc(now)
        self.sim.call_in(self.interval, self._tick)

    def _evacuate_stragglers(self, health, healthy_ids, now: float) -> None:
        """Move queued packets off straggling paths onto healthy ones.

        At most ``evacuate_batch`` packets per straggler per tick, spread
        round-robin over healthy paths.  Packets are re-enqueued through
        the normal queue API (fresh ``t_enq``; end-to-end latency keeps
        running from ``t_created``).  A packet that no healthy queue can
        take goes back where it was -- evacuation never drops.
        """
        targets = [self.paths[i] for i in healthy_ids]
        t = 0
        for h in health:
            if h.healthy:
                continue
            straggler = self.paths[h.path_id]
            moved = straggler.queue.pop_batch(self.evacuate_batch)
            for pkt in moved:
                placed = False
                for _ in range(len(targets)):
                    target = targets[t % len(targets)]
                    t += 1
                    if target.enqueue(pkt):
                        placed = True
                        self.evacuated += 1
                        break
                if not placed:
                    # Healthy queues full: put it back on its old path
                    # (which had room for it a moment ago).
                    pkt.dropped = None
                    straggler.enqueue(pkt)

    # ------------------------------------------------------------------
    def healthy_fraction(self) -> float:
        """Mean fraction of paths healthy across the recorded history."""
        if not self.history:
            return float("nan")
        k = len(self.paths)
        return sum(len(s.healthy) for s in self.history) / (k * len(self.history))
