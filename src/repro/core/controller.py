"""The periodic control loop.

Per-packet logic must stay O(1), so anything that scans all paths or
cleans tables runs here instead, every ``interval`` µs:

* evaluate path health via the shared :class:`StragglerDetector` and
  keep a history (the interference experiments plot it);
* recompute normalized path weights from expected waits (published for
  diagnostics and for weighted selection variants);
* garbage-collect the flowlet table(s) registered with the controller;
* when ejection is enabled (fault experiments), run the liveness check:
  a path with an old backlog and no completions is *ejected* from the
  live set, its queued packets re-steered to live paths, and it is
  *reinstated* only after health probes succeed for consecutive ticks.

The controller is optional -- the data plane works without it -- but all
adaptive experiments enable it so the history exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.invariants import NullInvariants
from repro.core.detector import StragglerDetector
from repro.core.flowlet import FlowletTable
from repro.dataplane.path import DataPath
from repro.sim.engine import Simulator


@dataclass
class ControlSnapshot:
    """One control-tick observation."""

    time: float
    healthy: List[int]
    weights: List[float]
    ewmas: List[float]
    depths: List[int]
    ejected: List[int] = field(default_factory=list)
    #: Administratively parked path ids (SLO autotuner scale-down).
    admin_down: List[int] = field(default_factory=list)


class PathController:
    """Periodic path monitor and weight publisher."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[DataPath],
        detector: StragglerDetector,
        interval: float = 500.0,
        keep_history: bool = True,
        evacuate: bool = False,
        evacuate_batch: int = 64,
        eject: bool = False,
        liveness_timeout: float = 1500.0,
        probe_timeout: float = 200.0,
        reinstate_ticks: int = 2,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if evacuate_batch <= 0:
            raise ValueError(f"evacuate_batch must be positive, got {evacuate_batch}")
        if liveness_timeout <= 0 or probe_timeout <= 0:
            raise ValueError("liveness_timeout and probe_timeout must be positive")
        if reinstate_ticks <= 0:
            raise ValueError(f"reinstate_ticks must be positive, got {reinstate_ticks}")
        self.sim = sim
        self.paths = list(paths)
        self.detector = detector
        self.interval = interval
        self.keep_history = keep_history
        #: Queue evacuation: when a path is judged straggling, re-steer
        #: its queued (not-yet-served) packets to healthy paths.  This is
        #: the extension attacking p99.9 -- steering alone only protects
        #: *future* packets; packets already queued behind a stall still
        #: eat it unless moved.
        self.evacuate = evacuate
        self.evacuate_batch = evacuate_batch
        self.evacuated = 0
        #: Ejection (fault-recovery extension, off by default so the
        #: fault-free data plane is bit-identical to earlier versions):
        #: a path whose head-of-line packet has waited longer than
        #: ``liveness_timeout`` with no completion in as long is judged
        #: *dead* -- not merely slow -- and removed from the live set.
        #: Its queue is re-steered to live paths every tick; it returns
        #: only after ``reinstate_ticks`` consecutive successful probes.
        self.eject = eject
        self.liveness_timeout = liveness_timeout
        self.probe_timeout = probe_timeout
        self.reinstate_ticks = reinstate_ticks
        #: Ejected path ids; the same set object the shared detector
        #: consults, mutated in place so both views always agree.
        self.ejected = detector.ejected
        self.ejected.clear()
        #: Administratively parked path ids (SLO autotuner scale-down);
        #: the same set object the shared detector consults.  Parked
        #: paths are skipped by the liveness check (no probing, no
        #: reinstatement -- only :meth:`set_admin_up` unparks) and their
        #: queues are drained to active paths every tick.
        self.admin_down = detector.admin_down
        self.admin_down.clear()
        self.parks = 0
        self.unparks = 0
        #: Packets moved off parked paths onto active ones.
        self.parked_moved = 0
        #: Live (non-ejected, non-parked) path ids, maintained on
        #: transitions so the per-packet ingress guard is a plain
        #: truthiness check.
        self.live_ids: List[int] = [p.path_id for p in self.paths]
        self._probe_ok: Dict[int, int] = {}
        self._eject_time: Dict[int, float] = {}
        self.ejections = 0
        self.reinstatements = 0
        #: Packets re-steered off ejected (dead) paths -- "rerouted" in
        #: the availability accounting, vs. packets lost to the fault.
        self.rerouted = 0
        #: Optional AvailabilityTracker notified of eject/reinstate.
        self.availability = None
        #: Latest normalized weights (uniform until the first tick).
        self.weights: List[float] = [1.0 / len(self.paths)] * len(self.paths)
        self.history: List[ControlSnapshot] = []
        self.ticks = 0
        #: Invariant engine (repro.check); checked once per tick.
        self.invariants = NullInvariants
        self._tables: List[FlowletTable] = []
        self._running = False
        self._handle = None

    def register_flowlet_table(self, table: FlowletTable) -> None:
        """Add a flowlet table to the periodic GC sweep."""
        self._tables.append(table)

    def start(self) -> None:
        """Begin ticking (idempotent)."""
        if self._running:
            return
        self._running = True
        self._handle = self.sim.periodic(self.interval, self._tick)

    def stop(self) -> None:
        """Stop ticking after the current tick (lets ``run()`` drain)."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Administrative parking (SLO autotuner actuation)
    # ------------------------------------------------------------------
    def set_admin_down(self, path_id: int) -> bool:
        """Park a path: no new traffic, queue drained to active paths.

        Parking is an *administrative* state, distinct from ejection:
        the liveness check never probes or auto-reinstates a parked path
        -- only :meth:`set_admin_up` returns it to service.  Returns
        False (no-op) when the path is already parked, ejected, or the
        last live path.
        """
        if path_id in self.admin_down or path_id in self.ejected:
            return False
        if len(self.live_ids) <= 1:
            return False  # never park the last live path
        self.admin_down.add(path_id)
        self.parks += 1
        self._recompute_live()
        return True

    def set_admin_up(self, path_id: int) -> bool:
        """Unpark a previously parked path (inverse of :meth:`set_admin_down`)."""
        if path_id not in self.admin_down:
            return False
        self.admin_down.discard(path_id)
        self.unparks += 1
        self._recompute_live()
        return True

    def _recompute_live(self) -> None:
        self.live_ids = [
            p.path_id for p in self.paths
            if p.path_id not in self.ejected and p.path_id not in self.admin_down
        ]

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        self.ticks += 1
        if self.eject:
            self._liveness_check(now)
        if self.admin_down:
            self._drain_parked()
        health = self.detector.evaluate(self.paths, now)
        healthy_ids = [h.path_id for h in health if h.healthy]

        # Weights: inverse expected wait among healthy paths, normalized.
        eps = 1.0
        raw = []
        for p, h in zip(self.paths, health):
            if h.healthy:
                raw.append(1.0 / (p.expected_wait(now) + eps))
            else:
                raw.append(0.0)
        total = sum(raw)
        if total > 0:
            self.weights = [r / total for r in raw]
        else:
            # Every path ejected: uniform placeholder weights (the data
            # plane's no-live-path guard keeps traffic off them anyway).
            self.weights = [1.0 / len(self.paths)] * len(self.paths)

        if self.evacuate and len(healthy_ids) < len(self.paths) and healthy_ids:
            self._evacuate_stragglers(health, healthy_ids, now)

        if self.keep_history:
            self.history.append(
                ControlSnapshot(
                    time=now,
                    healthy=healthy_ids,
                    weights=list(self.weights),
                    ewmas=[h.ewma for h in health],
                    depths=[h.depth for h in health],
                    ejected=sorted(self.ejected),
                    admin_down=sorted(self.admin_down),
                )
            )
        # Housekeeping every ~100 ticks: flowlet GC.
        if self.ticks % 100 == 0:
            for table in self._tables:
                table.gc(now)
        if self.invariants.enabled:
            self.invariants.on_control_tick(self)
        # Rescheduling is owned by the PeriodicHandle from start().

    def _evacuate_stragglers(self, health, healthy_ids, now: float) -> None:
        """Move queued packets off straggling paths onto healthy ones.

        At most ``evacuate_batch`` packets per straggler per tick, spread
        round-robin over healthy paths.  Packets are re-enqueued through
        the normal queue API (fresh ``t_enq``; end-to-end latency keeps
        running from ``t_created``).  A packet that no healthy queue can
        take goes back where it was -- evacuation never drops.
        """
        targets = [self.paths[i] for i in healthy_ids]
        t = 0
        for h in health:
            if h.healthy:
                continue
            straggler = self.paths[h.path_id]
            moved = straggler.queue.pop_batch(self.evacuate_batch)
            for pkt in moved:
                placed = False
                for _ in range(len(targets)):
                    target = targets[t % len(targets)]
                    t += 1
                    if target.enqueue(pkt):
                        placed = True
                        self.evacuated += 1
                        break
                if not placed:
                    # Healthy queues full: put it back on its old path
                    # (which had room for it a moment ago).
                    pkt.dropped = None
                    straggler.enqueue(pkt)

    # ------------------------------------------------------------------
    # Liveness: ejection / re-steering / reinstatement
    # ------------------------------------------------------------------
    def _dead(self, path: DataPath, now: float) -> bool:
        """Dead = old backlog and silence: the head packet has waited
        beyond ``liveness_timeout`` while no packet completed in as long.

        Purely observational -- the check never reads ``path.faulted``,
        so detection lag is a real, measurable quantity."""
        return (
            path.queue.head_wait(now) > self.liveness_timeout
            and now - path.last_completion > self.liveness_timeout
        )

    def _liveness_check(self, now: float) -> None:
        changed = False
        for p in self.paths:
            pid = p.path_id
            if pid in self.admin_down:
                # Parked paths are out of service by policy, not by
                # fault: no ejection, no probing, no reinstatement.
                continue
            if pid not in self.ejected:
                if self._dead(p, now):
                    self.ejected.add(pid)
                    self._eject_time[pid] = now
                    self._probe_ok[pid] = 0
                    self.ejections += 1
                    changed = True
                    if self.availability is not None:
                        self.availability.on_eject(pid, now)
            elif p.probe(now, self.probe_timeout):
                self._probe_ok[pid] = self._probe_ok.get(pid, 0) + 1
                if self._probe_ok[pid] >= self.reinstate_ticks:
                    self.ejected.discard(pid)
                    self._eject_time.pop(pid, None)
                    self.reinstatements += 1
                    changed = True
                    if self.availability is not None:
                        self.availability.on_reinstate(pid, now)
            else:
                self._probe_ok[pid] = 0
        if changed:
            self._recompute_live()
        # Re-steer whatever sits on dead paths (oblivious policies keep
        # feeding them between ticks).  Unlike straggler evacuation this
        # drains completely: nobody will ever serve these queues.
        if self.ejected and self.live_ids:
            targets = [self.paths[i] for i in self.live_ids]
            for pid in self.ejected:
                self.rerouted += self._drain_dead_path(self.paths[pid], targets)

    def _drain_parked(self) -> None:
        """Move queued packets off parked paths onto live ones.

        Oblivious policies (and packets enqueued just before a park)
        keep feeding parked queues between ticks; like ejection
        re-steering, the drain is complete -- a parked poller still
        serves its queue, but no new traffic should ride a path the
        autotuner has taken out of service.
        """
        if not self.live_ids:
            return
        targets = [self.paths[i] for i in self.live_ids]
        for pid in sorted(self.admin_down):
            parked = self.paths[pid]
            if len(parked.queue):
                self.parked_moved += self._drain_dead_path(parked, targets)

    def _drain_dead_path(self, dead: DataPath, targets: List[DataPath]) -> int:
        """Move every queued packet off an out-of-service path onto live
        ones; returns the number moved.

        Packets that no live queue can absorb go back where they were --
        re-steering never drops; overflow accounting stays at the queues.
        """
        t = 0
        moved = 0
        stuck = []
        for pkt in dead.queue.pop_batch(len(dead.queue)):
            placed = False
            for _ in range(len(targets)):
                target = targets[t % len(targets)]
                t += 1
                if target.enqueue(pkt):
                    placed = True
                    moved += 1
                    break
            if not placed:
                stuck.append(pkt)
        for pkt in stuck:
            pkt.dropped = None
            dead.enqueue(pkt)
        return moved

    # ------------------------------------------------------------------
    def healthy_fraction(self) -> float:
        """Mean fraction of paths healthy across the recorded history."""
        if not self.history:
            return float("nan")
        k = len(self.paths)
        return sum(len(s.healthy) for s in self.history) / (k * len(self.history))
