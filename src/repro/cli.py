"""Command-line interface.

``python -m repro <command>``:

* ``experiments`` -- list the reconstructed experiments (id + summary);
* ``run <ID ...>`` -- regenerate one or more experiments and print their
  tables (``--scale`` overrides ``REPRO_BENCH_SCALE``);
* ``policies`` -- list the path-selection policy registry;
* ``capacity [--chain NAME] [--size BYTES]`` -- print the calibrated
  single-path capacity used for load normalization;
* ``faults`` -- run one fault-injection scenario (inline flags or a JSON
  schedule file) and print the latency + availability report;
* ``sweep`` -- expand a declarative parameter grid (JSON spec file or
  inline ``--axis``/``--set`` flags), fan it out across a worker pool
  with result caching, print the per-cell table and optionally write the
  structured JSON artifact (see docs/SWEEPS.md);
* ``trace`` -- run one instrumented scenario (a ScenarioConfig JSON file
  or inline flags) and print the stage-latency breakdown plus the
  slowest packets' span timelines; ``--out DIR`` also writes the
  Perfetto-loadable trace bundle (see docs/OBSERVABILITY.md);
* ``slo`` -- run one scenario against declared service-level objectives
  (``--objective "p99 <= 800us"``, repeatable, or an SloSpec JSON file)
  and print the attainment report; ``--autotune`` arms the online
  autotuner, ``--experiment SLO1|SLO2`` regenerates the canned SLO
  experiments (see docs/SLO.md);
* ``check`` -- the runtime invariant engine (see docs/CHECKING.md):
  ``check run`` simulates one scenario with every invariant armed,
  ``check fuzz`` property-tests random scenarios (shrinking failures to
  minimal repro files), ``check diff`` differentially replays one
  scenario across harness variants, and ``check selftest`` proves the
  engine catches a deliberately broken deduplicator;
* ``report`` -- re-render those tables from a previously exported bundle
  (directory or ``events.jsonl``), no simulation needed;
* ``why`` -- run one scenario with tail forensics armed and print the
  attribution report: every packet above the latency quantile gets one
  dominant-cause label (``sched_stall``, ``queue_buildup``, ...,
  ``fault_window``, ``replication_loss``), plus the blame matrix and
  annotated exemplar timelines (see docs/FORENSICS.md);
* ``cluster`` -- rack-scale sharded simulation (see docs/CLUSTER.md):
  ``cluster run`` simulates N hosts behind a multipath fabric across a
  worker pool and prints per-host + cluster-wide tails, ``cluster
  sweep`` crosses cluster axes (``hosts``, scenario fields,
  ``fabric.*``) into a ``cluster_sweep`` artifact; both accept a
  ClusterConfig ``--spec`` and ``--jobs`` workers;
* ``ledger`` -- the append-only cross-run regression ledger
  (``benchmarks/results/LEDGER.jsonl``): ``ledger record`` appends one
  instrumented run, ``ledger list`` shows the trajectory, ``ledger
  diff`` compares two entries with bootstrap CIs and flags tail
  regressions (the CI perf gate runs this);
* ``demo`` -- run the quickstart comparison (single vs adaptive k=4).

``trace``/``report`` take ``--json`` to emit the machine-readable
``trace_report`` payload instead of terminal tables; ``why`` and
``ledger diff`` take ``--json`` for their respective payloads.

Scenario-running commands (``faults``/``trace``/``slo``/``check``) share
one flag vocabulary -- ``--policy/--paths/--load/--traffic/--duration/
--seed`` plus ``--spec`` (a JSON spec file, meaning the command's native
spec kind) and ``--out`` (write the command's JSON artifact) -- via a
common argparse parent; only the per-command ``--load`` default differs.

The CLI is a thin shell over :mod:`repro.bench`; everything it prints is
obtainable programmatically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

#: Committed kernel-throughput record; ``ledger record`` reads its
#: ``full.pps`` by default so entries carry the perf trajectory.
_DEFAULT_KERNEL_RECORD = "benchmarks/results/BENCH_KERNEL.json"


def _scenario_parent() -> argparse.ArgumentParser:
    """Shared inline-scenario flags, identical across every command that
    runs a single scenario; per-command ``--load`` defaults are applied
    with ``set_defaults`` so existing invocations keep their behaviour."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--policy", default="adaptive",
                   help="path-selection policy (see `repro policies`)")
    p.add_argument("--paths", type=int, default=4,
                   help="path count (default 4)")
    p.add_argument("--load", type=float, default=0.6,
                   help="offered load as a fraction of aggregate capacity")
    p.add_argument("--traffic", default="poisson",
                   choices=["poisson", "onoff", "incast", "flows"],
                   help="traffic model (default poisson)")
    p.add_argument("--duration", type=float, default=100.0,
                   help="traffic duration in ms (default 100)")
    p.add_argument("--seed", type=int, default=42,
                   help="root RNG seed (default 42)")
    return p


def _scenario_from_args(args, spec_path: Optional[str] = None):
    """The ScenarioConfig a subcommand should run: the JSON file at
    ``spec_path`` when given, the shared inline flags otherwise."""
    import json

    from repro.bench.scenarios import ScenarioConfig

    if spec_path is not None:
        if os.path.isdir(spec_path):
            raise ValueError(
                f"{spec_path} is a directory, not a ScenarioConfig JSON "
                f"file; to inspect an exported bundle use "
                f"`python -m repro report {spec_path}`"
            )
        with open(spec_path) as fh:
            return ScenarioConfig.from_dict(json.load(fh))
    return ScenarioConfig(
        policy=args.policy, n_paths=args.paths, load=args.load,
        traffic=args.traffic, duration=args.duration * 1000.0,
        seed=args.seed,
    )


def _cmd_experiments(args) -> int:
    from repro.bench.figures import ALL_EXPERIMENTS

    for exp_id, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id:>3}  {doc}")
    return 0


def _cmd_run(args) -> int:
    from repro.bench.figures import ALL_EXPERIMENTS

    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    unknown = [e for e in args.ids if e.upper() not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in args.ids:
        fn = ALL_EXPERIMENTS[exp_id.upper()]
        text, _data = fn()
        print(text)
        print()
    return 0


def _cmd_policies(args) -> int:
    from repro.core.policies import POLICY_NAMES, make_policy
    import numpy as np

    rng = np.random.default_rng(0)
    for name in POLICY_NAMES:
        pol = make_policy(name, rng=rng)
        doc = (type(pol).__doc__ or "").strip().splitlines()[0]
        print(f"{name:>11}  {doc}")
    return 0


def _cmd_capacity(args) -> int:
    from repro.bench.scenarios import ScenarioConfig

    cfg = ScenarioConfig(chain=args.chain, packet_size=args.size)
    cap = cfg.path_capacity_pps()
    print(f"chain={args.chain} packet={args.size}B: "
          f"{cap:,.0f} pps/path ({cap * args.size * 8 / 1e9:.2f} Gbps/path)")
    return 0


def _cmd_faults(args) -> int:
    import json
    import math

    from repro.bench.scenarios import run_scenario
    from repro.faults import FaultSchedule
    from repro.metrics.report import Table

    try:
        sched = _build_schedule(args, FaultSchedule)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cfg = _scenario_from_args(args)
    cfg.faults = sched
    try:
        res = run_scenario(cfg)
    except ValueError as exc:  # e.g. fault target out of range
        print(f"error: {exc}", file=sys.stderr)
        return 2
    s = res.summary
    table = Table(["metric", "value"],
                  title=f"faults: {args.policy} k={args.paths} "
                        f"load={args.load}")
    table.add_row(["offered pkts", res.offered])
    table.add_row(["delivered pkts", res.stats["delivered"]])
    table.add_row(["delivered %", 100.0 * res.stats["delivered"] / res.offered])
    table.add_row(["p50 (us)", s.p50])
    table.add_row(["p99 (us)", s.p99])
    table.add_row(["p99.9 (us)", s.p999])
    print(table.render())

    av = res.availability or {}
    if av:
        print()
        at_ = Table(["metric", "value"], title="availability")
        def _fmt(x):
            if isinstance(x, float) and math.isnan(x):
                return "n/a"
            return x
        for key in ("faults", "detected", "mean_detection_lag",
                    "max_detection_lag", "mean_recovery_time",
                    "path_uptime_fraction", "ejections", "reinstatements",
                    "rerouted", "lost_to_faults", "unmatched_ejections"):
            if key in av:
                at_.add_row([key, _fmt(av[key])])
        print(at_.render())
        if args.timeline:
            print()
            for t, action, kind, target in av["timeline"]:
                print(f"  {t:12.1f}  {action:<5}  {kind:<12}  target={target}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(res.to_dict(), fh, indent=1)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


def _build_schedule(args, FaultSchedule):
    import json

    if args.spec is not None:
        with open(args.spec) as fh:
            sched = FaultSchedule.from_dict(json.load(fh))
    else:
        sched = FaultSchedule()
        at = args.at * args.duration * 1000.0
        dur = args.fault_duration * 1000.0
        # Per-kind default magnitudes; explicit values validate strictly.
        magnitude = args.magnitude
        if magnitude is None:
            magnitude = 4.0 if args.kind == "degrade" else 1.0
        if args.mtbf is not None:
            for path in range(args.paths):
                sched.renewal(args.kind, path=path, mtbf=args.mtbf * 1000.0,
                              mttr=dur, magnitude=magnitude)
        elif args.kind == "drop_burst":
            sched.drop_burst(at=at, duration=dur, prob=magnitude)
        elif args.kind == "degrade":
            sched.degrade(args.target, at=at, duration=dur, factor=magnitude)
        else:
            getattr(sched, args.kind)(args.target, at=at, duration=dur)
    return sched


def _cmd_sweep(args) -> int:
    import json
    import time

    from repro.sweep import Axis, SweepSpec, run_sweep
    from repro.metrics.report import Table

    try:
        spec = _build_sweep_spec(args, SweepSpec, Axis)
        if args.seed is not None:
            spec.base = {**spec.base, "seed": args.seed}
        cells = spec.expand()  # fail fast on bad fields before forking
    except (OSError, TypeError, ValueError, KeyError,
            json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    total = len(cells)
    t0 = time.perf_counter()

    def progress(done, _total, cell):
        if args.quiet:
            return
        coords = " ".join(f"{k}={v}" for k, v in cell.params.items())
        src = "cache" if cell.cached else f"{cell.wall_s:.1f}s"
        print(f"[{done}/{total}] {coords}  p99={cell.exact['p99']:.1f}us  "
              f"({src})", file=sys.stderr)

    sr = run_sweep(spec, jobs=args.jobs,
                   cache=False if args.no_cache else None,
                   cache_dir=args.cache_dir, progress=progress,
                   telemetry=args.telemetry,
                   check=True if args.check else None)

    axis_names = [a.param for a in spec.axes]
    table = Table(
        axis_names + ["p50 (us)", "p99 (us)", "p99.9 (us)", "delivered %"],
        title=f"sweep: {spec.name} ({total} cells, jobs={sr.jobs})",
    )
    for cell in sr.cells:
        delivered = 100.0 * cell.delivered / max(cell.offered, 1)
        table.add_row([cell.params[n] for n in axis_names]
                      + [cell.summary.p50, cell.exact["p99"],
                         cell.exact["p999"], delivered])
    print(table.render())
    acct = sr.accounting()
    print(f"\n{total} cells in {time.perf_counter() - t0:.1f}s wall "
          f"({acct['cell_wall_s']:.1f}s simulated-cell time, "
          f"jobs={acct['jobs']}, cache {acct['cache_hits']} hit / "
          f"{acct['cache_misses']} miss)")
    if args.telemetry:
        from repro.sweep.cache import ResultCache

        tel_root = os.path.join(str(ResultCache(args.cache_dir).root),
                                "telemetry")
        print(f"per-cell telemetry bundles under {tel_root}/<cache-key>/ "
              f"(inspect with: python -m repro report <dir>)")
    if args.out:
        sr.save(args.out)
        print(f"artifact written to {args.out}")
        from repro.obs import write_manifest

        manifest_path = args.out + ".manifest.json"
        write_manifest(manifest_path,
                       extra={"sweep": spec.name, "cells": total,
                              "cache_hits": acct["cache_hits"],
                              "cache_misses": acct["cache_misses"]})
        print(f"manifest written to {manifest_path}")
    if args.check:
        bad = [c for c in sr.cells
               if c.check_report is not None and not c.check_report["ok"]]
        print(f"invariants: {total - len(bad)}/{total} cells clean")
        if bad:
            first = bad[0].check_report["first_violation"]
            print(f"first violation (cell {bad[0].index}): "
                  f"[{first['invariant']}] t={first['time']:.1f} "
                  f"{first['message']}", file=sys.stderr)
            return 1
    return 0


def _build_sweep_spec(args, SweepSpec, Axis):
    import json

    from repro.sweep import coerce_field_value

    if args.spec is not None:
        with open(args.spec) as fh:
            spec = SweepSpec.from_dict(json.load(fh))
        if not spec.axes:
            raise ValueError(f"spec {args.spec!r} declares no axes")
        return spec
    base = {}
    for item in args.sets:
        if "=" not in item:
            raise ValueError(f"--set expects FIELD=VALUE, got {item!r}")
        key, _, value = item.partition("=")
        base[key] = coerce_field_value(key, value)
    axes = []
    for item in args.axes:
        if "=" not in item:
            raise ValueError(f"--axis expects FIELD=V1,V2,..., got {item!r}")
        key, _, values = item.partition("=")
        axes.append(Axis(key, [coerce_field_value(key, v)
                               for v in values.split(",")]))
    if not axes:
        raise ValueError("nothing to sweep: give --spec FILE or --axis flags")
    return SweepSpec(name=args.name, base=base, axes=axes,
                     seed_mode=args.seed_mode)


def _cmd_trace(args) -> int:
    import json

    from repro.bench.scenarios import run_scenario
    from repro.obs import Telemetry, json_report, render_report

    try:
        cfg = _scenario_from_args(
            args, args.spec if args.spec is not None else args.config)
        tel = Telemetry(metrics_interval=args.metrics_interval)
        res = run_scenario(cfg, telemetry=tel)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(json_report(tel.tracer, warmup=cfg.warmup,
                                     top_k=args.top,
                                     e2e_summary=res.summary),
                         indent=1, sort_keys=True))
    else:
        print(render_report(tel.tracer, warmup=cfg.warmup, top_k=args.top,
                            e2e_summary=res.summary))
    if args.out:
        paths = tel.export(args.out)
        if not args.json:
            print()
            for kind in sorted(paths):
                print(f"{kind:>8}: {paths[kind]}")
    return 0


def _cmd_report(args) -> int:
    import json
    import pathlib

    from repro.obs import json_report, load_spans, render_report

    p = pathlib.Path(args.artifact)
    # The manifest kind outranks a root events.jsonl: a cluster bundle
    # exported into a previously-used directory may sit next to stale
    # single-run artifacts, and rendering those would be misleading.
    if p.is_dir() and (_bundle_kind(p) == "cluster_bundle"
                       or not (p / "events.jsonl").exists()):
        print(f"error: {_bundle_without_telemetry(p)}", file=sys.stderr)
        return 2
    events = p / "events.jsonl" if p.is_dir() else p
    try:
        tracer = load_spans(events)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot load {events}: {exc}", file=sys.stderr)
        return 2
    if not tracer.records:
        print(f"error: no span records in {events} (was the run traced "
              f"with spans enabled?)", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(json_report(tracer, warmup=args.warmup,
                                     top_k=args.top),
                         indent=1, sort_keys=True))
        return 0
    manifest_path = events.parent / "manifest.json"
    if manifest_path.exists():
        try:
            with open(manifest_path) as fh:
                man = json.load(fh)
            print(f"run: seed={man.get('seed')} "
                  f"config_sha={str(man.get('config_sha256'))[:12]} "
                  f"code={str(man.get('code_fingerprint'))[:12]} "
                  f"at {man.get('wall_clock_utc')}\n")
        except (OSError, json.JSONDecodeError):
            pass
    print(render_report(tracer, warmup=args.warmup, top_k=args.top))
    forensics_path = events.parent / "forensics.json"
    if forensics_path.exists():
        from repro.obs import render_forensics

        try:
            with open(forensics_path) as fh:
                print()
                print(render_forensics(json.load(fh), top_k=0))
        except (OSError, json.JSONDecodeError, KeyError):
            pass
    return 0


def _bundle_kind(p):
    """The ``kind`` recorded in a bundle directory's manifest.json, or
    None when there is no readable manifest."""
    import json

    try:
        with open(p / "manifest.json") as fh:
            return json.load(fh).get("kind")
    except (OSError, json.JSONDecodeError):
        return None


def _bundle_without_telemetry(p) -> str:
    """Actionable message for a bundle directory with no usable root
    telemetry: cluster bundles point at their per-host sub-bundles,
    anything else explains how to produce telemetry in the first
    place."""
    if _bundle_kind(p) == "cluster_bundle":
        hosts = sorted(d.name for d in p.iterdir()
                       if d.is_dir() and d.name.startswith("host"))
        where = f"{p}/{hosts[0]}" if hosts else f"{p}/host0"
        return (f"{p} is a cluster bundle; telemetry lives in its "
                f"per-host sub-bundles -- pass one of "
                f"{', '.join(hosts) or 'host<k>'}, e.g. "
                f"`python -m repro report {where}`")
    return (f"no telemetry in {p} (no events.jsonl): the run was not "
            f"instrumented; re-run with `python -m repro trace --out {p}` "
            f"or repro.RunOptions(telemetry=...) to produce a bundle")


def _why_schedule(args):
    """The optional quick-fault schedule of ``repro why`` (None = clean
    run; spec files can instead carry faults inside the config)."""
    if args.fault is None:
        return None
    from repro.faults import FaultSchedule

    sched = FaultSchedule()
    at = args.fault_at * args.duration * 1000.0
    dur = args.fault_duration * 1000.0
    magnitude = args.fault_magnitude
    if magnitude is None:
        magnitude = 4.0 if args.fault == "degrade" else 1.0
    if args.fault == "drop_burst":
        sched.drop_burst(at=at, duration=dur, prob=magnitude)
    elif args.fault == "degrade":
        sched.degrade(args.fault_target, at=at, duration=dur,
                      factor=magnitude)
    else:
        getattr(sched, args.fault)(args.fault_target, at=at, duration=dur)
    return sched


def _cmd_why(args) -> int:
    import json

    from repro.bench.scenarios import run_scenario
    from repro.obs import Telemetry, render_forensics
    from repro.obs.forensics import ForensicsSpec

    try:
        cfg = _scenario_from_args(
            args, args.spec if args.spec is not None else args.config)
        sched = _why_schedule(args)
        if sched is not None:
            if cfg.faults is not None:
                raise ValueError(
                    "faults set both in the scenario spec and via --fault; "
                    "set them once"
                )
            cfg.faults = sched
        spec = ForensicsSpec(quantile=args.quantile, top_k=args.top,
                             dominance=args.dominance).validate()
        tel = Telemetry(metrics_interval=args.metrics_interval)
        res = run_scenario(cfg, telemetry=tel, forensics=spec)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = res.forensics_report
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        s = res.summary
        print(f"scenario: {cfg.policy} k={cfg.n_paths} load={cfg.load} "
              f"seed={cfg.seed}  p50={s.p50:.1f}us p99={s.p99:.1f}us "
              f"p99.9={s.p999:.1f}us\n")
        print(render_forensics(report))
    if args.out:
        _write_json(args.out, report)
    return 0


def _ledger_path(args) -> str:
    from repro.obs.ledger import DEFAULT_LEDGER

    return args.ledger if args.ledger is not None else DEFAULT_LEDGER


def _cmd_ledger_record(args) -> int:
    import json

    from repro.bench.scenarios import run_scenario
    from repro.obs import Telemetry
    from repro.obs.ledger import append_entry, build_entry

    if args.spec is not None and not os.path.isdir(args.spec):
        # A ClusterConfig spec records a cluster entry: dispatch on the
        # inferred payload kind, mirroring repro.run()'s config dispatch.
        from repro import schemas

        try:
            with open(args.spec) as fh:
                spec_data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if schemas.infer_kind(spec_data) == "cluster_config":
            return _ledger_record_cluster(args, spec_data)

    try:
        cfg = _scenario_from_args(args, args.spec)
        tel = Telemetry(metrics_interval=0.0)
        res = run_scenario(cfg, telemetry=tel,
                           forensics=not args.no_forensics)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kernel_pps = args.kernel_pps
    if kernel_pps is None:
        kernel_from = args.kernel_from
        explicit = kernel_from is not None
        if not explicit:
            kernel_from = _DEFAULT_KERNEL_RECORD
        try:
            with open(kernel_from) as fh:
                kernel_pps = json.load(fh).get("full", {}).get("pps")
        except (OSError, json.JSONDecodeError) as exc:
            if explicit:
                print(f"error: cannot read {kernel_from}: {exc}",
                      file=sys.stderr)
                return 2
            kernel_pps = None  # no committed record; stays informational
    entry = build_entry(res, args.label, kind=args.kind,
                        kernel_pps=kernel_pps)
    index = append_entry(entry, _ledger_path(args))
    s = res.summary
    print(f"recorded entry {index} label={args.label!r} "
          f"p50={s.p50:.1f}us p99={s.p99:.1f}us p99.9={s.p999:.1f}us "
          f"-> {_ledger_path(args)}")
    return 0


def _ledger_record_cluster(args, spec_data) -> int:
    """``repro ledger record --spec <ClusterConfig json>``: run the
    cluster and append a cluster-kind entry."""
    from repro.cluster import ClusterConfig, run_cluster
    from repro.obs.ledger import append_entry, build_cluster_entry

    try:
        cfg = ClusterConfig.from_dict(spec_data)
        res = run_cluster(cfg)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    entry = build_cluster_entry(
        res, args.label,
        kind=args.kind if args.kind != "run" else "cluster",
    )
    index = append_entry(entry, _ledger_path(args))
    s = res.summary
    print(f"recorded entry {index} label={args.label!r} "
          f"[cluster, {res.n_hosts} hosts] "
          f"p50={s.p50:.1f}us p99={s.p99:.1f}us p99.9={s.p999:.1f}us "
          f"-> {_ledger_path(args)}")
    return 0


def _cmd_ledger_list(args) -> int:
    from repro.obs.ledger import load_ledger, render_ledger

    try:
        entries = load_ledger(_ledger_path(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"ledger {_ledger_path(args)} is empty; "
              f"run `repro ledger record` first")
        return 0
    print(render_ledger(entries))
    return 0


def _cmd_ledger_diff(args) -> int:
    import json

    from repro.obs.ledger import (
        diff_entries, load_ledger, render_diff, select_entry,
    )

    try:
        entries = load_ledger(_ledger_path(args))
        base = select_entry(entries, args.base)
        cand = select_entry(entries, args.candidate)
        percentiles = ([float(p) for p in args.percentiles]
                       if args.percentiles else (50.0, 99.0, 99.9))
        diff = diff_entries(base, cand, percentiles=percentiles,
                            max_regress=args.max_regress)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, indent=1, sort_keys=True))
    else:
        print(render_diff(diff))
    if args.out:
        _write_json(args.out, diff)
    return 0 if diff["ok"] else 1


def _cmd_demo(args) -> int:
    from repro import (
        MpdpConfig, MultipathDataPlane, PathConfig, PoissonSource,
        RngRegistry, SHARED_CORE, Simulator, Table,
    )

    table = Table(["config", "p50", "p99", "p99.9"],
                  title="demo: single vs multipath (latency, us)")
    for label, policy, k in [("single-path", "single", 1),
                             ("adaptive k=4", "adaptive", 4)]:
        sim = Simulator()
        rngs = RngRegistry(seed=7)
        host = MultipathDataPlane(
            sim,
            MpdpConfig(n_paths=k, policy=policy,
                       path=PathConfig(jitter=SHARED_CORE), warmup=10_000.0),
            rngs,
        )
        src = PoissonSource(sim, host.factory, host.input, rngs.stream("t"),
                            rate_pps=500_000, n_flows=256,
                            duration=args.duration * 1000.0)
        src.start()
        sim.run(until=args.duration * 1000.0 + 10_000.0)
        host.finalize()
        s = host.sink.recorder.summary()
        table.add_row([label, s.p50, s.p99, s.p999])
    print(table.render())
    return 0


def _cluster_from_args(args):
    """The ClusterConfig a cluster subcommand should run: the JSON file
    at ``--spec`` when given, N uniform hosts from the shared inline
    scenario flags plus the fabric flags otherwise."""
    import json

    from repro.bench.scenarios import ScenarioConfig
    from repro.cluster import ClusterConfig
    from repro.net.fabric import FabricConfig

    if args.spec is not None:
        if os.path.isdir(args.spec):
            raise ValueError(
                f"{args.spec} is a directory, not a ClusterConfig JSON "
                f"file; to inspect an exported bundle use "
                f"`python -m repro report {args.spec}`"
            )
        with open(args.spec) as fh:
            return ClusterConfig.from_dict(json.load(fh))
    template = ScenarioConfig(
        policy=args.policy, n_paths=args.paths, load=args.load,
        traffic=args.traffic, duration=args.duration * 1000.0,
    )
    fabric = FabricConfig(
        n_spines=args.spines, base_latency=args.base_latency,
        spine_skew=args.spine_skew, jitter_scale=args.jitter,
        steering=args.steering, loss_prob=args.loss,
    )
    return ClusterConfig.uniform_hosts(
        args.hosts, template, fabric, pattern=args.pattern,
        incast_target=args.incast_target, seed=args.seed, epoch=args.epoch,
    )


def _cmd_cluster_run(args) -> int:
    import json

    from repro.check.invariants import InvariantViolation
    from repro.cluster import run_cluster
    from repro.metrics.report import Table

    try:
        cfg = _cluster_from_args(args)
        res = run_cluster(cfg, workers=args.jobs,
                          telemetry_dir=args.telemetry,
                          check=True if args.check else None)
    except InvariantViolation as exc:
        print(f"cluster invariant violation: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(res.to_dict(), indent=1, sort_keys=True))
    else:
        table = Table(
            ["host", "delivered", "remote %", "p50 (us)", "p99 (us)",
             "p99.9 (us)"],
            title=f"cluster: {cfg.n_hosts} hosts pattern={cfg.pattern} "
                  f"{cfg.fabric.steering}x{cfg.fabric.n_spines} "
                  f"(workers={res.workers})",
        )
        for h in res.hosts:
            s = h["summary"]
            sent = sum(h["router"]["sent"].values())
            remote = 100.0 * sent / max(h["router"]["generated"], 1)
            table.add_row([h["name"], h["delivered"], remote,
                           s["p50"], s["p99"], s["p999"]])
        cs = res.summary
        c = res.cluster
        table.add_row(["cluster", c["delivered"],
                       100.0 * c["envelopes_sent"] / max(c["offered"], 1),
                       cs.p50, cs.p99, cs.p999])
        print(table.render())
        print(f"\nenvelopes: {c['envelopes_sent']} sent, "
              f"{c['envelopes_received']} received, "
              f"{c['fabric_dropped']} dropped in fabric; "
              f"delivery {100.0 * c['delivery_ratio']:.2f}%; "
              f"epoch {c['epoch_us']:.0f}us "
              f"({res.wall_s:.1f}s wall, workers={res.workers})")
        if args.check:
            cons = c.get("conservation", {})
            print(f"cross-shard conservation: "
                  f"{'ok' if cons.get('ok') else 'VIOLATED'}")
        if args.telemetry:
            print(f"per-host bundles under {args.telemetry}/host<k>/ "
                  f"(inspect with: python -m repro report "
                  f"{args.telemetry}/host0)")
    if args.out:
        _write_json(args.out, res.to_dict())
    return 0


#: Cluster-level sweep axes (everything else is a per-host scenario field).
_CLUSTER_AXIS_INTS = ("hosts", "incast_target", "seed")


def _coerce_cluster_value(name: str, raw: str):
    """Typed value for one cluster sweep axis coordinate."""
    from repro.sweep import coerce_field_value

    if name in _CLUSTER_AXIS_INTS:
        return int(raw)
    if name == "pattern":
        return raw
    if name == "epoch":
        return float(raw)
    if name.startswith("fabric."):
        import dataclasses

        from repro.net.fabric import FabricConfig

        field = name[len("fabric."):]
        names = {f.name for f in dataclasses.fields(FabricConfig)}
        if field not in names:
            raise ValueError(
                f"unknown fabric field {field!r}; "
                f"valid: {sorted(names)}"
            )
        if field == "steering":
            return raw
        return int(raw) if field == "n_spines" else float(raw)
    return coerce_field_value(name, raw)


def _apply_cluster_params(base, params):
    """One sweep cell: ``base`` with the axis coordinates applied.

    Plain names are per-host ScenarioConfig fields (set on every host),
    ``fabric.X`` names fabric fields, and ``hosts``/``pattern``/
    ``incast_target``/``seed``/``epoch`` are cluster-level."""
    import dataclasses

    from repro.cluster import ClusterConfig

    cfg = ClusterConfig.from_dict(base.to_dict())  # deep, aliasing-free copy
    for name, value in params.items():
        if name == "hosts":
            cfg = ClusterConfig.uniform_hosts(
                int(value), cfg.hosts[0].scenario, cfg.fabric,
                pattern=cfg.pattern, incast_target=cfg.incast_target,
                seed=cfg.seed, epoch=cfg.epoch,
            )
        elif name in ("pattern", "incast_target", "seed", "epoch"):
            setattr(cfg, name, value)
        elif name.startswith("fabric."):
            setattr(cfg.fabric, name[len("fabric."):], value)
        else:
            for h in cfg.hosts:
                h.scenario = dataclasses.replace(h.scenario, **{name: value})
    return cfg


def _cmd_cluster_sweep(args) -> int:
    import itertools
    import json
    import time

    from repro.cluster import run_cluster
    from repro.metrics.report import Table

    try:
        base = _cluster_from_args(args)
        axes = []
        for item in args.axes:
            if "=" not in item:
                raise ValueError(
                    f"--axis expects FIELD=V1,V2,..., got {item!r}")
            key, _, values = item.partition("=")
            axes.append((key, [_coerce_cluster_value(key, v)
                               for v in values.split(",")]))
        if not axes:
            raise ValueError(
                "nothing to sweep: give at least one --axis "
                "(e.g. --axis hosts=2,4,8 --axis load=0.5,0.7)")
        names = [n for n, _ in axes]
        combos = list(itertools.product(*[v for _, v in axes]))
        cells = []
        t0 = time.perf_counter()
        for i, combo in enumerate(combos):
            params = dict(zip(names, combo))
            cfg = _apply_cluster_params(base, params)
            cell_t0 = time.perf_counter()
            res = run_cluster(cfg, workers=args.jobs)
            if not args.quiet:
                coords = " ".join(f"{k}={v}" for k, v in params.items())
                print(f"[{i + 1}/{len(combos)}] {coords}  "
                      f"p99={res.p99:.1f}us  "
                      f"({time.perf_counter() - cell_t0:.1f}s)",
                      file=sys.stderr)
            cells.append({
                "params": params,
                "summary": res.to_dict()["summary"],
                "cluster": res.cluster,
                "sim_time": res.sim_time,
            })
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    table = Table(
        names + ["delivered %", "p50 (us)", "p99 (us)", "p99.9 (us)"],
        title=f"cluster sweep: {args.name} ({len(cells)} cells)",
    )
    for cell in cells:
        s = cell["summary"]
        table.add_row([cell["params"][n] for n in names]
                      + [100.0 * cell["cluster"]["delivery_ratio"],
                         s["p50"], s["p99"], s["p999"]])
    print(table.render())
    print(f"\n{len(cells)} cells in {time.perf_counter() - t0:.1f}s wall")
    if args.out:
        from repro import schemas

        payload = {
            "schema_version": schemas.version_for("cluster_sweep"),
            "name": args.name,
            "cluster_config": base.to_dict(),
            "axes": dict(axes),
            "cells": cells,
        }
        _write_json(args.out, payload)
    return 0


def _cmd_slo(args) -> int:
    import json

    from repro.bench.scenarios import run_scenario
    from repro.metrics.report import Table
    from repro.slo import SloSpec

    if args.experiment is not None:
        from repro.bench.figures import ALL_EXPERIMENTS

        exp_id = args.experiment.upper()
        if exp_id not in ("SLO1", "SLO2"):
            print(f"error: unknown SLO experiment {args.experiment!r}; "
                  f"available: SLO1, SLO2", file=sys.stderr)
            return 2
        if args.scale is not None:
            os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
        text, _data = ALL_EXPERIMENTS[exp_id]()
        print(text)
        return 0

    try:
        if args.spec is not None:
            with open(args.spec) as fh:
                spec = SloSpec.from_dict(json.load(fh))
        else:
            objectives = args.objectives or ["p99 <= 500us"]
            spec = SloSpec(
                objectives=tuple(objectives),
                window=args.window * 1000.0,
                autotune=args.autotune,
                start_paths=args.start_paths,
            )
        spec.validate()
        cfg = _scenario_from_args(args)
        cfg.slo = spec
        res = run_scenario(cfg)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rep = res.slo_report
    table = Table(["metric", "value"],
                  title=f"slo: {args.policy} k={args.paths} load={args.load} "
                        f"[{'; '.join(o.canonical() for o in spec.objectives)}]")
    table.add_row(["windows", rep["n_windows"]])
    table.add_row(["attained", rep["attained"]])
    table.add_row(["attainment %", 100.0 * rep["attainment"]])
    table.add_row(["path-seconds", rep["path_seconds"]])
    table.add_row(["p99 (us)", res.summary.p99])
    table.add_row(["p99.9 (us)", res.summary.p999])
    print(table.render())
    if rep["decisions"]:
        print()
        dt = Table(["time (us)", "action", "knob", "from", "to", "reason"],
                   title="autotuner decisions")
        for d in rep["decisions"]:
            dt.add_row([d["time"], d["action"], d["knob"], d["from"],
                        d["to"], d["reason"]])
        print(dt.render())
    if args.windows:
        print()
        wt = Table(["start", "end", "count", "delivery %", "ok", "violations"],
                   title="attainment windows")
        for w in rep["windows"]:
            wt.add_row([w["start"], w["end"], w["count"],
                        w["metrics"].get("delivery", 100.0),
                        "yes" if w["ok"] else "NO",
                        "; ".join(w["violations"]) or "-"])
        print(wt.render())
    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump(rep, fh, indent=1)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


def _write_json(path: str, payload) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {path}")


def _cmd_check_run(args) -> int:
    import json

    from repro.bench.scenarios import run_scenario
    from repro.check import CheckSpec, InvariantViolation
    from repro.metrics.report import Table

    try:
        cfg = _scenario_from_args(args, args.spec)
        spec = CheckSpec(sample_interval=args.sample_interval,
                         strict=args.strict)
        res = run_scenario(cfg, check=spec)
    except InvariantViolation as exc:
        print(f"invariant violation (strict): {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rep = res.check_report
    table = Table(["invariant", "checks"],
                  title=f"check: {cfg.policy} k={cfg.n_paths} "
                        f"load={cfg.load} ({rep['samples']} samples)")
    for name, count in rep["invariants"].items():
        table.add_row([name, count])
    print(table.render())
    if rep["ok"]:
        print("\nall invariants held")
    else:
        first = rep["first_violation"]
        print(f"\n{rep['violation_count']} violation(s); first: "
              f"[{first['invariant']}] t={first['time']:.1f} "
              f"{first['message']}")
    if args.out:
        _write_json(args.out, rep)
    return 0 if rep["ok"] else 1


def _cmd_check_fuzz(args) -> int:
    from repro.check.fuzz import fuzz_scenarios

    def progress(i, cfg, report):
        if args.quiet:
            return
        status = "ok" if report["ok"] else (
            f"VIOLATION [{report['first_violation']['invariant']}]")
        faults = " +faults" if cfg.faults is not None else ""
        print(f"[{i + 1}/{args.cases}] {cfg.policy} k={cfg.n_paths} "
              f"{cfg.traffic} load={cfg.load:.2f}{faults}  {status}",
              file=sys.stderr)

    report = fuzz_scenarios(cases=args.cases, seed=args.seed,
                            out_dir=args.repro_dir,
                            sample_interval=args.sample_interval,
                            shrink=not args.no_shrink, progress=progress)
    if report["ok"]:
        print(f"{args.cases} fuzzed scenarios, all invariants held")
    else:
        print(f"{len(report['failures'])}/{args.cases} scenarios violated "
              f"an invariant:")
        for f in report["failures"]:
            v = f.get("shrunk_first_violation") or f["first_violation"]
            where = f" (repro: {f['repro_path']})" if "repro_path" in f else ""
            print(f"  case {f['case']}: [{v['invariant']}] "
                  f"{v['message']}{where}")
    if args.out:
        _write_json(args.out, report)
    return 0 if report["ok"] else 1


def _cmd_check_diff(args) -> int:
    import json

    from repro.check.diff import diff_scenario
    from repro.metrics.report import Table

    try:
        cfg = _scenario_from_args(args, args.spec)
        report = diff_scenario(cfg, jobs=args.jobs if args.jobs else 2,
                               variants=args.variants or None)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    table = Table(["variant", "identical", "first drift"],
                  title=f"diff: {cfg.policy} k={cfg.n_paths} "
                        f"load={cfg.load}")
    for name, entry in report["variants"].items():
        table.add_row([name, "yes" if entry["identical"] else "NO",
                       entry["diffs"][0] if entry["diffs"] else "-"])
    for name, reason in report["skipped"].items():
        table.add_row([name, "skipped", reason])
    print(table.render())
    print("\nall variants identical" if report["all_identical"]
          else "\nDRIFT DETECTED (see diffs above)")
    if args.out:
        _write_json(args.out, report)
    return 0 if report["all_identical"] else 1


def _cmd_check_selftest(args) -> int:
    from repro.check.selftest import mutation_selftest

    report = mutation_selftest(seed=args.seed)
    print(f"mutation: {report['mutation']}")
    print(f"intact run clean:   {report['intact_clean']}")
    print(f"violation caught:   {report['violation_caught']} "
          f"({report['broken_violation_count']} violations)")
    if report["first_violation"] is not None:
        first = report["first_violation"]
        print(f"first violation:    [{first['invariant']}] "
              f"t={first['time']:.1f} {first['message']}")
    print(f"result drift found: {report['drift_detected']}")
    for line in report["drift_example"]:
        print(f"  {line}")
    print("\nself-test PASSED" if report["ok"] else "\nself-test FAILED")
    if args.out:
        _write_json(args.out, report)
    return 0 if report["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multipath intra-host data plane (CLUSTER'22 reproduction)",
    )
    parser.add_argument("--scheduler", choices=("heap", "calendar"),
                        default=None,
                        help="event-scheduler backend for every simulator "
                             "this command builds (default: REPRO_SCHEDULER "
                             "env var, else calendar); results are "
                             "bit-identical either way")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reconstructed experiments"
                   ).set_defaults(func=_cmd_experiments)

    p_run = sub.add_parser("run", help="regenerate experiment(s) by id")
    p_run.add_argument("ids", nargs="+", help="experiment ids, e.g. F3 T1 A2")
    p_run.add_argument("--scale", type=float, default=None,
                       help="duration scale factor (overrides REPRO_BENCH_SCALE)")
    p_run.set_defaults(func=_cmd_run)

    sub.add_parser("policies", help="list path-selection policies"
                   ).set_defaults(func=_cmd_policies)

    p_cap = sub.add_parser("capacity", help="print calibrated path capacity")
    p_cap.add_argument("--chain", default="heavy")
    p_cap.add_argument("--size", type=int, default=1554)
    p_cap.set_defaults(func=_cmd_capacity)

    p_flt = sub.add_parser("faults", parents=[_scenario_parent()],
                           help="run a fault-injection scenario")
    p_flt.add_argument("--spec", default=None,
                       help="JSON fault-schedule file (see docs/FAULTS.md); "
                            "overrides the inline fault flags")
    p_flt.add_argument("--kind", default="crash",
                       choices=["crash", "hang", "degrade", "drop_burst",
                                "sched_freeze"])
    p_flt.add_argument("--target", type=int, default=0,
                       help="path index to fault (ignored for drop_burst)")
    p_flt.add_argument("--at", type=float, default=0.3,
                       help="fault onset as a fraction of the run (default 0.3)")
    p_flt.add_argument("--fault-duration", type=float, default=20.0,
                       help="fault duration in ms (default 20)")
    p_flt.add_argument("--mtbf", type=float, default=None,
                       help="per-path MTBF in ms: replaces the one-shot fault "
                            "with a renewal process on every path")
    p_flt.add_argument("--magnitude", type=float, default=None,
                       help="drop probability (drop_burst, default 1.0) or "
                            "slowdown factor (degrade, default 4.0)")
    p_flt.add_argument("--timeline", action="store_true",
                       help="also print the applied fault timeline")
    p_flt.add_argument("--out", default=None,
                       help="write the SimulationResult JSON here")
    p_flt.set_defaults(func=_cmd_faults, load=0.55)

    p_sw = sub.add_parser("sweep",
                          help="run a parameter sweep (parallel, cached)")
    p_sw.add_argument("--spec", default=None,
                      help="SweepSpec JSON file (see docs/SWEEPS.md); "
                           "overrides the inline --axis/--set flags")
    p_sw.add_argument("--axis", action="append", default=[], dest="axes",
                      metavar="FIELD=V1,V2,...",
                      help="swept ScenarioConfig field (repeatable; cross "
                           "product in flag order)")
    p_sw.add_argument("--set", action="append", default=[], dest="sets",
                      metavar="FIELD=VALUE",
                      help="fixed ScenarioConfig field override (repeatable)")
    p_sw.add_argument("--name", default="cli-sweep",
                      help="sweep name recorded in the artifact")
    p_sw.add_argument("--seed-mode", choices=["fixed", "derived"],
                      default="fixed",
                      help="per-cell seed derivation (docs/SWEEPS.md)")
    p_sw.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: REPRO_SWEEP_JOBS or "
                           "cpu count; 1 = run inline)")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="bypass the .repro-cache result cache")
    p_sw.add_argument("--cache-dir", default=None,
                      help="cache root (default .repro-cache or "
                           "REPRO_CACHE_DIR)")
    p_sw.add_argument("--out", default=None,
                      help="write the SweepResult JSON artifact here")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress per-cell progress lines")
    p_sw.add_argument("--telemetry", action="store_true",
                      help="instrument every cell and persist its trace "
                           "bundle under the cache root (docs/OBSERVABILITY.md)")
    p_sw.add_argument("--seed", type=int, default=None,
                      help="base seed override merged into the sweep's base "
                           "config (default: spec / ScenarioConfig default)")
    p_sw.add_argument("--check", action="store_true",
                      help="arm the runtime invariant engine in every cell "
                           "(bypasses the cache; docs/CHECKING.md)")
    p_sw.set_defaults(func=_cmd_sweep)

    p_tr = sub.add_parser("trace", parents=[_scenario_parent()],
                          help="run one instrumented scenario and print its "
                               "stage breakdown")
    p_tr.add_argument("config", nargs="?", default=None,
                      help="ScenarioConfig JSON file (alias for --spec)")
    p_tr.add_argument("--spec", default=None,
                      help="ScenarioConfig JSON file (overrides the inline "
                           "scenario flags)")
    p_tr.add_argument("--top", type=int, default=3,
                      help="slowest packets to show timelines for (default 3)")
    p_tr.add_argument("--metrics-interval", type=float, default=1000.0,
                      help="metric snapshot cadence in sim-us (0 disables)")
    p_tr.add_argument("--out", default=None,
                      help="also export the trace bundle (trace.json + "
                           "events.jsonl + metrics.json + manifest.json) here")
    p_tr.add_argument("--json", action="store_true",
                      help="emit the schema-versioned trace_report JSON "
                           "instead of terminal tables")
    p_tr.set_defaults(func=_cmd_trace, load=0.7)

    p_rep = sub.add_parser("report",
                           help="render breakdown tables from an exported "
                                "trace bundle")
    p_rep.add_argument("artifact",
                       help="bundle directory or events.jsonl path")
    p_rep.add_argument("--top", type=int, default=3,
                       help="slowest packets to show timelines for (default 3)")
    p_rep.add_argument("--warmup", type=float, default=0.0,
                       help="discard spans completing before this sim time (us)")
    p_rep.add_argument("--json", action="store_true",
                       help="emit the schema-versioned trace_report JSON "
                            "instead of terminal tables")
    p_rep.set_defaults(func=_cmd_report)

    p_why = sub.add_parser("why", parents=[_scenario_parent()],
                           help="run one scenario with tail forensics and "
                                "print the cause-attribution report")
    p_why.add_argument("config", nargs="?", default=None,
                       help="ScenarioConfig JSON file (alias for --spec)")
    p_why.add_argument("--spec", default=None,
                       help="ScenarioConfig JSON file (overrides the inline "
                            "scenario flags; may carry faults)")
    p_why.add_argument("--quantile", type=float, default=99.0,
                       help="analyze packets above this latency percentile "
                            "(default 99)")
    p_why.add_argument("--top", type=int, default=3,
                       help="exemplar packets to show timelines for "
                            "(default 3)")
    p_why.add_argument("--dominance", type=float, default=0.5,
                       help="stage share of e2e latency needed to name a "
                            "single cause (default 0.5; below it: mixed)")
    p_why.add_argument("--metrics-interval", type=float, default=1000.0,
                       help="queue-depth snapshot cadence in sim-us "
                            "(0 disables the exemplar depth join)")
    p_why.add_argument("--fault", default=None,
                       choices=["crash", "hang", "degrade", "drop_burst",
                                "sched_freeze"],
                       help="inject one fault (quick form; full schedules "
                            "go in the --spec config)")
    p_why.add_argument("--fault-target", type=int, default=0,
                       help="path index to fault (default 0)")
    p_why.add_argument("--fault-at", type=float, default=0.3,
                       help="fault onset as a fraction of the run "
                            "(default 0.3)")
    p_why.add_argument("--fault-duration", type=float, default=20.0,
                       help="fault duration in ms (default 20)")
    p_why.add_argument("--fault-magnitude", type=float, default=None,
                       help="drop probability (drop_burst) or slowdown "
                            "factor (degrade)")
    p_why.add_argument("--json", action="store_true",
                       help="emit the schema-versioned forensics_report "
                            "JSON instead of terminal tables")
    p_why.add_argument("--out", default=None,
                       help="write the forensics_report JSON here")
    p_why.set_defaults(func=_cmd_why, load=0.7)

    p_led = sub.add_parser("ledger",
                           help="append-only cross-run regression ledger "
                                "(record / list / diff)")
    led_sub = p_led.add_subparsers(dest="ledger_command", required=True)

    p_lr = led_sub.add_parser("record", parents=[_scenario_parent()],
                              help="run one instrumented scenario and "
                                   "append its entry to the ledger")
    p_lr.add_argument("--spec", default=None,
                      help="ScenarioConfig JSON file (overrides the inline "
                           "scenario flags)")
    p_lr.add_argument("--label", required=True,
                      help="entry label (diffs pick the latest per label)")
    p_lr.add_argument("--kind", default="run",
                      help="entry kind tag (default 'run'; e.g. 'gate', "
                           "'baseline')")
    p_lr.add_argument("--ledger", default=None,
                      help="ledger file (default "
                           "benchmarks/results/LEDGER.jsonl)")
    p_lr.add_argument("--no-forensics", action="store_true",
                      help="skip tail attribution (entry carries no "
                           "cause histogram)")
    p_lr.add_argument("--kernel-pps", type=float, default=None,
                      help="record this wall-clock kernel throughput "
                           "(informational)")
    p_lr.add_argument("--kernel-from", default=None,
                      help="read kernel pps from a BENCH_KERNEL.json-style "
                           "file ('full.pps'); defaults to the committed "
                           f"{_DEFAULT_KERNEL_RECORD} when present")
    p_lr.set_defaults(func=_cmd_ledger_record)

    p_ll = led_sub.add_parser("list", help="show the ledger trajectory")
    p_ll.add_argument("--ledger", default=None,
                      help="ledger file (default "
                           "benchmarks/results/LEDGER.jsonl)")
    p_ll.set_defaults(func=_cmd_ledger_list)

    p_ld = led_sub.add_parser("diff",
                              help="compare two ledger entries with "
                                   "bootstrap CIs; exit 1 on tail "
                                   "regression")
    p_ld.add_argument("base", help="entry index or label (latest wins)")
    p_ld.add_argument("candidate", help="entry index or label")
    p_ld.add_argument("--ledger", default=None,
                      help="ledger file (default "
                           "benchmarks/results/LEDGER.jsonl)")
    p_ld.add_argument("--max-regress", type=float, default=0.2,
                      help="tail regression threshold as a fraction "
                           "(default 0.2 = 20%%)")
    p_ld.add_argument("--percentile", action="append", default=[],
                      dest="percentiles", metavar="PCT",
                      help="percentile to compare (repeatable; default "
                           "50, 99, 99.9)")
    p_ld.add_argument("--json", action="store_true",
                      help="emit the schema-versioned ledger_diff JSON "
                           "instead of terminal tables")
    p_ld.add_argument("--out", default=None,
                      help="write the ledger_diff JSON here")
    p_ld.set_defaults(func=_cmd_ledger_diff)

    p_slo = sub.add_parser("slo", parents=[_scenario_parent()],
                           help="run a scenario against declared SLOs "
                                "(optionally autotuned)")
    p_slo.add_argument("--experiment", default=None, metavar="SLO1|SLO2",
                       help="regenerate a canned SLO experiment instead of "
                            "a single run")
    p_slo.add_argument("--scale", type=float, default=None,
                       help="experiment duration scale factor "
                            "(with --experiment)")
    p_slo.add_argument("--spec", default=None,
                       help="SloSpec JSON file (see docs/SLO.md); overrides "
                            "the inline objective flags")
    p_slo.add_argument("--objective", action="append", default=[],
                       dest="objectives", metavar="'p99 <= 800us'",
                       help="SLO objective (repeatable; default "
                            "'p99 <= 500us')")
    p_slo.add_argument("--window", type=float, default=5.0,
                       help="attainment window in ms (default 5)")
    p_slo.add_argument("--autotune", action="store_true",
                       help="arm the online autotuner")
    p_slo.add_argument("--start-paths", type=int, default=None,
                       help="initial active path count (rest parked)")
    p_slo.add_argument("--windows", action="store_true",
                       help="also print the per-window attainment table")
    p_slo.add_argument("--out", default=None,
                       help="write the slo_report JSON here")
    p_slo.set_defaults(func=_cmd_slo)

    p_chk = sub.add_parser("check",
                           help="runtime invariant engine: armed runs, "
                                "scenario fuzzing, differential replay")
    chk_sub = p_chk.add_subparsers(dest="check_command", required=True)

    p_cr = chk_sub.add_parser("run", parents=[_scenario_parent()],
                              help="run one scenario with every invariant "
                                   "armed and print the check report")
    p_cr.add_argument("--spec", default=None,
                      help="ScenarioConfig JSON file (overrides the inline "
                           "scenario flags)")
    p_cr.add_argument("--sample-interval", type=float, default=500.0,
                      help="conservation sample cadence in sim-us "
                           "(default 500)")
    p_cr.add_argument("--strict", action="store_true",
                      help="raise on the first violation instead of "
                           "recording and continuing")
    p_cr.add_argument("--out", default=None,
                      help="write the check_report JSON here")
    p_cr.set_defaults(func=_cmd_check_run)

    p_cf = chk_sub.add_parser("fuzz",
                              help="property-test random scenarios with all "
                                   "invariants armed (shrinks failures)")
    p_cf.add_argument("--cases", type=int, default=25,
                      help="scenarios to generate (default 25)")
    p_cf.add_argument("--seed", type=int, default=0,
                      help="fuzzer seed; same seed = same cases (default 0)")
    p_cf.add_argument("--sample-interval", type=float, default=250.0,
                      help="conservation sample cadence in sim-us "
                           "(default 250)")
    p_cf.add_argument("--repro-dir", default=None,
                      help="write minimal repro configs for failing cases "
                           "into this directory")
    p_cf.add_argument("--no-shrink", action="store_true",
                      help="report original failing configs without "
                           "shrinking them")
    p_cf.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress lines")
    p_cf.add_argument("--out", default=None,
                      help="write the fuzz_report JSON here")
    p_cf.set_defaults(func=_cmd_check_fuzz)

    p_cd = chk_sub.add_parser("diff", parents=[_scenario_parent()],
                              help="differentially replay one scenario "
                                   "across harness variants")
    p_cd.add_argument("--spec", default=None,
                      help="ScenarioConfig JSON file (overrides the inline "
                           "scenario flags)")
    p_cd.add_argument("--jobs", type=int, default=None,
                      help="worker processes for the jobs variant "
                           "(default 2)")
    p_cd.add_argument("--variant", action="append", default=[],
                      dest="variants",
                      choices=["telemetry", "faults_kwarg", "recycle_off",
                               "check_armed", "jobs"],
                      help="restrict to specific variants (repeatable; "
                           "default: all applicable)")
    p_cd.add_argument("--out", default=None,
                      help="write the diff_report JSON here")
    p_cd.set_defaults(func=_cmd_check_diff)

    p_cs = chk_sub.add_parser("selftest",
                              help="prove the engine catches a deliberately "
                                   "broken deduplicator")
    p_cs.add_argument("--seed", type=int, default=42,
                      help="scenario seed (default 42)")
    p_cs.add_argument("--out", default=None,
                      help="write the self-test report JSON here")
    p_cs.set_defaults(func=_cmd_check_selftest)

    p_cl = sub.add_parser("cluster",
                          help="rack-scale sharded simulation "
                               "(run / sweep; docs/CLUSTER.md)")
    cl_sub = p_cl.add_subparsers(dest="cluster_command", required=True)

    cluster_parent = argparse.ArgumentParser(add_help=False,
                                             parents=[_scenario_parent()])
    cluster_parent.add_argument("--spec", default=None,
                                help="ClusterConfig JSON file (overrides the "
                                     "inline scenario/fabric flags)")
    cluster_parent.add_argument("--hosts", type=int, default=4,
                                help="host count (default 4); the inline "
                                     "scenario flags become every host's "
                                     "template")
    cluster_parent.add_argument("--pattern", default="uniform",
                                choices=["uniform", "incast"],
                                help="flow destination pattern")
    cluster_parent.add_argument("--incast-target", type=int, default=0,
                                help="fan-in target host id (pattern=incast)")
    cluster_parent.add_argument("--spines", type=int, default=4,
                                help="fabric spine paths (default 4)")
    cluster_parent.add_argument("--base-latency", type=float, default=50.0,
                                help="minimum inter-host wire latency in us "
                                     "(the lookahead; default 50)")
    cluster_parent.add_argument("--spine-skew", type=float, default=0.0,
                                help="extra latency per spine index (us)")
    cluster_parent.add_argument("--jitter", type=float, default=0.0,
                                help="in-fabric lognormal jitter scale (us)")
    cluster_parent.add_argument("--steering", default="ecmp",
                                choices=["ecmp", "flowlet"],
                                help="fabric steering policy")
    cluster_parent.add_argument("--loss", type=float, default=0.0,
                                help="in-fabric per-packet drop probability")
    cluster_parent.add_argument("--epoch", type=float, default=None,
                                help="sync epoch in us (default: the "
                                     "lookahead, i.e. --base-latency)")
    cluster_parent.add_argument("--jobs", type=int, default=None,
                                help="worker processes (default: "
                                     "REPRO_CLUSTER_WORKERS or cpu count, "
                                     "capped at the host count; 1 = inline)")

    p_clr = cl_sub.add_parser("run", parents=[cluster_parent],
                              help="run one cluster scenario and print "
                                   "per-host + cluster-wide tails")
    p_clr.add_argument("--check", action="store_true",
                       help="arm per-host invariants plus the cross-shard "
                            "conservation check")
    p_clr.add_argument("--telemetry", default=None, metavar="DIR",
                       help="export per-host trace bundles under DIR/host<k> "
                            "with a cluster manifest on top")
    p_clr.add_argument("--json", action="store_true",
                       help="emit the schema-versioned cluster_result JSON "
                            "instead of terminal tables")
    p_clr.add_argument("--out", default=None,
                       help="write the ClusterResult JSON here")
    p_clr.set_defaults(func=_cmd_cluster_run, duration=20.0)

    p_cls = cl_sub.add_parser("sweep", parents=[cluster_parent],
                              help="sweep cluster axes (hosts, load, "
                                   "pattern, fabric.*) sequentially")
    p_cls.add_argument("--axis", action="append", default=[], dest="axes",
                       metavar="FIELD=V1,V2,...",
                       help="swept field (repeatable; scenario fields, "
                            "'hosts', 'pattern', 'seed', 'epoch', or "
                            "'fabric.<field>')")
    p_cls.add_argument("--name", default="cli-cluster-sweep",
                       help="sweep name recorded in the artifact")
    p_cls.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    p_cls.add_argument("--out", default=None,
                       help="write the cluster_sweep JSON artifact here")
    p_cls.set_defaults(func=_cmd_cluster_sweep, duration=20.0)

    p_demo = sub.add_parser("demo", help="quick single-vs-multipath comparison")
    p_demo.add_argument("--duration", type=float, default=100.0,
                        help="traffic duration in ms (default 100)")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "scheduler", None):
        # Environment (not a plumbed kwarg) so sweep/cluster worker
        # processes inherit the backend too.
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
