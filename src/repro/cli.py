"""Command-line interface.

``python -m repro <command>``:

* ``experiments`` -- list the reconstructed experiments (id + summary);
* ``run <ID ...>`` -- regenerate one or more experiments and print their
  tables (``--scale`` overrides ``REPRO_BENCH_SCALE``);
* ``policies`` -- list the path-selection policy registry;
* ``capacity [--chain NAME] [--size BYTES]`` -- print the calibrated
  single-path capacity used for load normalization;
* ``demo`` -- run the quickstart comparison (single vs adaptive k=4).

The CLI is a thin shell over :mod:`repro.bench`; everything it prints is
obtainable programmatically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_experiments(args) -> int:
    from repro.bench.figures import ALL_EXPERIMENTS

    for exp_id, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id:>3}  {doc}")
    return 0


def _cmd_run(args) -> int:
    from repro.bench.figures import ALL_EXPERIMENTS

    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    unknown = [e for e in args.ids if e.upper() not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in args.ids:
        fn = ALL_EXPERIMENTS[exp_id.upper()]
        text, _data = fn()
        print(text)
        print()
    return 0


def _cmd_policies(args) -> int:
    from repro.core.policies import POLICY_NAMES, make_policy
    import numpy as np

    rng = np.random.default_rng(0)
    for name in POLICY_NAMES:
        pol = make_policy(name, rng=rng)
        doc = (type(pol).__doc__ or "").strip().splitlines()[0]
        print(f"{name:>11}  {doc}")
    return 0


def _cmd_capacity(args) -> int:
    from repro.bench.scenarios import ScenarioConfig

    cfg = ScenarioConfig(chain=args.chain, packet_size=args.size)
    cap = cfg.path_capacity_pps()
    print(f"chain={args.chain} packet={args.size}B: "
          f"{cap:,.0f} pps/path ({cap * args.size * 8 / 1e9:.2f} Gbps/path)")
    return 0


def _cmd_demo(args) -> int:
    from repro import (
        MpdpConfig, MultipathDataPlane, PathConfig, PoissonSource,
        RngRegistry, SHARED_CORE, Simulator, Table,
    )

    table = Table(["config", "p50", "p99", "p99.9"],
                  title="demo: single vs multipath (latency, us)")
    for label, policy, k in [("single-path", "single", 1),
                             ("adaptive k=4", "adaptive", 4)]:
        sim = Simulator()
        rngs = RngRegistry(seed=7)
        host = MultipathDataPlane(
            sim,
            MpdpConfig(n_paths=k, policy=policy,
                       path=PathConfig(jitter=SHARED_CORE), warmup=10_000.0),
            rngs,
        )
        src = PoissonSource(sim, host.factory, host.input, rngs.stream("t"),
                            rate_pps=500_000, n_flows=256,
                            duration=args.duration * 1000.0)
        src.start()
        sim.run(until=args.duration * 1000.0 + 10_000.0)
        host.finalize()
        s = host.sink.recorder.summary()
        table.add_row([label, s.p50, s.p99, s.p999])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multipath intra-host data plane (CLUSTER'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reconstructed experiments"
                   ).set_defaults(func=_cmd_experiments)

    p_run = sub.add_parser("run", help="regenerate experiment(s) by id")
    p_run.add_argument("ids", nargs="+", help="experiment ids, e.g. F3 T1 A2")
    p_run.add_argument("--scale", type=float, default=None,
                       help="duration scale factor (overrides REPRO_BENCH_SCALE)")
    p_run.set_defaults(func=_cmd_run)

    sub.add_parser("policies", help="list path-selection policies"
                   ).set_defaults(func=_cmd_policies)

    p_cap = sub.add_parser("capacity", help="print calibrated path capacity")
    p_cap.add_argument("--chain", default="heavy")
    p_cap.add_argument("--size", type=int, default=1554)
    p_cap.set_defaults(func=_cmd_capacity)

    p_demo = sub.add_parser("demo", help="quick single-vs-multipath comparison")
    p_demo.add_argument("--duration", type=float, default=100.0,
                        help="traffic duration in ms (default 100)")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
