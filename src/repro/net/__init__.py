"""Packets, flows, traffic generation and workload models.

This subpackage contains everything about the *offered load*:

* :class:`~repro.net.packet.Packet` -- the unit every data-plane component
  operates on, with a five-tuple header and latency bookkeeping fields;
* :class:`~repro.net.flow.Flow` / :class:`~repro.net.flow.FlowTracker` --
  flow-level bookkeeping (flow completion times for experiment F7);
* :mod:`~repro.net.traffic` -- arrival-process generators (Poisson CBR,
  ON/OFF bursty, incast, trace replay) driven by pre-sampled numpy arrays;
* :mod:`~repro.net.workloads` -- empirical flow-size distributions
  (websearch / datamining) standard in the datacenter-latency literature;
* :mod:`~repro.net.topology` -- a minimal fabric-delay model so end-to-end
  experiments can place the virtualized host behind a network.
"""

from repro.net.packet import Packet, FiveTuple, PacketFactory, MTU, MIN_PACKET, HEADER_BYTES
from repro.net.flow import Flow, FlowTracker
from repro.net.traffic import (
    PoissonSource,
    CBRSource,
    OnOffSource,
    IncastSource,
    FlowSource,
    TraceReplaySource,
    SourceStats,
)
from repro.net.workloads import (
    EmpiricalCDF,
    WEBSEARCH_CDF,
    DATAMINING_CDF,
    ENTERPRISE_CDF,
    workload_by_name,
)
from repro.net.topology import FabricModel, HostLink
from repro.net.rpc import ClosedLoopRpcClient

__all__ = [
    "Packet",
    "FiveTuple",
    "PacketFactory",
    "MTU",
    "MIN_PACKET",
    "HEADER_BYTES",
    "Flow",
    "FlowTracker",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "IncastSource",
    "FlowSource",
    "TraceReplaySource",
    "SourceStats",
    "EmpiricalCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "ENTERPRISE_CDF",
    "workload_by_name",
    "FabricModel",
    "HostLink",
    "ClosedLoopRpcClient",
]
