"""Minimal fabric model: the network in front of the virtualized host.

The paper's subject is the *intra-host* ("last-mile") data plane, so the
fabric is deliberately simple: a fixed base propagation/switching delay
plus lognormal jitter, applied to packets before they reach the host NIC.
This is sufficient to show that last-mile latency dominates the tail even
behind a well-behaved fabric (experiment F1/F2).

:class:`HostLink` wraps a sink with serialization at a given line rate --
useful to model the physical NIC wire on either side.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.units import bps_to_bytes_per_us


class FabricModel:
    """Applies fabric transit delay to packets then forwards to a sink.

    Parameters
    ----------
    base_delay:
        Deterministic fabric traversal time (µs), e.g. a few switch hops.
    jitter_sigma:
        Sigma of the lognormal multiplicative jitter; 0 disables jitter.
    """

    __slots__ = ("sim", "sink", "base_delay", "jitter_sigma", "rng", "_batch", "_i", "forwarded")

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Packet], None],
        rng: Optional[np.random.Generator] = None,
        base_delay: float = 10.0,
        jitter_sigma: float = 0.0,
    ) -> None:
        if base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {base_delay}")
        self.sim = sim
        self.sink = sink
        self.base_delay = base_delay
        self.jitter_sigma = jitter_sigma
        self.rng = rng
        if jitter_sigma > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self._batch = np.empty(0)
        self._i = 0
        self.forwarded = 0

    def send(self, packet: Packet) -> None:
        """Accept a packet from a source and deliver it after fabric delay."""
        delay = self.base_delay
        if self.jitter_sigma > 0:
            if self._i >= len(self._batch):
                self._batch = self.rng.lognormal(0.0, self.jitter_sigma, 1024)
                self._i = 0
            delay *= float(self._batch[self._i])
            self._i += 1
        self.forwarded += 1
        self.sim.call_in(delay, self.sink, packet)

    __call__ = send


class HostLink:
    """Serializing link: packets occupy the wire for size/rate time.

    Models the physical cable into the NIC; back-to-back packets queue
    behind each other's serialization time (FIFO, infinite buffer -- drops
    belong to the NIC ring model, not the wire).
    """

    __slots__ = ("sim", "sink", "bytes_per_us", "_busy_until", "forwarded")

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None], rate_bps: float = 10e9) -> None:
        self.sim = sim
        self.sink = sink
        self.bytes_per_us = bps_to_bytes_per_us(rate_bps)
        self._busy_until = 0.0
        self.forwarded = 0

    def send(self, packet: Packet) -> None:
        """Queue the packet behind the wire's current occupancy."""
        now = self.sim.now
        start = now if now >= self._busy_until else self._busy_until
        done = start + packet.size / self.bytes_per_us
        self._busy_until = done
        self.forwarded += 1
        self.sim.call_at(done, self.sink, packet)

    __call__ = send

    @property
    def busy_until(self) -> float:
        """Time at which the wire drains (diagnostic)."""
        return self._busy_until
