"""The packet: unit of work for every data-plane component.

Packets are plain mutable objects with ``__slots__``; the per-packet hot
path never touches a dict.  Latency bookkeeping lives directly on the
packet (creation time, per-stage timestamps the components fill in) so the
sink can compute end-to-end and per-stage latency without a side table.

Sizes are in **bytes**, times in **microseconds** (the simulation-wide
convention).
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

#: Standard Ethernet MTU payload used for segmentation (bytes).
MTU = 1500
#: Minimum Ethernet frame (bytes).
MIN_PACKET = 64
#: Header overhead accounted per packet (Ethernet+IP+TCP, bytes).
HEADER_BYTES = 54


class FiveTuple(NamedTuple):
    """Classification key for a packet.

    Addresses are small integers (host indices) rather than dotted strings:
    the simulator never parses header bytes, and integer tuples hash fast.
    """

    src: int
    dst: int
    sport: int
    dport: int
    proto: int = 6  # TCP by default

    def reversed(self) -> "FiveTuple":
        """The reply direction of this tuple."""
        return FiveTuple(self.dst, self.src, self.dport, self.sport, self.proto)


class Packet:
    """A simulated packet.

    Attributes
    ----------
    pid:
        Globally unique packet id.
    ftuple:
        Five-tuple header used by classifiers and hash-based path selection.
    flow_id:
        Id of the owning :class:`~repro.net.flow.Flow` (or -1 for
        flow-less packet streams).
    seq:
        Per-flow sequence number (0-based); the reorder buffer restores
        this order.
    size:
        Wire size in bytes (payload + :data:`HEADER_BYTES`).
    t_created:
        Simulation time when the source emitted the packet.
    t_nic / t_enq / t_deq / t_done:
        Stage timestamps stamped by the NIC, the path queue, the poller,
        and the sink.  ``nan`` until stamped.
    path_id:
        Data-plane path the packet was steered to (-1 before selection).
    copy_of:
        For replicated packets, the pid of the primary copy; -1 otherwise.
    dropped:
        Set by whichever component dropped the packet, with a reason tag.
    """

    __slots__ = (
        "pid",
        "ftuple",
        "flow_id",
        "seq",
        "size",
        "priority",
        "t_created",
        "t_nic",
        "t_enq",
        "t_deq",
        "t_done",
        "path_id",
        "copy_of",
        "dropped",
        "meta",
    )

    NAN = float("nan")

    def __init__(
        self,
        pid: int,
        ftuple: FiveTuple,
        size: int,
        t_created: float,
        flow_id: int = -1,
        seq: int = 0,
        priority: int = 0,
    ) -> None:
        self.pid = pid
        self.ftuple = ftuple
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.priority = priority
        self.t_created = t_created
        self.t_nic = Packet.NAN
        self.t_enq = Packet.NAN
        self.t_deq = Packet.NAN
        self.t_done = Packet.NAN
        self.path_id = -1
        self.copy_of = -1
        self.dropped: Optional[str] = None
        self.meta: Any = None

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        """End-to-end latency (valid once ``t_done`` is stamped)."""
        return self.t_done - self.t_created

    @property
    def is_copy(self) -> bool:
        """True for a redundant replica created by the replicator."""
        return self.copy_of >= 0

    def clone(self, pid: int) -> "Packet":
        """Create a replica for redundant transmission.

        The replica shares header/flow identity and creation time (latency
        is measured from the *original* send instant) and records the
        primary's pid in ``copy_of``.
        """
        cp = Packet(
            pid,
            self.ftuple,
            self.size,
            self.t_created,
            flow_id=self.flow_id,
            seq=self.seq,
            priority=self.priority,
        )
        cp.t_nic = self.t_nic
        cp.copy_of = self.pid if self.copy_of < 0 else self.copy_of
        return cp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet pid={self.pid} flow={self.flow_id} seq={self.seq} "
            f"size={self.size} path={self.path_id}>"
        )


#: Maximum packets parked on a factory's free list (bounds pool memory).
POOL_MAX = 4096


class PacketFactory:
    """Allocates packets with unique, monotonically increasing pids.

    One factory per simulation keeps pid allocation centralized so that
    replicas (allocated by the core replicator) never collide with source
    packets.

    The factory also owns a bounded **free list** (``free``): terminal
    components (sink, suppression, drop accounting) may park dead packets
    there and sources reuse them instead of allocating.  Reused packets
    get a fresh pid and fully reset fields, so pooling is invisible to
    everything that handles packets by value.  Recycling is opt-in wiring
    (see ``MultipathDataPlane.enable_packet_recycling``): components that
    never recycle see an always-empty list and plain allocation.
    """

    __slots__ = ("_next_pid", "created", "free")

    def __init__(self) -> None:
        self._next_pid = 0
        #: Total packets ever allocated (including replicas and reuses).
        self.created = 0
        #: Free list for packet reuse (shared with recycling components).
        self.free: list = []

    def recycle(self, packet: Packet) -> None:
        """Park a dead packet for reuse (no-op when the pool is full)."""
        if len(self.free) < POOL_MAX:
            self.free.append(packet)

    def next_pid(self) -> int:
        """Reserve and return the next unique pid."""
        pid = self._next_pid
        self._next_pid += 1
        self.created += 1
        return pid

    def make(
        self,
        ftuple: FiveTuple,
        size: int,
        t_created: float,
        flow_id: int = -1,
        seq: int = 0,
        priority: int = 0,
    ) -> Packet:
        """Allocate a new packet."""
        return Packet(
            self.next_pid(), ftuple, size, t_created, flow_id, seq, priority
        )
