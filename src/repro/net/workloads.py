"""Empirical flow-size distributions.

The datacenter-latency literature evaluates on two canonical flow-size
CDFs, both heavy-tailed:

* **websearch** -- from the DCTCP production cluster measurement; most
  bytes come from medium flows, many latency-critical short flows.
* **datamining** -- from the VL2 measurement; extremely heavy-tailed (most
  flows are tiny, most bytes are in multi-MB flows).

The exact point sets below are the standard approximations used by public
simulation harnesses of pFabric/DCTCP follow-up work (the original papers
publish the plots, not the points); since this reproduction cannot match
absolute testbed numbers anyway, the *shape* (short-flow dominance and
heavy tails) is what matters.

:class:`EmpiricalCDF` supports O(1)-amortized vectorized sampling via
inverse-transform with log-linear interpolation between points.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


class EmpiricalCDF:
    """Piecewise-interpolated empirical CDF over positive sizes.

    Parameters
    ----------
    points:
        Sequence of ``(value, cumulative_probability)`` pairs, strictly
        increasing in both coordinates, ending with probability 1.0.
    log_interp:
        Interpolate in log-value space (appropriate for heavy-tailed size
        distributions); linear otherwise.
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        name: str = "custom",
        log_interp: bool = True,
    ) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        vals = np.array([p[0] for p in points], dtype=np.float64)
        probs = np.array([p[1] for p in points], dtype=np.float64)
        if np.any(vals <= 0):
            raise ValueError("CDF values must be positive")
        if np.any(np.diff(vals) <= 0) or np.any(np.diff(probs) < 0):
            raise ValueError("CDF points must be sorted and non-decreasing")
        if not 0.0 <= probs[0] <= 1.0 or abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("last CDF point must have probability 1.0")
        self.name = name
        self.log_interp = log_interp
        self._vals = vals
        self._probs = probs
        # Prepend a zero-probability anchor at the first value so that
        # sampling u < probs[0] returns the minimum value.
        if probs[0] > 0.0:
            self._vals = np.concatenate([[vals[0]], vals])
            self._probs = np.concatenate([[0.0], probs])
        self._log_vals = np.log(self._vals)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` sizes (float array; callers round as needed)."""
        u = rng.random(n)
        if self.log_interp:
            out = np.exp(np.interp(u, self._probs, self._log_vals))
        else:
            out = np.interp(u, self._probs, self._vals)
        return out

    def sample_int(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` integer sizes, at least 1."""
        return np.maximum(1, np.rint(self.sample(rng, n))).astype(np.int64)

    def mean(self, n_mc: int = 200_000, seed: int = 12345) -> float:
        """Monte-Carlo estimate of the distribution mean (cached draws)."""
        rng = np.random.default_rng(seed)
        return float(self.sample(rng, n_mc).mean())

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability ``q`` (same interpolation as sampling).

        ``q`` must be a finite number in ``[0, 1]`` (both endpoints
        included: 0 is the smallest tabulated size, 1 the largest);
        anything else -- including NaN, which would otherwise slip
        through comparisons -- raises ``ValueError`` naming the value.
        """
        q = float(q)
        if math.isnan(q) or not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.log_interp:
            return float(np.exp(np.interp(q, self._probs, self._log_vals)))
        return float(np.interp(q, self._probs, self._vals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EmpiricalCDF {self.name} ({len(self._vals)} points)>"


#: Web-search workload (DCTCP-style), sizes in bytes.
WEBSEARCH_CDF = EmpiricalCDF(
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.95),
        (20_000_000, 0.98),
        (30_000_000, 1.00),
    ],
    name="websearch",
)

#: Data-mining workload (VL2-style), sizes in bytes; extremely heavy tail.
DATAMINING_CDF = EmpiricalCDF(
    [
        (100, 0.10),
        (180, 0.20),
        (250, 0.30),
        (560, 0.40),
        (900, 0.50),
        (1_100, 0.60),
        (1_870, 0.70),
        (3_160, 0.80),
        (10_000, 0.85),
        (400_000, 0.90),
        (3_160_000, 0.95),
        (100_000_000, 0.98),
        (1_000_000_000, 1.00),
    ],
    name="datamining",
)

#: Enterprise/EDU-style mixed workload (moderate tail), sizes in bytes.
ENTERPRISE_CDF = EmpiricalCDF(
    [
        (250, 0.10),
        (500, 0.25),
        (1_000, 0.40),
        (2_000, 0.55),
        (5_000, 0.70),
        (20_000, 0.80),
        (100_000, 0.90),
        (500_000, 0.96),
        (2_000_000, 0.99),
        (10_000_000, 1.00),
    ],
    name="enterprise",
)

_WORKLOADS = {
    "websearch": WEBSEARCH_CDF,
    "datamining": DATAMINING_CDF,
    "enterprise": ENTERPRISE_CDF,
}


def workload_by_name(name: str) -> EmpiricalCDF:
    """Look up one of the built-in workload CDFs by name."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_WORKLOADS)}"
        ) from None


def short_flow_threshold(workload: str) -> int:
    """Size (bytes) below which a flow counts as 'short' in FCT analyses.

    100 KB is the conventional cut for websearch-like workloads; the
    datamining tail is so heavy that 10 KB separates the mice better.
    """
    return 10_000 if workload == "datamining" else 100_000
