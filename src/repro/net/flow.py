"""Flow-level bookkeeping.

A :class:`Flow` is a burst of ``size`` bytes segmented into MTU packets.
The :class:`FlowTracker` watches packet completions at the sink and records
flow completion times (FCT), the headline metric of experiment F7.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.net.packet import HEADER_BYTES, MTU, FiveTuple, Packet


class Flow:
    """One application-level transfer.

    Attributes
    ----------
    flow_id:
        Unique id.
    ftuple:
        Five-tuple shared by all packets of the flow.
    size:
        Application bytes to transfer.
    n_packets:
        Number of MTU-segmented packets.
    t_start:
        Time the first packet was emitted.
    t_end:
        Time the last packet was *delivered* (set by the tracker).
    """

    __slots__ = (
        "flow_id",
        "ftuple",
        "size",
        "n_packets",
        "t_start",
        "t_end",
        "delivered",
    )

    def __init__(self, flow_id: int, ftuple: FiveTuple, size: int, t_start: float) -> None:
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        self.flow_id = flow_id
        self.ftuple = ftuple
        self.size = int(size)
        self.n_packets = max(1, -(-self.size // MTU))  # ceil division
        self.t_start = t_start
        self.t_end: float = float("nan")
        #: Count of distinct sequence numbers delivered so far.
        self.delivered = 0

    @property
    def completed(self) -> bool:
        """True once every packet of the flow has been delivered."""
        return self.delivered >= self.n_packets

    @property
    def fct(self) -> float:
        """Flow completion time (nan until completed)."""
        return self.t_end - self.t_start

    def packet_sizes(self) -> List[int]:
        """Wire sizes of the flow's packets (last one may be short)."""
        sizes = [MTU + HEADER_BYTES] * (self.n_packets - 1)
        last = self.size - MTU * (self.n_packets - 1)
        sizes.append(last + HEADER_BYTES)
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.flow_id} size={self.size} pkts={self.n_packets}>"


class FlowTracker:
    """Observes packet deliveries and computes per-flow completion times.

    Duplicate deliveries of the same ``(flow_id, seq)`` -- which the
    redundancy policies produce by design -- are counted once.
    """

    __slots__ = ("flows", "_seen", "completed")

    def __init__(self) -> None:
        self.flows: Dict[int, Flow] = {}
        self._seen: Dict[int, set] = {}
        #: Flows completed, in completion order.
        self.completed: List[Flow] = []

    def register(self, flow: Flow) -> None:
        """Start tracking ``flow``; must be called before its packets arrive."""
        if flow.flow_id in self.flows:
            raise ValueError(f"flow {flow.flow_id} registered twice")
        self.flows[flow.flow_id] = flow
        self._seen[flow.flow_id] = set()

    def on_delivery(self, packet: Packet, now: float) -> Optional[Flow]:
        """Record a delivered packet; returns the flow if it just completed."""
        flow = self.flows.get(packet.flow_id)
        if flow is None:
            return None
        seen = self._seen[packet.flow_id]
        if packet.seq in seen:
            return None  # duplicate (redundant copy)
        seen.add(packet.seq)
        flow.delivered += 1
        if flow.completed:
            flow.t_end = now
            self.completed.append(flow)
            # Release the per-flow dedup set; the flow is done.
            del self._seen[packet.flow_id]
            return flow
        return None

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def fcts(self) -> np.ndarray:
        """Array of completion times for all completed flows."""
        return np.array([f.fct for f in self.completed], dtype=np.float64)

    def fcts_by_size(self, max_size: Optional[int] = None, min_size: int = 0) -> np.ndarray:
        """FCTs restricted to flows with ``min_size <= size <= max_size``."""
        hi = float("inf") if max_size is None else max_size
        return np.array(
            [f.fct for f in self.completed if min_size <= f.size <= hi],
            dtype=np.float64,
        )

    @property
    def incomplete(self) -> int:
        """Number of registered flows that have not completed."""
        return len(self.flows) - len(self.completed)
