"""Closed-loop RPC workload.

The open-loop sources in :mod:`repro.net.traffic` keep offering traffic
no matter how slow the system gets -- the standard methodology for
data-plane studies, but it overstates queue growth near saturation.
:class:`ClosedLoopRpcClient` models the other regime: ``concurrency``
outstanding requests, each new one issued only when a response returns
(think a fixed thread-pool RPC client).  Latency feedback throttles the
offered load, so the measured metric shifts from latency-at-offered-load
to **throughput-at-concurrency** plus per-request RTT.

The client targets a :class:`~repro.core.mpdp.MultipathDataPlane` whose
delivery hook calls :meth:`on_delivery`; an in-process "server" turns
each delivered request into a response after ``server_think`` µs,
re-injected through the same host (model of a loopback service) or a
second host (caller wires ``response_input``).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.metrics.collectors import LatencyRecorder
from repro.net.packet import FiveTuple, Packet, PacketFactory
from repro.sim.engine import Simulator

#: Flow-id offset distinguishing response packets from requests.
RESPONSE_FLOW_OFFSET = 1 << 20


class ClosedLoopRpcClient:
    """Fixed-concurrency request/response generator.

    Parameters
    ----------
    request_input / response_input:
        Callables receiving request packets (toward the server host) and
        response packets (back toward the client host).  For a loopback
        test both can be the same host's input.
    concurrency:
        Outstanding requests kept in flight.
    server_think:
        Server-side service time per request (µs) before the response is
        emitted.
    rpc_port:
        dport stamped on requests (responses carry it as sport).
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        request_input: Callable[[Packet], None],
        response_input: Callable[[Packet], None],
        rng: np.random.Generator,
        concurrency: int = 32,
        request_bytes: int = 300,
        response_bytes: int = 1200,
        server_think: float = 2.0,
        rpc_port: int = 9000,
        n_flows: int = 128,
        duration: float = float("inf"),
    ) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        if server_think < 0:
            raise ValueError("server_think must be >= 0")
        self.sim = sim
        self.factory = factory
        self.request_input = request_input
        self.response_input = response_input
        self.rng = rng
        self.concurrency = concurrency
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.server_think = server_think
        self.rpc_port = rpc_port
        self.n_flows = n_flows
        self.duration = duration
        self.rtt = LatencyRecorder(reservoir=50_000)
        self.issued = 0
        self.completed = 0
        self._inflight: Dict[tuple, float] = {}
        self._started = False
        self._t0 = 0.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Issue the initial window of requests."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        self._t0 = self.sim.now
        for _ in range(self.concurrency):
            self._issue()

    def _issue(self) -> None:
        if self.sim.now - self._t0 >= self.duration:
            return
        i = self.issued
        self.issued += 1
        flow = i % self.n_flows
        req = self.factory.make(
            FiveTuple(1, 2, 1024 + flow, self.rpc_port),
            self.request_bytes, self.sim.now,
            flow_id=flow, seq=i // self.n_flows, priority=1,
        )
        self._inflight[(flow, req.seq)] = self.sim.now
        self.request_input(req)

    # ------------------------------------------------------------------
    # Wire this to the server-side host's sink.on_delivery.
    def on_server_delivery(self, pkt: Packet) -> None:
        """Server app: answer delivered requests after think time."""
        if pkt.ftuple.dport != self.rpc_port:
            return
        resp = self.factory.make(
            pkt.ftuple.reversed(), self.response_bytes, self.sim.now,
            flow_id=pkt.flow_id + RESPONSE_FLOW_OFFSET, seq=pkt.seq,
            priority=1,
        )
        if self.server_think > 0:
            self.sim.call_in(self.server_think, self.response_input, resp)
        else:
            self.response_input(resp)

    # Wire this to the client-side host's sink.on_delivery.
    def on_client_delivery(self, pkt: Packet) -> None:
        """Client app: match responses, record RTT, keep the window full."""
        if pkt.ftuple.sport != self.rpc_port or pkt.flow_id < RESPONSE_FLOW_OFFSET:
            return
        key = (pkt.flow_id - RESPONSE_FLOW_OFFSET, pkt.seq)
        t0 = self._inflight.pop(key, None)
        if t0 is None:
            return
        self.completed += 1
        self.rtt.record(self.sim.now - t0, self.sim.now)
        self._issue()

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently outstanding."""
        return len(self._inflight)

    def throughput_rps(self) -> float:
        """Completed requests per second of simulated time."""
        elapsed = self.sim.now - self._t0
        return self.completed / elapsed * 1e6 if elapsed > 0 else float("nan")
