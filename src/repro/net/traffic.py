"""Arrival-process generators.

Every source is a simulation process that emits packets into a *sink*
callable (normally the data plane's ingress).  Random draws are
**pre-sampled in numpy batches** (inter-arrival times, sizes, flow picks)
rather than drawn one scalar at a time -- the vectorization idiom from the
HPC guides -- so the per-packet Python work is a tuple index plus the event
itself.

Sources share infrastructure through :class:`_BaseSource`:

* deterministic named RNG usage (callers pass a dedicated stream);
* per-source emission statistics (:class:`SourceStats`);
* pseudo-flow management so that hash/flowlet policies see realistic
  flow structure even for packet-level (non `FlowSource`) traffic.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.net.flow import Flow, FlowTracker
from repro.net.packet import HEADER_BYTES, MTU, FiveTuple, Packet, PacketFactory

#: Stage-timestamp placeholder for pooled packet resets.
_NAN = Packet.NAN
from repro.sim.engine import NORMAL, _SEQ_BITS, Simulator
from repro.units import US_PER_S, bps_to_bytes_per_us, pps_to_iat_us

#: Packed ordering key base for NORMAL-priority heap entries; hot ticks
#: push their re-arm entries directly (identical tuples to ``call_in``).
_NORMAL_KEY = NORMAL << _SEQ_BITS

#: Number of random variates pre-sampled per refill.
BATCH = 4096


class SourceStats:
    """Counters every source maintains."""

    __slots__ = ("packets", "bytes", "flows")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.flows = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SourceStats pkts={self.packets} bytes={self.bytes} flows={self.flows}>"


class _BaseSource:
    """Common machinery: pseudo-flows, sequence numbers, emission.

    Parameters
    ----------
    sim, factory, sink:
        Simulator, shared :class:`PacketFactory`, and the callable that
        receives each emitted packet.
    rng:
        Dedicated random stream for this source.
    n_flows:
        Size of the pseudo-flow pool packets are attributed to.
    flow_id_base:
        Flow ids are ``flow_id_base + flow_index``; give distinct bases to
        concurrent sources to avoid collisions.
    src, dst:
        Host indices stamped into the five-tuple.
    zipf_s:
        If > 0, pick pseudo-flows with Zipf(s) popularity (hash-collision
        stress); uniform otherwise.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        n_flows: int = 64,
        flow_id_base: int = 0,
        src: int = 0,
        dst: int = 1,
        priority: int = 0,
        zipf_s: float = 0.0,
    ) -> None:
        if n_flows <= 0:
            raise ValueError(f"n_flows must be positive, got {n_flows}")
        self.sim = sim
        self.factory = factory
        self.sink = sink
        self.rng = rng
        self.n_flows = n_flows
        self.flow_id_base = flow_id_base
        self.src = src
        self.dst = dst
        self.priority = priority
        self.stats = SourceStats()
        self._seq = [0] * n_flows
        self._tuples = [
            FiveTuple(src, dst, 1024 + i, 80) for i in range(n_flows)
        ]
        if zipf_s > 0.0:
            ranks = np.arange(1, n_flows + 1, dtype=np.float64)
            w = ranks ** (-zipf_s)
            self._flow_probs: Optional[np.ndarray] = w / w.sum()
        else:
            self._flow_probs = None
        # Batched flow picks as a plain Python list (converted once per
        # refill) so per-packet indexing yields Python ints.
        self._flow_picks: list = []
        self._flow_pick_i = 0
        # Resolve the sink back to a PhysicalNic when possible so _emit
        # can run the inlined rx fast path (one call fewer per packet).
        from repro.dataplane.nic import PhysicalNic  # local: import cycle

        if isinstance(sink, PhysicalNic):
            self._nic = sink
        elif getattr(sink, "__func__", None) is PhysicalNic.on_wire:
            self._nic = sink.__self__
        else:
            self._nic = None
        self.process = None  # set by start()

    # ------------------------------------------------------------------
    def start(self):
        """Begin emitting.

        Sources with a driving generator spawn it as a Process; the hot
        open-loop sources override :meth:`start` with a zero-allocation
        callback tick instead (no per-packet Timeout/Event objects).
        """
        self.process = self.sim.process(self._run())
        return self.process

    def _run(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # makes this a generator in subclass-less misuse

    # ------------------------------------------------------------------
    def _refill_flow_picks(self) -> list:
        """Draw the next batch of pseudo-flow picks (same draws as ever)."""
        if self._flow_probs is None:
            picks = self.rng.integers(0, self.n_flows, BATCH).tolist()
        else:
            picks = self.rng.choice(
                self.n_flows, size=BATCH, p=self._flow_probs
            ).tolist()
        self._flow_picks = picks
        self._flow_pick_i = 0
        return picks

    def _next_flow_index(self) -> int:
        """Pick the pseudo-flow for the next packet (batch-sampled)."""
        i = self._flow_pick_i
        picks = self._flow_picks
        if i >= len(picks):
            picks = self._refill_flow_picks()
            i = 0
        self._flow_pick_i = i + 1
        return picks[i]

    def _emit(self, size: int, flow_index: Optional[int] = None) -> Packet:
        """Create one packet on a pseudo-flow and hand it to the sink."""
        fi = flow_index
        if fi is None:
            i = self._flow_pick_i
            picks = self._flow_picks
            if i >= len(picks):
                picks = self._refill_flow_picks()
                i = 0
            self._flow_pick_i = i + 1
            fi = picks[i]
        factory = self.factory
        pid = factory._next_pid
        factory._next_pid = pid + 1
        factory.created += 1
        seqs = self._seq
        free = factory.free
        if free:
            # Pool hit: reset every field a fresh Packet would carry.
            pkt = free.pop()
            pkt.pid = pid
            pkt.ftuple = self._tuples[fi]
            pkt.flow_id = self.flow_id_base + fi
            pkt.seq = seqs[fi]
            pkt.size = size
            pkt.priority = self.priority
            pkt.t_created = self.sim._now
            pkt.t_nic = _NAN
            pkt.t_enq = _NAN
            pkt.t_deq = _NAN
            pkt.t_done = _NAN
            pkt.path_id = -1
            pkt.copy_of = -1
            pkt.dropped = None
            pkt.meta = None
        else:
            pkt = Packet(
                pid,
                self._tuples[fi],
                size,
                self.sim._now,
                self.flow_id_base + fi,
                seqs[fi],
                self.priority,
            )
        seqs[fi] += 1
        stats = self.stats
        stats.packets += 1
        stats.bytes += size
        nic = self._nic
        if nic is not None and self.sim._now >= nic._fault_until:
            # Inlined PhysicalNic.on_wire (no active drop burst); the
            # slow/faulted case falls back to the real method.
            sim = self.sim
            now = sim._now
            pkt.t_nic = now
            ring = nic._ring
            if len(ring) >= nic.ring_size:
                pkt.dropped = f"{nic.name}:ring-overflow"
                nic.dropped += 1
            else:
                nic.received += 1
                ring.append(pkt)
                if not nic._busy:
                    nic._busy = True
                    sim._seq = seq = sim._seq + 1
                    sim._push((now + nic.rx_cost, _NORMAL_KEY | seq,
                               nic._rx_done, ()))
        else:
            self.sink(pkt)
        return pkt


class CBRSource(_BaseSource):
    """Constant-bit-rate source: fixed inter-arrival, fixed size."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        rate_pps: float,
        size: int = MTU + HEADER_BYTES,
        duration: float = float("inf"),
        **kw,
    ) -> None:
        super().__init__(sim, factory, sink, rng, **kw)
        self.iat = pps_to_iat_us(rate_pps)
        self.size = int(size)
        self.duration = duration
        self._t0 = 0.0

    def start(self):
        self._t0 = self.sim.now
        self.sim.call_in(0.0, self._tick)
        return None

    def _tick(self) -> None:
        sim = self.sim
        if sim._now - self._t0 >= self.duration:
            return
        self._emit(self.size)
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + self.iat, _NORMAL_KEY | seq, self._tick, ()))


class PoissonSource(_BaseSource):
    """Poisson arrivals at ``rate_pps`` with fixed or sampled sizes.

    Parameters
    ----------
    size_sampler:
        Optional ``f(rng, n) -> int array`` drawing ``n`` packet sizes;
        fixed ``size`` otherwise.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        rate_pps: float,
        size: int = MTU + HEADER_BYTES,
        size_sampler: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
        duration: float = float("inf"),
        **kw,
    ) -> None:
        super().__init__(sim, factory, sink, rng, **kw)
        self.mean_iat = pps_to_iat_us(rate_pps)
        self.size = int(size)
        self.size_sampler = size_sampler
        self.duration = duration
        self._t0 = 0.0
        # Batched draws converted to Python scalars once per refill, so
        # the per-packet path never touches a numpy scalar.
        self._iats: list = []
        self._sizes: list = []
        self._i = 0

    def start(self):
        self._t0 = self.sim.now
        self.sim.call_in(0.0, self._tick)
        return None

    def _tick(self) -> None:
        sim = self.sim
        if sim._now - self._t0 >= self.duration:
            return
        i = self._i
        if i >= len(self._iats):
            self._iats = self.rng.exponential(self.mean_iat, BATCH).tolist()
            if self.size_sampler is not None:
                self._sizes = np.asarray(self.size_sampler(self.rng, BATCH)).tolist()
            i = 0
        size = self._sizes[i] if self.size_sampler is not None else self.size
        self._emit(size)
        self._i = i + 1
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + self._iats[i], _NORMAL_KEY | seq, self._tick, ()))


class OnOffSource(_BaseSource):
    """Markov-modulated ON/OFF bursty source.

    During an ON period (exponential, mean ``mean_on``) packets are emitted
    at ``peak_rate_pps`` with exponential spacing; OFF periods (mean
    ``mean_off``) are silent.  Average rate is
    ``peak * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        peak_rate_pps: float,
        mean_on: float,
        mean_off: float,
        size: int = MTU + HEADER_BYTES,
        duration: float = float("inf"),
        **kw,
    ) -> None:
        super().__init__(sim, factory, sink, rng, **kw)
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be > 0 and mean_off >= 0")
        self.peak_iat = pps_to_iat_us(peak_rate_pps)
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.size = int(size)
        self.duration = duration
        self._t0 = 0.0
        self._on_end = 0.0
        self._iats: list = []
        self._i = 0

    @property
    def mean_rate_pps(self) -> float:
        """Long-run average emission rate in packets/second."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty * US_PER_S / self.peak_iat

    def start(self):
        self._t0 = self.sim.now
        self.sim.call_in(0.0, self._begin_cycle)
        return None

    def _begin_cycle(self) -> None:
        sim = self.sim
        if sim.now - self._t0 >= self.duration:
            return
        on_len = float(self.rng.exponential(self.mean_on))
        self._on_end = sim.now + on_len
        # Emit with exponential spacing at peak rate until ON ends.
        self._iats = self.rng.exponential(self.peak_iat, BATCH).tolist()
        self._i = 0
        self._tick_on()

    def _tick_on(self) -> None:
        sim = self.sim
        if sim._now < self._on_end:
            self._emit(self.size)
            i = self._i
            if i >= len(self._iats):
                self._iats = self.rng.exponential(self.peak_iat, BATCH).tolist()
                i = 0
            self._i = i + 1
            sim._seq = seq = sim._seq + 1
            sim._push((sim._now + self._iats[i], _NORMAL_KEY | seq,
                       self._tick_on, ()))
            return
        if self.mean_off > 0:
            sim.call_in(float(self.rng.exponential(self.mean_off)), self._begin_cycle)
        else:
            self._begin_cycle()


class IncastSource(_BaseSource):
    """Synchronized fan-in bursts (partition/aggregate pattern).

    Every ``epoch`` µs, ``fan_in`` workers each deliver a ``burst_pkts``
    packet response nearly simultaneously (small per-packet spacing models
    NIC serialization at the senders).
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        fan_in: int = 16,
        burst_pkts: int = 8,
        epoch: float = 1000.0,
        spacing: float = 0.3,
        size: int = MTU + HEADER_BYTES,
        jitter: float = 5.0,
        duration: float = float("inf"),
        **kw,
    ) -> None:
        kw.setdefault("n_flows", max(fan_in, 1))
        super().__init__(sim, factory, sink, rng, **kw)
        self.fan_in = fan_in
        self.burst_pkts = burst_pkts
        self.epoch = epoch
        self.spacing = spacing
        self.size = int(size)
        self.jitter = jitter
        self.duration = duration
        self._t0 = 0.0

    def start(self):
        self._t0 = self.sim.now
        self.sim.call_in(0.0, self._tick)
        return None

    def _tick(self) -> None:
        sim = self.sim
        if sim.now - self._t0 >= self.duration:
            return
        # Each worker's burst starts with a small random skew.
        skews = self.rng.uniform(0.0, self.jitter, self.fan_in)
        for w in range(self.fan_in):
            for k in range(self.burst_pkts):
                sim.call_in(
                    float(skews[w]) + k * self.spacing,
                    self._emit,
                    self.size,
                    w % self.n_flows,
                )
        sim.call_in(self.epoch, self._tick)


class FlowSource(_BaseSource):
    """Poisson flow arrivals with empirically distributed sizes.

    Each flow is segmented into MTU packets paced at ``pacing_bps`` and
    registered with a :class:`FlowTracker` so FCT can be measured.  Flow
    ids are globally unique per source.
    """

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        flow_rate_fps: float,
        size_cdf,
        tracker: Optional[FlowTracker] = None,
        pacing_bps: float = 10e9,
        max_flow_pkts: int = 10_000,
        duration: float = float("inf"),
        **kw,
    ) -> None:
        super().__init__(sim, factory, sink, rng, **kw)
        self.mean_flow_iat = US_PER_S / flow_rate_fps
        self.size_cdf = size_cdf
        self.tracker = tracker
        self.pacing_Bpu = bps_to_bytes_per_us(pacing_bps)
        self.max_flow_pkts = max_flow_pkts
        self.duration = duration
        self._next_flow_id = self.flow_id_base
        self._t0 = 0.0
        self._iats: list = []
        self._sizes: list = []
        self._i = 0

    def start(self):
        self._t0 = self.sim.now
        self.sim.call_in(0.0, self._tick)
        return None

    def _tick(self) -> None:
        sim = self.sim
        if sim.now - self._t0 >= self.duration:
            return
        i = self._i
        if i >= len(self._iats):
            self._iats = self.rng.exponential(self.mean_flow_iat, BATCH).tolist()
            self._sizes = np.asarray(
                self.size_cdf.sample_int(self.rng, BATCH)
            ).tolist()
            i = 0
        self._launch_flow(self._sizes[i])
        self._i = i + 1
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + self._iats[i], _NORMAL_KEY | seq, self._tick, ()))

    def _launch_flow(self, size: int) -> Flow:
        """Register one flow and schedule its paced packet emissions."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        sport = 1024 + (flow_id % 50_000)
        ftuple = FiveTuple(self.src, self.dst, sport, 80)
        flow = Flow(flow_id, ftuple, size, self.sim.now)
        if flow.n_packets > self.max_flow_pkts:
            # Truncate absurdly large flows to bound experiment runtime;
            # FCT analyses exclude them (they are in the >max bucket).
            flow = Flow(flow_id, ftuple, self.max_flow_pkts * MTU, self.sim.now)
        if self.tracker is not None:
            self.tracker.register(flow)
        self.stats.flows += 1
        offset = 0.0
        for seq, psize in enumerate(flow.packet_sizes()):
            self.sim.call_in(offset, self._emit_flow_packet, flow, seq, psize)
            offset += psize / self.pacing_Bpu
        return flow

    def _emit_flow_packet(self, flow: Flow, seq: int, size: int) -> None:
        factory = self.factory
        pid = factory._next_pid
        factory._next_pid = pid + 1
        factory.created += 1
        free = factory.free
        if free:
            pkt = free.pop()
            pkt.pid = pid
            pkt.ftuple = flow.ftuple
            pkt.flow_id = flow.flow_id
            pkt.seq = seq
            pkt.size = size
            pkt.priority = self.priority
            pkt.t_created = self.sim._now
            pkt.t_nic = _NAN
            pkt.t_enq = _NAN
            pkt.t_deq = _NAN
            pkt.t_done = _NAN
            pkt.path_id = -1
            pkt.copy_of = -1
            pkt.dropped = None
            pkt.meta = None
        else:
            pkt = Packet(
                pid, flow.ftuple, size, self.sim._now, flow.flow_id, seq,
                self.priority
            )
        stats = self.stats
        stats.packets += 1
        stats.bytes += size
        nic = self._nic
        if nic is not None and self.sim._now >= nic._fault_until:
            # Inlined PhysicalNic.on_wire (see _emit).
            sim = self.sim
            now = sim._now
            pkt.t_nic = now
            ring = nic._ring
            if len(ring) >= nic.ring_size:
                pkt.dropped = f"{nic.name}:ring-overflow"
                nic.dropped += 1
            else:
                nic.received += 1
                ring.append(pkt)
                if not nic._busy:
                    nic._busy = True
                    sim._seq = seq = sim._seq + 1
                    sim._push((now + nic.rx_cost, _NORMAL_KEY | seq,
                               nic._rx_done, ()))
        else:
            self.sink(pkt)


class TraceReplaySource(_BaseSource):
    """Replay explicit ``(time, size)`` arrays (times relative to start)."""

    def __init__(
        self,
        sim: Simulator,
        factory: PacketFactory,
        sink: Callable[[Packet], None],
        rng: np.random.Generator,
        times: Sequence[float],
        sizes: Sequence[int],
        **kw,
    ) -> None:
        super().__init__(sim, factory, sink, rng, **kw)
        times = np.asarray(times, dtype=np.float64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if len(times) != len(sizes):
            raise ValueError("times and sizes must have equal length")
        if np.any(np.diff(times) < 0):
            raise ValueError("trace times must be non-decreasing")
        self.times = times
        self.sizes = sizes

    def _run(self):
        prev = 0.0
        for t, s in zip(self.times, self.sizes):
            gap = float(t) - prev
            if gap > 0:
                yield self.sim.timeout(gap)
            prev = float(t)
            self._emit(int(s))
        return self.stats
