"""Rack fabric: the multipath network *between* virtualized hosts.

:class:`repro.net.topology.FabricModel` models the fabric as one latency
distribution in front of a single host; this module models it as a
**topology** -- ``n_spines`` parallel spine paths between every host
pair, each with its own latency -- plus the steering policy that picks a
spine per packet (ECMP flow hashing or flowlet switching).  Fabric
multipath composes with the intra-host ("last-mile") multipath data
plane: a packet crosses *two* independent multipath layers before it is
delivered, which is exactly the rack-scale setting of the source paper's
datacenter context (see docs/CLUSTER.md).

The latency model is deliberately bounded below::

    delay = base_latency + spine * spine_skew + jitter      (jitter >= 0)

so ``base_latency`` is a hard minimum wire latency between any two
hosts.  That bound is load-bearing: the sharded cluster engine uses it
as the **conservative lookahead** of its epoch synchronization protocol
(a cross-host packet sent at time ``t`` can never arrive before
``t + base_latency``, so shards simulating ``[T, T + base_latency)``
independently can never miss an incoming event).

Determinism: spine choice, jitter, and loss draws for packets leaving a
host all come from that host's own named RNG stream, so a host's fabric
behaviour is a pure function of (cluster seed, host id) -- never of how
hosts are packed onto workers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Steering policies the fabric understands.
STEERING_KINDS = ("ecmp", "flowlet")


def _mix64(*parts: int) -> int:
    """Deterministic integer hash (splitmix64 finalizer over the parts).

    Used for ECMP flow hashing: stable across processes and platforms
    (unlike ``hash()``, whose value for str/bytes is salted per process).
    """
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h = (h ^ (p & 0xFFFFFFFFFFFFFFFF)) * 0xBF58476D1CE4E5B9 % (1 << 64)
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB % (1 << 64)
        h ^= h >> 31
    return h


@dataclass
class FabricConfig:
    """Topology + steering policy of the inter-host fabric.

    Attributes
    ----------
    n_spines:
        Parallel spine paths between every host pair (ECMP width).
    base_latency:
        Minimum one-way host-to-host latency (µs).  This is the cluster
        engine's conservative lookahead; every spine delay is >= it.
    spine_skew:
        Extra deterministic latency per spine index (µs): spine ``s``
        costs ``base_latency + s * spine_skew``.  Nonzero skew makes the
        spine choice visible in the tail.
    jitter_scale / jitter_sigma:
        Additive lognormal in-fabric jitter: each packet adds
        ``jitter_scale * lognormal(0, jitter_sigma)`` µs (0 disables).
        Additive-only, so the ``base_latency`` lower bound holds.
    steering:
        ``"ecmp"`` (per-flow hash, sticky) or ``"flowlet"`` (re-pick a
        spine when a flow pauses longer than ``flowlet_gap``).
    flowlet_gap:
        Idle gap (µs) after which a flowlet boundary lets the flow
        switch spines.
    loss_prob:
        Per-packet in-fabric drop probability.  Lost packets are still
        *sent* as envelopes and accounted as fabric drops at the
        receiver, so cross-shard conservation stays exactly checkable.
    """

    n_spines: int = 4
    base_latency: float = 50.0
    spine_skew: float = 0.0
    jitter_scale: float = 0.0
    jitter_sigma: float = 0.5
    steering: str = "ecmp"
    flowlet_gap: float = 100.0
    loss_prob: float = 0.0

    # -- contract ------------------------------------------------------
    def min_latency(self) -> float:
        """The conservative lookahead: no envelope arrives sooner."""
        return self.base_latency

    def validate(self) -> "FabricConfig":
        """Check every field, raising ``ValueError`` with an actionable
        message on the first problem.  Returns ``self`` for chaining."""
        if self.n_spines < 1:
            raise ValueError(f"n_spines must be >= 1, got {self.n_spines}")
        if self.base_latency <= 0:
            raise ValueError(
                f"base_latency must be positive (µs): it is the cluster "
                f"lookahead, got {self.base_latency}"
            )
        if self.spine_skew < 0:
            raise ValueError(f"spine_skew must be >= 0, got {self.spine_skew}")
        if self.jitter_scale < 0 or self.jitter_sigma < 0:
            raise ValueError(
                f"jitter_scale/jitter_sigma must be >= 0, got "
                f"{self.jitter_scale}/{self.jitter_sigma}"
            )
        if self.steering not in STEERING_KINDS:
            raise ValueError(
                f"unknown steering {self.steering!r}; "
                f"available: {', '.join(STEERING_KINDS)}"
            )
        if self.flowlet_gap <= 0:
            raise ValueError(
                f"flowlet_gap must be positive (µs), got {self.flowlet_gap}"
            )
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(
                f"loss_prob must be in [0, 1), got {self.loss_prob}"
            )
        return self

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        from repro import schemas

        out = {"schema_version": schemas.version_for("fabric_config")}
        out.update({f.name: getattr(self, f.name)
                    for f in dataclasses.fields(self)})
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FabricConfig":
        """Build a config from :meth:`to_dict`-shaped (JSON) data."""
        kw = dict(data)
        kw.pop("schema_version", None)
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kw) - names
        if unknown:
            raise ValueError(
                f"unknown FabricConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(names)}"
            )
        return cls(**kw)


class FabricSteering:
    """Per-source-host steering state: spine choice + delay + loss draws.

    One instance lives inside each host's cluster router.  All
    randomness comes from the host's own ``cluster.fabric`` stream, so
    the envelopes a host emits are independent of shard placement.
    """

    __slots__ = ("config", "rng", "_flowlets", "by_spine", "_jitter", "_ji")

    def __init__(self, config: FabricConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self.rng = rng
        #: flow key -> [spine, last_send_time] (flowlet switching only).
        self._flowlets: Dict[Tuple, list] = {}
        #: spine index -> packets steered (diagnostics / C1 table).
        self.by_spine: Dict[int, int] = {s: 0 for s in range(config.n_spines)}
        self._jitter = np.empty(0)
        self._ji = 0

    def transit(self, src_host: int, flow_id: int, now: float
                ) -> Tuple[int, float, bool]:
        """Steer one packet: returns ``(spine, delay_us, lost)``.

        ``delay_us >= config.base_latency`` always (the lookahead
        contract); ``lost`` marks an in-fabric drop the receiver must
        account for.
        """
        cfg = self.config
        if cfg.steering == "flowlet":
            key = (src_host, flow_id)
            state = self._flowlets.get(key)
            if state is None or now - state[1] > cfg.flowlet_gap:
                spine = int(self.rng.integers(cfg.n_spines))
                self._flowlets[key] = [spine, now]
                state = self._flowlets[key]
            else:
                spine = state[0]
            state[1] = now
        else:  # ecmp: sticky per-flow hash
            spine = _mix64(src_host, flow_id) % cfg.n_spines
        delay = cfg.base_latency + spine * cfg.spine_skew
        if cfg.jitter_scale > 0:
            if self._ji >= len(self._jitter):
                self._jitter = self.rng.lognormal(0.0, cfg.jitter_sigma, 512)
                self._ji = 0
            delay += cfg.jitter_scale * float(self._jitter[self._ji])
            self._ji += 1
        lost = bool(cfg.loss_prob > 0.0
                    and self.rng.random() < cfg.loss_prob)
        self.by_spine[spine] += 1
        return spine, delay, lost
