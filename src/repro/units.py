"""Unit conventions and conversion helpers.

Simulation-wide conventions:

* **time** -- microseconds (µs)
* **size** -- bytes
* **rate** -- user-facing APIs accept packets/second (pps) or bits/second
  (bps) and convert internally.

These helpers keep conversion factors out of model code.
"""

from __future__ import annotations

#: Microseconds per second.
US_PER_S = 1_000_000.0
#: Nanoseconds per microsecond.
NS_PER_US = 1_000.0


def pps_to_iat_us(rate_pps: float) -> float:
    """Mean inter-arrival time (µs) for a packet rate in packets/second."""
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    return US_PER_S / rate_pps


def bps_to_bytes_per_us(rate_bps: float) -> float:
    """Convert a bit rate to bytes per microsecond."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return rate_bps / 8.0 / US_PER_S


def serialization_us(size_bytes: float, rate_bps: float) -> float:
    """Time (µs) to serialize ``size_bytes`` at ``rate_bps``."""
    return size_bytes / bps_to_bytes_per_us(rate_bps)


def gbps(x: float) -> float:
    """Gigabits/second to bits/second."""
    return x * 1e9


def mbps(x: float) -> float:
    """Megabits/second to bits/second."""
    return x * 1e6


def ms(x: float) -> float:
    """Milliseconds to microseconds."""
    return x * 1_000.0


def seconds(x: float) -> float:
    """Seconds to microseconds."""
    return x * US_PER_S
