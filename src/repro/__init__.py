"""repro -- multipath intra-host data plane for tail-latency mitigation.

Reproduction of *"Last-mile Matters: Mitigating the Tail Latency of
Virtualized Networks with Multipath Data Plane"* (CLUSTER 2022) as a
discrete-event simulation library.  See DESIGN.md for the system
inventory and the source-text caveat, and EXPERIMENTS.md for measured
results.

Quickstart -- :func:`run` is the public one-call experiment runner::

    import repro

    result = repro.run(policy="adaptive", n_paths=4, load=0.7)
    print(result.summary)          # latency percentiles (µs)

and :func:`repro.sweep.run_sweep` fans a declarative grid of such runs
across a worker pool (see docs/SWEEPS.md).  The composable layer is
still fully public when an experiment needs custom wiring::

    from repro import (
        Simulator, RngRegistry, MultipathDataPlane, MpdpConfig,
        PathConfig, SHARED_CORE, PoissonSource,
    )

    sim = Simulator()
    rngs = RngRegistry(seed=1)
    cfg = MpdpConfig(n_paths=4, policy="adaptive",
                     path=PathConfig(jitter=SHARED_CORE))
    host = MultipathDataPlane(sim, cfg, rngs)
    src = PoissonSource(sim, host.factory, host.input,
                        rngs.stream("traffic"), rate_pps=400_000)
    src.start()
    sim.run(until=200_000.0)   # 200 ms
    host.finalize()
    print(host.sink.recorder.summary())
"""

from repro.sim import Simulator, RngRegistry
from repro.net import (
    Packet,
    FiveTuple,
    PacketFactory,
    Flow,
    FlowTracker,
    PoissonSource,
    CBRSource,
    OnOffSource,
    IncastSource,
    FlowSource,
    TraceReplaySource,
    EmpiricalCDF,
    WEBSEARCH_CDF,
    DATAMINING_CDF,
    ENTERPRISE_CDF,
    workload_by_name,
    FabricModel,
    HostLink,
    ClosedLoopRpcClient,
)
from repro.elements import Chain, Element, ElementGraph, standard_chain, STANDARD_CHAINS
from repro.dataplane import (
    DataPath,
    VCpu,
    JitterParams,
    DEDICATED_CORE,
    SHARED_CORE,
    CONTENDED_CORE,
    NoisyNeighbor,
    InterferenceSchedule,
    DeliverySink,
)
from repro.dataplane.path import PathConfig, QDISC_REGISTRY
from repro.core import (
    MultipathDataPlane,
    MpdpConfig,
    Policy,
    make_policy,
    POLICY_NAMES,
    POLICY_REGISTRY,
    StragglerDetector,
    ReorderBuffer,
    FlowletTable,
)
from repro.metrics import (
    AvailabilityTracker,
    LatencyRecorder,
    LatencySummary,
    summarize,
    Table,
    TimeSeries,
)
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    StochasticFaultSpec,
    FAULT_KINDS,
)
from repro.bench.scenarios import ScenarioConfig, SimulationResult
from repro.obs import Telemetry
from repro.slo import SloAutotuner, SloObjective, SloSpec, SloTracker
from repro.sweep import (
    Axis,
    CellResult,
    SweepSpec,
    SweepResult,
    run_sweep,
)

__version__ = "1.2.0"


def run(config=None, *, telemetry=None, faults=None, slo=None, **overrides):
    """Run one experiment and return its :class:`SimulationResult`.

    The unified single-scenario entry point: every example, figure and
    sweep cell reduces to this call.  Pass a ready
    :class:`ScenarioConfig`, keyword overrides for one, or both (the
    overrides are applied on top of the config)::

        result = repro.run(policy="adaptive", n_paths=4, load=0.7)
        result = repro.run(cfg, seed=7)

    ``telemetry`` (a :class:`Telemetry`) instruments the run with stage
    spans, metric time series and instant events; the simulated result
    is bit-identical with or without it (it is an observation, not a
    config knob)::

        tel = repro.Telemetry()
        result = repro.run(policy="spray", load=0.8, telemetry=tel)
        print(tel.breakdown_table().render())
        tel.export("trace-out/")

    ``faults`` (a :class:`FaultSchedule`) installs a fault-injection
    schedule for this run, overriding ``config.faults``; it is
    equivalent to -- and stored as -- the config field, so results and
    cache keys treat it as part of the scenario::

        sched = repro.FaultSchedule().crash(path=1, at=30_000, duration=20_000)
        result = repro.run(policy="adaptive", load=0.6, faults=sched)

    ``slo`` (an :class:`SloSpec`) declares service-level objectives the
    run is measured against -- and, with ``autotune=True``, armed with
    the online autotuner that scales paths/replication/flowlet timeout
    to meet them.  Like ``faults`` it is stored as the config field, so
    results and cache keys treat it as part of the scenario; the result
    gains an ``slo_report`` (see docs/SLO.md)::

        spec = repro.SloSpec(objectives=("p99 <= 800us",), autotune=True)
        result = repro.run(policy="adaptive", load=0.6, slo=spec)
        print(result.slo_report["attainment"])

    The config is validated up front (:meth:`ScenarioConfig.validate`),
    so unknown policy/chain/traffic names and non-positive knobs fail
    with actionable messages.  Prefer this over the deprecated
    ``repro.bench.scenarios.simulate`` -- that module is the internal
    engine room and its import path is not a stability promise.
    """
    import dataclasses as _dc

    from repro.bench.scenarios import run_scenario

    if config is None:
        config = ScenarioConfig(**overrides)
    elif overrides:
        config = _dc.replace(config, **overrides)
    if faults is not None:
        config = _dc.replace(config, faults=faults)
    if slo is not None:
        config = _dc.replace(config, slo=slo)
    return run_scenario(config, telemetry=telemetry)

__all__ = [
    "Simulator",
    "RngRegistry",
    "Packet",
    "FiveTuple",
    "PacketFactory",
    "Flow",
    "FlowTracker",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "IncastSource",
    "FlowSource",
    "TraceReplaySource",
    "EmpiricalCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "ENTERPRISE_CDF",
    "workload_by_name",
    "FabricModel",
    "HostLink",
    "Chain",
    "Element",
    "ElementGraph",
    "standard_chain",
    "STANDARD_CHAINS",
    "DataPath",
    "PathConfig",
    "QDISC_REGISTRY",
    "VCpu",
    "JitterParams",
    "DEDICATED_CORE",
    "SHARED_CORE",
    "CONTENDED_CORE",
    "NoisyNeighbor",
    "InterferenceSchedule",
    "DeliverySink",
    "MultipathDataPlane",
    "MpdpConfig",
    "Policy",
    "make_policy",
    "POLICY_NAMES",
    "POLICY_REGISTRY",
    "StragglerDetector",
    "ReorderBuffer",
    "FlowletTable",
    "LatencyRecorder",
    "LatencySummary",
    "summarize",
    "Table",
    "TimeSeries",
    "AvailabilityTracker",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "StochasticFaultSpec",
    "FAULT_KINDS",
    "ClosedLoopRpcClient",
    "ScenarioConfig",
    "SimulationResult",
    "Telemetry",
    "SloSpec",
    "SloObjective",
    "SloTracker",
    "SloAutotuner",
    "run",
    "Axis",
    "SweepSpec",
    "SweepResult",
    "CellResult",
    "run_sweep",
    "__version__",
]
