"""repro -- multipath intra-host data plane for tail-latency mitigation.

Reproduction of *"Last-mile Matters: Mitigating the Tail Latency of
Virtualized Networks with Multipath Data Plane"* (CLUSTER 2022) as a
discrete-event simulation library.  See DESIGN.md for the system
inventory and the source-text caveat, and EXPERIMENTS.md for measured
results.

Quickstart -- :func:`run` is the public one-call experiment runner::

    import repro

    result = repro.run(policy="adaptive", n_paths=4, load=0.7)
    print(result.summary)          # latency percentiles (µs)

and :func:`repro.sweep.run_sweep` fans a declarative grid of such runs
across a worker pool (see docs/SWEEPS.md).  For rack-scale experiments,
:func:`run` also accepts a :class:`ClusterConfig` -- N hosts behind a
multipath fabric, sharded across a worker pool with conservative
lookahead synchronization (see docs/CLUSTER.md)::

    cluster = repro.ClusterConfig.uniform_hosts(
        8, repro.ScenarioConfig(policy="adaptive", load=0.7))
    cres = repro.run(cluster, repro.RunOptions(workers=4))
    print(cres.summary)            # cluster-wide percentiles (µs)

This module is the frozen v1 public surface: every name in ``__all__``
follows the deprecation policy in docs/API.md (one minor release with a
warning before removal; removals only on a major bump).  The composable
layer is still fully public when an experiment needs custom wiring::

    from repro import (
        Simulator, RngRegistry, MultipathDataPlane, MpdpConfig,
        PathConfig, SHARED_CORE, PoissonSource,
    )

    sim = Simulator()
    rngs = RngRegistry(seed=1)
    cfg = MpdpConfig(n_paths=4, policy="adaptive",
                     path=PathConfig(jitter=SHARED_CORE))
    host = MultipathDataPlane(sim, cfg, rngs)
    src = PoissonSource(sim, host.factory, host.input,
                        rngs.stream("traffic"), rate_pps=400_000)
    src.start()
    sim.run(until=200_000.0)   # 200 ms
    host.finalize()
    print(host.sink.recorder.summary())
"""

from repro.sim import Simulator, RngRegistry
from repro.net import (
    Packet,
    FiveTuple,
    PacketFactory,
    Flow,
    FlowTracker,
    PoissonSource,
    CBRSource,
    OnOffSource,
    IncastSource,
    FlowSource,
    TraceReplaySource,
    EmpiricalCDF,
    WEBSEARCH_CDF,
    DATAMINING_CDF,
    ENTERPRISE_CDF,
    workload_by_name,
    FabricModel,
    HostLink,
    ClosedLoopRpcClient,
)
from repro.elements import Chain, Element, ElementGraph, standard_chain, STANDARD_CHAINS
from repro.dataplane import (
    DataPath,
    VCpu,
    JitterParams,
    DEDICATED_CORE,
    SHARED_CORE,
    CONTENDED_CORE,
    NoisyNeighbor,
    InterferenceSchedule,
    DeliverySink,
)
from repro.dataplane.path import PathConfig, QDISC_REGISTRY
from repro.core import (
    MultipathDataPlane,
    MpdpConfig,
    Policy,
    make_policy,
    POLICY_NAMES,
    POLICY_REGISTRY,
    StragglerDetector,
    ReorderBuffer,
    FlowletTable,
)
from repro.metrics import (
    AvailabilityTracker,
    LatencyRecorder,
    LatencySummary,
    summarize,
    Table,
    TimeSeries,
)
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    StochasticFaultSpec,
    FAULT_KINDS,
)
from repro.bench.scenarios import ScenarioConfig, SimulationResult
from repro.check import CheckSpec, InvariantEngine, InvariantViolation
from repro.options import RunOptions
from repro import schemas
from repro.obs import Telemetry
from repro.obs.forensics import ForensicsSpec
from repro.slo import SloAutotuner, SloObjective, SloSpec, SloTracker
from repro.sweep import (
    Axis,
    CellResult,
    SweepSpec,
    SweepResult,
    run_sweep,
)
from repro.net.fabric import FabricConfig
from repro.cluster import (
    ClusterConfig,
    ClusterResult,
    HostConfig,
    run_cluster,
)

__version__ = "2.0.0"

#: Legacy-kwarg deprecation fired already?  Module-level so sweeps and
#: loops hitting the shim thousands of times warn exactly once per
#: process (same contract as repro.bench.scenarios._simulate_warned).
_run_kwargs_warned = False


def run(config=None, options=None, *, telemetry=None, faults=None,
        slo=None, **overrides):
    """Run one experiment and return its :class:`SimulationResult`.

    The unified single-scenario entry point: every example, figure and
    sweep cell reduces to this call.  Pass a ready
    :class:`ScenarioConfig`, keyword overrides for one, or both (the
    overrides are applied on top of the config)::

        result = repro.run(policy="adaptive", n_paths=4, load=0.7)
        result = repro.run(cfg, seed=7)

    Everything orthogonal to the scenario -- observations and harness
    toggles -- rides in a :class:`RunOptions`::

        opts = repro.RunOptions(telemetry=repro.Telemetry(), check=True)
        result = repro.run(cfg, opts)
        print(result.check_report["ok"])

    * ``options.telemetry`` (a :class:`Telemetry`) instruments the run
      with stage spans, metric time series and instant events; the
      simulated result is bit-identical with or without it.
    * ``options.faults`` (a :class:`FaultSchedule`) installs a
      fault-injection schedule, folded into -- and stored as --
      ``config.faults``, so results and cache keys treat it as part of
      the scenario.
    * ``options.slo`` (an :class:`SloSpec`) declares service-level
      objectives, folded into ``config.slo`` the same way; the result
      gains an ``slo_report`` (see docs/SLO.md).
    * ``options.check`` (``True`` or a :class:`CheckSpec`) arms the
      runtime invariant engine; the result gains a ``check_report``
      (see docs/CHECKING.md).
    * ``options.forensics`` (``True`` or a :class:`ForensicsSpec`) runs
      post-run tail attribution; the result gains a ``forensics_report``
      (see docs/FORENSICS.md).  Attaches a default :class:`Telemetry`
      when none was passed.
    * ``options.recycle=False`` disables terminal-packet recycling (for
      hooks that retain delivered packets).

    ``run`` also dispatches on the config kind: pass a
    :class:`ClusterConfig` and the rack-scale sharded engine
    (:func:`repro.cluster.run_cluster`) runs it, returning a
    :class:`ClusterResult` instead::

        cluster = repro.ClusterConfig.uniform_hosts(8, load=...)
        result = repro.run(cluster, repro.RunOptions(workers=4))

    For cluster runs ``options.workers`` picks the worker-pool size
    (an execution knob -- the serialized result is bit-identical at any
    worker count), ``options.telemetry`` is a *directory path* the
    merged per-host telemetry bundle is written under, and
    ``options.faults``/``options.slo`` are rejected (set them on each
    host's scenario instead).

    The bare keywords ``telemetry=`` / ``faults=`` / ``slo=`` are the
    pre-1.3 spelling, kept as a deprecated shim (one warning per
    process); new code should pass a :class:`RunOptions`.

    The config is validated up front (:meth:`ScenarioConfig.validate` /
    :meth:`ClusterConfig.validate`), so unknown policy/chain/traffic
    names and non-positive knobs fail with actionable messages.
    """
    import dataclasses as _dc
    import os

    from repro.bench.scenarios import run_scenario

    if options is not None and not isinstance(options, RunOptions):
        raise TypeError(
            f"run()'s second positional argument is a RunOptions, got "
            f"{type(options).__name__}; pass telemetry/faults/slo inside "
            f"RunOptions (or, deprecated, by keyword)"
        )
    if isinstance(config, ClusterConfig):
        if telemetry is not None or faults is not None or slo is not None:
            raise TypeError(
                "the legacy telemetry=/faults=/slo= keywords do not apply "
                "to cluster runs; pass a RunOptions (telemetry is a bundle "
                "directory path; faults/slo belong on each host's scenario)"
            )
        opts = options or RunOptions()
        if opts.faults is not None or opts.slo is not None:
            raise ValueError(
                "faults/slo options do not apply to a ClusterConfig; set "
                "them on each host's ScenarioConfig instead"
            )
        telemetry_dir = opts.telemetry
        if telemetry_dir is not None and not isinstance(
                telemetry_dir, (str, os.PathLike)):
            raise TypeError(
                f"for cluster runs options.telemetry is a bundle directory "
                f"path (str or PathLike), got "
                f"{type(telemetry_dir).__name__}; per-host Telemetry "
                f"objects are created by the engine and merged under it"
            )
        if overrides:
            config = _dc.replace(config, **overrides)
        return run_cluster(
            config,
            workers=opts.workers,
            telemetry_dir=(os.fspath(telemetry_dir)
                           if telemetry_dir is not None else None),
            check=opts.check_spec(),
            forensics=opts.forensics_spec(),
            recycle=opts.recycle,
            scheduler=opts.scheduler,
        )
    if telemetry is not None or faults is not None or slo is not None:
        global _run_kwargs_warned
        if not _run_kwargs_warned:
            _run_kwargs_warned = True
            import warnings

            warnings.warn(
                "repro.run(telemetry=/faults=/slo=) keywords are "
                "deprecated; pass repro.run(config, "
                "RunOptions(telemetry=..., faults=..., slo=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
    opts = (options or RunOptions()).merged_with(
        telemetry=telemetry, faults=faults, slo=slo
    )
    if config is None:
        config = ScenarioConfig(**overrides)
    elif overrides:
        config = _dc.replace(config, **overrides)
    if opts.faults is not None:
        if config.faults is not None:
            raise ValueError(
                "faults set both on the config and in the run options; "
                "set it once"
            )
        config = _dc.replace(config, faults=opts.faults)
    if opts.slo is not None:
        if config.slo is not None:
            raise ValueError(
                "slo set both on the config and in the run options; "
                "set it once"
            )
        config = _dc.replace(config, slo=opts.slo)
    return run_scenario(config, telemetry=opts.telemetry,
                        check=opts.check_spec(), recycle=opts.recycle,
                        forensics=opts.forensics_spec(),
                        scheduler=opts.scheduler)

__all__ = [
    "Simulator",
    "RngRegistry",
    "Packet",
    "FiveTuple",
    "PacketFactory",
    "Flow",
    "FlowTracker",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "IncastSource",
    "FlowSource",
    "TraceReplaySource",
    "EmpiricalCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "ENTERPRISE_CDF",
    "workload_by_name",
    "FabricModel",
    "HostLink",
    "Chain",
    "Element",
    "ElementGraph",
    "standard_chain",
    "STANDARD_CHAINS",
    "DataPath",
    "PathConfig",
    "QDISC_REGISTRY",
    "VCpu",
    "JitterParams",
    "DEDICATED_CORE",
    "SHARED_CORE",
    "CONTENDED_CORE",
    "NoisyNeighbor",
    "InterferenceSchedule",
    "DeliverySink",
    "MultipathDataPlane",
    "MpdpConfig",
    "Policy",
    "make_policy",
    "POLICY_NAMES",
    "POLICY_REGISTRY",
    "StragglerDetector",
    "ReorderBuffer",
    "FlowletTable",
    "LatencyRecorder",
    "LatencySummary",
    "summarize",
    "Table",
    "TimeSeries",
    "AvailabilityTracker",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "StochasticFaultSpec",
    "FAULT_KINDS",
    "ClosedLoopRpcClient",
    "ScenarioConfig",
    "SimulationResult",
    "RunOptions",
    "CheckSpec",
    "InvariantEngine",
    "InvariantViolation",
    "schemas",
    "Telemetry",
    "ForensicsSpec",
    "SloSpec",
    "SloObjective",
    "SloTracker",
    "SloAutotuner",
    "run",
    "Axis",
    "SweepSpec",
    "SweepResult",
    "CellResult",
    "run_sweep",
    "ClusterConfig",
    "ClusterResult",
    "HostConfig",
    "FabricConfig",
    "run_cluster",
    "__version__",
]
