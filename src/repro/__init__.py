"""repro -- multipath intra-host data plane for tail-latency mitigation.

Reproduction of *"Last-mile Matters: Mitigating the Tail Latency of
Virtualized Networks with Multipath Data Plane"* (CLUSTER 2022) as a
discrete-event simulation library.  See DESIGN.md for the system
inventory and the source-text caveat, and EXPERIMENTS.md for measured
results.

Quickstart::

    from repro import (
        Simulator, RngRegistry, MultipathDataPlane, MpdpConfig,
        PathConfig, SHARED_CORE, PoissonSource,
    )

    sim = Simulator()
    rngs = RngRegistry(seed=1)
    cfg = MpdpConfig(n_paths=4, policy="adaptive",
                     path=PathConfig(jitter=SHARED_CORE))
    host = MultipathDataPlane(sim, cfg, rngs)
    src = PoissonSource(sim, host.factory, host.input,
                        rngs.stream("traffic"), rate_pps=400_000)
    src.start()
    sim.run(until=200_000.0)   # 200 ms
    host.finalize()
    print(host.sink.recorder.summary())
"""

from repro.sim import Simulator, RngRegistry
from repro.net import (
    Packet,
    FiveTuple,
    PacketFactory,
    Flow,
    FlowTracker,
    PoissonSource,
    CBRSource,
    OnOffSource,
    IncastSource,
    FlowSource,
    TraceReplaySource,
    EmpiricalCDF,
    WEBSEARCH_CDF,
    DATAMINING_CDF,
    ENTERPRISE_CDF,
    workload_by_name,
    FabricModel,
    HostLink,
    ClosedLoopRpcClient,
)
from repro.elements import Chain, Element, ElementGraph, standard_chain, STANDARD_CHAINS
from repro.dataplane import (
    DataPath,
    VCpu,
    JitterParams,
    DEDICATED_CORE,
    SHARED_CORE,
    CONTENDED_CORE,
    NoisyNeighbor,
    InterferenceSchedule,
    DeliverySink,
)
from repro.dataplane.path import PathConfig
from repro.core import (
    MultipathDataPlane,
    MpdpConfig,
    Policy,
    make_policy,
    POLICY_NAMES,
    StragglerDetector,
    ReorderBuffer,
    FlowletTable,
)
from repro.metrics import (
    AvailabilityTracker,
    LatencyRecorder,
    LatencySummary,
    summarize,
    Table,
    TimeSeries,
)
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    StochasticFaultSpec,
    FAULT_KINDS,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RngRegistry",
    "Packet",
    "FiveTuple",
    "PacketFactory",
    "Flow",
    "FlowTracker",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "IncastSource",
    "FlowSource",
    "TraceReplaySource",
    "EmpiricalCDF",
    "WEBSEARCH_CDF",
    "DATAMINING_CDF",
    "ENTERPRISE_CDF",
    "workload_by_name",
    "FabricModel",
    "HostLink",
    "Chain",
    "Element",
    "ElementGraph",
    "standard_chain",
    "STANDARD_CHAINS",
    "DataPath",
    "PathConfig",
    "VCpu",
    "JitterParams",
    "DEDICATED_CORE",
    "SHARED_CORE",
    "CONTENDED_CORE",
    "NoisyNeighbor",
    "InterferenceSchedule",
    "DeliverySink",
    "MultipathDataPlane",
    "MpdpConfig",
    "Policy",
    "make_policy",
    "POLICY_NAMES",
    "StragglerDetector",
    "ReorderBuffer",
    "FlowletTable",
    "LatencyRecorder",
    "LatencySummary",
    "summarize",
    "Table",
    "TimeSeries",
    "AvailabilityTracker",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "StochasticFaultSpec",
    "FAULT_KINDS",
    "ClosedLoopRpcClient",
    "__version__",
]
