"""Regeneration functions for every reconstructed figure and table.

Each ``fig_*`` / ``table_*`` / ``ablation_*`` function runs the full
experiment and returns ``(text, data)``: ``text`` is the rendered
paper-style output, ``data`` the raw values the bench assertions and
EXPERIMENTS.md use.  Durations respect ``REPRO_BENCH_SCALE``.

The evaluation chain is the 5-element ``heavy`` SFC (classifier ->
firewall -> DPI -> NAT -> monitor) unless an experiment says otherwise:
its ~3 µs/packet cost matches the service chains the NFV literature
evaluates and keeps packet counts tractable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.bench.runner import scaled_duration
from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.sweep import Axis, SweepSpec, run_sweep
from repro.faults import FaultSchedule
from repro.core.detector import DetectorConfig, StragglerDetector
from repro.core.policies import AdaptiveMultipath, FlowletSwitching
from repro.dataplane.vcpu import (
    CONTENDED_CORE,
    DEDICATED_CORE,
    JitterParams,
    SHARED_CORE,
)
from repro.metrics.report import Table

#: Policies compared in the headline experiments.
HEADLINE_POLICIES = ("single", "hash", "spray", "leastload", "adaptive", "redundant2")

_JITTER_PROFILES = [
    ("none (bare-metal-like)", JitterParams()),
    ("dedicated core", DEDICATED_CORE),
    ("shared core", SHARED_CORE),
    ("contended core", CONTENDED_CORE),
]


def _base(duration: float, **kw) -> ScenarioConfig:
    defaults = dict(chain="heavy", duration=scaled_duration(duration),
                    warmup=scaled_duration(duration) * 0.15)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def _sweep_base(duration: float, **kw) -> Dict:
    """Base dict for a declarative :class:`SweepSpec` (same canon as
    :func:`_base`: heavy chain, 15% warmup, scaled duration)."""
    base = dict(chain="heavy", duration=scaled_duration(duration),
                warmup=scaled_duration(duration) * 0.15)
    base.update(kw)
    return base


# ----------------------------------------------------------------------
# F1 -- motivation: the virtualization tail tax
# ----------------------------------------------------------------------
def fig1_motivation(duration: float = 60_000.0) -> Tuple[str, Dict]:
    """Latency percentiles of a single-path host across jitter profiles.

    Expected shape: medians barely move, p99/p99.9 inflate by orders of
    magnitude as scheduling jitter grows -- the 'last mile' tail tax.
    """
    labels = [label for label, _ in _JITTER_PROFILES]
    spec = SweepSpec(
        name="F1-motivation",
        base=_sweep_base(duration, policy="single", n_paths=1, load=0.6),
        axes=[Axis("jitter", ["none", "dedicated", "shared", "contended"],
                   labels=labels)],
    )
    sr = run_sweep(spec)
    t = Table(
        ["vCPU profile", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)"],
        title="F1  single-path latency vs scheduling-jitter profile (load 0.6)",
    )
    data = {}
    for label in labels:
        s = sr.get(jitter=label).summary
        t.add_row([label, s.p50, s.p99, s.p999, s.max])
        data[label] = s
    return t.render(), data


# ----------------------------------------------------------------------
# F2 -- last-mile latency breakdown
# ----------------------------------------------------------------------
def fig2_breakdown(duration: float = 60_000.0) -> Tuple[str, Dict]:
    """Per-stage latency decomposition on a single path.

    Stages from packet timestamps: NIC rx (t_enq - t_nic), queue wait
    (t_deq - t_enq), service incl. stalls (t_done - t_deq).  Expected
    shape: at the mean, service dominates; at p99, queue wait + stall
    time dominate -- the tail is a *waiting* problem, not a work problem.
    """
    stages: Dict[str, List[float]] = {"nic_rx": [], "queue_wait": [], "service+stall": []}

    cfg = _base(duration, policy="single", n_paths=1, load=0.7,
                jitter=SHARED_CORE)
    # Collect stamps via a delivery hook.
    samples: List[Tuple[float, float, float]] = []

    def collect(pkt):
        samples.append((pkt.t_enq - pkt.t_nic, pkt.t_deq - pkt.t_enq,
                        pkt.t_done - pkt.t_deq))

    from repro.sim.engine import Simulator  # local import for the custom run
    from repro.sim.rng import RngRegistry
    from repro.core.mpdp import MpdpConfig, MultipathDataPlane
    from repro.dataplane.path import PathConfig
    from repro.bench.scenarios import _make_source

    sim = Simulator()
    rngs = RngRegistry(seed=cfg.seed)
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=1, policy="single", chain=cfg.chain,
                   path=PathConfig(jitter=cfg.jitter), warmup=cfg.warmup),
        rngs,
    )
    host.sink.on_delivery = collect
    src = _make_source(sim, host, rngs, cfg, None)
    src.start()
    sim.run(until=cfg.duration + cfg.drain)
    host.finalize()

    arr = np.array(samples)
    arr = arr[int(0.15 * len(arr)):]  # warmup trim
    names = ("nic_rx", "queue_wait", "service+stall")
    t = Table(
        ["stage", "mean (us)", "share of mean", "p99 (us)", "share of p99 sum"],
        title="F2  last-mile latency breakdown, single path @ load 0.7",
    )
    means = arr.mean(axis=0)
    p99s = np.percentile(arr, 99, axis=0)
    data = {}
    for i, name in enumerate(names):
        t.add_row([name, float(means[i]), f"{means[i]/means.sum():.0%}",
                   float(p99s[i]), f"{p99s[i]/p99s.sum():.0%}"])
        data[name] = {"mean": float(means[i]), "p99": float(p99s[i])}
    return t.render(), data


# ----------------------------------------------------------------------
# F3 -- p99 vs offered load (the headline figure)
# ----------------------------------------------------------------------
def fig3_load_sweep(
    duration: float = 40_000.0,
    loads=(0.3, 0.5, 0.7, 0.8, 0.9),
) -> Tuple[str, Dict]:
    """p99 latency vs offered load for every headline policy, k=4.

    Expected shape: single-path p99 grows fastest; multipath policies
    stay flat far longer; redundancy is excellent at low load and
    collapses first as load rises (it doubles the work).
    """
    spec = SweepSpec(
        name="F3-load-sweep",
        base=_sweep_base(duration, n_paths=4),
        axes=[Axis("load", list(loads)),
              Axis("policy", list(HEADLINE_POLICIES))],
    )
    sr = run_sweep(spec)
    t = Table(
        ["load"] + list(HEADLINE_POLICIES),
        title="F3  p99 latency (us) vs offered load, k=4, heavy chain",
    )
    data: Dict[str, List[float]] = {p: [] for p in HEADLINE_POLICIES}
    for load in loads:
        row = [f"{load:.2f}"]
        for p in HEADLINE_POLICIES:
            v = sr.get(load=load, policy=p).exact["p99"]
            data[p].append(float(v))
            row.append(float(v))
        t.add_row(row)
    data["loads"] = list(loads)
    return t.render(), data


# ----------------------------------------------------------------------
# F4 -- latency CDF under bursty traffic
# ----------------------------------------------------------------------
def fig4_bursty(
    duration: float = 50_000.0,
    burstiness=(1.0, 2.0, 4.0, 8.0),
) -> Tuple[str, Dict]:
    """p99/p99.9 vs traffic burstiness for single vs spray vs adaptive.

    Expected shape: bursts amplify the single-path tail sharply (burst +
    stall overlap); multipath spreads each burst over k queues.
    """
    policies = ("single", "spray", "adaptive")
    # burstiness 1.0 *is* Poisson: express the degenerate point as a
    # coupled override instead of a special-cased loop iteration.
    values = [{"burstiness": b, "traffic": "poisson"} if b == 1.0 else b
              for b in burstiness]
    spec = SweepSpec(
        name="F4-bursty",
        base=_sweep_base(duration, traffic="onoff", load=0.5, n_paths=4),
        axes=[Axis("burstiness", values, labels=list(burstiness)),
              Axis("policy", list(policies))],
    )
    sr = run_sweep(spec)
    t = Table(
        ["burstiness"] + [f"{p} p99" for p in policies] + [f"{p} p99.9" for p in policies],
        title="F4  tail latency (us) vs ON/OFF burstiness, load 0.5",
    )
    data: Dict = {p: {"p99": [], "p999": []} for p in policies}
    for b in burstiness:
        row = [f"{b:g}x"]
        for p in policies:
            v = sr.get(burstiness=b, policy=p).exact["p99"]
            data[p]["p99"].append(float(v))
            row.append(float(v))
        for p in policies:
            v = sr.get(burstiness=b, policy=p).exact["p999"]
            data[p]["p999"].append(float(v))
            row.append(float(v))
        t.add_row(row)
    data["burstiness"] = list(burstiness)
    return t.render(), data


# ----------------------------------------------------------------------
# F5 -- scalability in path count
# ----------------------------------------------------------------------
def fig5_path_scaling(
    duration: float = 50_000.0,
    ks=(1, 2, 3, 4, 6, 8),
) -> Tuple[str, Dict]:
    """Fixed aggregate offered load spread over k paths.

    The aggregate equals 80% of ONE path's capacity, so k=1 is a busy
    single lane and each added path dilutes per-path load.  Expected
    shape: steep tail improvement from k=1 to 2-4, diminishing returns
    after; CPU/packet grows mildly (smaller batches, per-path caches).
    """
    spec = SweepSpec(
        name="F5-path-scaling",
        base=_sweep_base(duration, policy="adaptive"),
        axes=[Axis("k", [{"n_paths": k, "load": 0.8 / k} for k in ks],
                   labels=list(ks))],
        single_path_baseline=False,
    )
    sr = run_sweep(spec)
    t = Table(
        ["k", "p50 (us)", "p99 (us)", "p99.9 (us)", "cpu us/pkt", "goodput Gbps"],
        title="F5  adaptive MPDP vs path count, fixed aggregate load (0.8 of one path)",
    )
    data = {"k": list(ks), "p99": [], "p999": [], "cpu": []}
    for k in ks:
        cell = sr.get(k=k)
        s = cell.summary
        cpu = cell.stats["cpu_per_delivered"]
        t.add_row([k, s.p50, s.p99, s.p999, cpu, cell.goodput_gbps])
        data["p99"].append(s.p99)
        data["p999"].append(s.p999)
        data["cpu"].append(cpu)
    return t.render(), data


# ----------------------------------------------------------------------
# F6 -- interference resilience
# ----------------------------------------------------------------------
def fig6_interference(
    duration: float = 60_000.0,
    intensities=(0.0, 2.0, 4.0, 6.0),
) -> Tuple[str, Dict]:
    """p99 vs noisy-neighbor intensity on one core.

    The neighbor hits the single path's only core, or one of the
    multipath host's four.  Expected shape: single-path p99 scales with
    intensity; adaptive stays near its baseline by steering around the
    victim path.
    """
    policies = ("single", "hash", "adaptive")
    spec = SweepSpec(
        name="F6-interference",
        base=_sweep_base(duration, load=0.5, n_paths=4,
                         interfere_start_frac=0.2, interfere_end_frac=0.8),
        axes=[Axis("interfere_intensity", list(intensities)),
              Axis("policy", list(policies))],
    )
    sr = run_sweep(spec)
    t = Table(
        ["intensity"] + list(policies),
        title="F6  p99 latency (us) vs interference intensity (victim: path 0)",
    )
    data: Dict = {p: [] for p in policies}
    for inten in intensities:
        row = [f"{inten:g}x"]
        for p in policies:
            v = sr.get(interfere_intensity=inten, policy=p).exact["p99"]
            data[p].append(float(v))
            row.append(float(v))
        t.add_row(row)
    data["intensities"] = list(intensities)
    return t.render(), data


# ----------------------------------------------------------------------
# F7 -- short-flow FCT on the websearch workload
# ----------------------------------------------------------------------
def fig7_fct(duration: float = 400_000.0) -> Tuple[str, Dict]:
    """Short-flow (<100 KB) FCT percentiles per policy, websearch flows.

    Same-absolute-workload framing (the paper's): every configuration
    receives the identical flow arrival process, sized to ~88% of ONE
    path's capacity -- the regime that motivates adding datapath
    instances on spare cores.  The single-path baseline is therefore a
    heavily loaded status-quo host, and the k=4 hosts relieve it.

    Expected shape: multipath cuts short-flow p99 FCT by multiples --
    short flows live or die by whether they land behind a queue/stall.
    """
    policies = ("single", "hash", "adaptive")
    t = Table(
        ["policy", "flows", "short p50 (us)", "short p99 (us)", "all p99 (us)"],
        title="F7  flow completion times, websearch workload "
              "(same workload, ~0.88 of one path)",
    )
    data = {}
    for p in policies:
        base = _base(duration, traffic="flows", workload="websearch",
                     flow_load=0.22)
        overrides = {"policy": p}
        if p == "single":
            # flow_load scales with n_paths; 0.88 x 1 path == 0.22 x 4
            # paths in absolute flows/second.
            overrides.update(n_paths=1, flow_load=0.88)
        res = run_scenario(dataclasses.replace(base, **overrides))
        short = res.tracker.fcts_by_size(max_size=100_000)
        allf = res.tracker.fcts()
        data[p] = {
            "flows": len(res.tracker.completed),
            "short_p50": float(np.percentile(short, 50)) if len(short) else float("nan"),
            "short_p99": float(np.percentile(short, 99)) if len(short) else float("nan"),
            "all_p99": float(np.percentile(allf, 99)) if len(allf) else float("nan"),
        }
        d = data[p]
        t.add_row([p, d["flows"], d["short_p50"], d["short_p99"], d["all_p99"]])
    return t.render(), data


# ----------------------------------------------------------------------
# F8 -- reordering overhead
# ----------------------------------------------------------------------
def fig8_reorder(duration: float = 40_000.0) -> Tuple[str, Dict]:
    """Reorder-buffer footprint per policy at load 0.7.

    Expected shape: per-packet spraying holds a significant fraction of
    packets and adds measurable hold delay; flowlet/adaptive rarely
    reorder; hash never does (buffer unused).
    """
    policies = ("rr", "spray", "leastload", "flowlet", "adaptive")
    t = Table(
        ["policy", "held pkts", "held frac", "mean hold (us)",
         "timeout flushes", "peak occupancy", "p99 (us)"],
        title="F8  reordering cost at load 0.7, k=4",
    )
    data = {}
    for p in policies:
        res = run_scenario(_base(duration, policy=p, load=0.7,
                             mpdp_overrides={"use_reorder": True}))
        ro = res.stats["reorder"]
        held_frac = ro["held"] / max(res.stats["delivered"], 1)
        data[p] = {**ro, "held_frac": held_frac, "p99": res.summary.p99}
        t.add_row([p, ro["held"], f"{held_frac:.2%}", ro["mean_hold"],
                   ro["timeout_flushes"], ro["peak_occupancy"], res.summary.p99])
    return t.render(), data


# ----------------------------------------------------------------------
# T1 -- the percentile comparison table
# ----------------------------------------------------------------------
def table1_percentiles(duration: float = 60_000.0) -> Tuple[str, Dict]:
    """p50/p90/p95/p99/p99.9 for every policy at the canonical mix."""
    policies = HEADLINE_POLICIES + ("rr", "po2", "flowlet")
    spec = SweepSpec(
        name="T1-percentiles",
        base=_sweep_base(duration, load=0.7, n_paths=4),
        axes=[Axis("policy", list(policies))],
    )
    sr = run_sweep(spec)
    t = Table(
        ["policy", "paths", "p50", "p90", "p95", "p99", "p99.9", "max"],
        title="T1  latency percentiles (us), load 0.7, heavy chain, shared-core jitter",
    )
    data = {}
    for p in policies:
        cell = sr.get(policy=p)
        s = cell.summary
        data[p] = s
        t.add_row([p, cell.config["n_paths"],
                   s.p50, s.p90, s.p95, s.p99, s.p999, s.max])
    return t.render(), data


# ----------------------------------------------------------------------
# T2 -- CPU overhead table
# ----------------------------------------------------------------------
def table2_overhead(duration: float = 60_000.0) -> Tuple[str, Dict]:
    """CPU us/packet, replica counts, drops, goodput for every policy.

    Expected shape: multipath steering costs a few percent over single
    path (per-path caches, batching dilution); redundancy costs ~2x.
    Measured at load 0.4 so that redundancy is *not* saturating -- at
    saturation its replicas die in full queues before being processed,
    which understates the overhead this table is meant to expose.
    """
    policies = HEADLINE_POLICIES + ("rr", "po2", "flowlet")
    spec = SweepSpec(
        name="T2-overhead",
        base=_sweep_base(duration, load=0.4, n_paths=4),
        axes=[Axis("policy", list(policies))],
    )
    sr = run_sweep(spec)
    t = Table(
        ["policy", "cpu us/pkt", "vs single", "replicas", "suppressed",
         "drops", "goodput Gbps"],
        title="T2  CPU overhead per delivered packet, load 0.4",
    )
    single_cpu = sr.get(policy="single").stats["cpu_per_delivered"]
    data = {}
    for p in policies:
        cell = sr.get(policy=p)
        st = cell.stats
        cpu = st["cpu_per_delivered"]
        drops = sum(st["drops"].values()) + st["nic_drops"]
        data[p] = {"cpu": cpu, "replicas": st["replicas"], "drops": drops}
        t.add_row([p, cpu, f"{cpu/single_cpu:.2f}x", st["replicas"],
                   st["suppressed"], drops, cell.goodput_gbps])
    return t.render(), data


# ----------------------------------------------------------------------
# A1 -- ablation: flowlet timeout
# ----------------------------------------------------------------------
def ablation1_flowlet_timeout(
    duration: float = 40_000.0,
    timeouts=(10.0, 50.0, 100.0, 250.0, 500.0, 2_000.0),
) -> Tuple[str, Dict]:
    """p99 and reordering vs flowlet timeout.

    Expected shape: tiny timeouts behave like spraying (reorder cost);
    huge timeouts behave like per-flow hashing (no rebalancing); the
    middle is best -- a U-shaped p99 curve.
    """
    t = Table(
        ["timeout (us)", "p99 (us)", "p99.9 (us)", "held frac", "boundaries/pkt"],
        title="A1  flowlet-timeout sweep, load 0.7, k=4",
    )
    data = {"timeout": list(timeouts), "p99": [], "held_frac": []}
    for to in timeouts:
        policy = FlowletSwitching(timeout=to)
        res = run_scenario(_base(duration, policy=policy, load=0.7,
                             mpdp_overrides={"use_reorder": True}))
        ro = res.stats["reorder"]
        held_frac = ro["held"] / max(res.stats["delivered"], 1)
        boundaries = policy.table.boundaries / max(res.stats["ingress"], 1)
        t.add_row([to, res.summary.p99, res.summary.p999,
                   f"{held_frac:.2%}", f"{boundaries:.3f}"])
        data["p99"].append(res.summary.p99)
        data["held_frac"].append(held_frac)
    return t.render(), data


# ----------------------------------------------------------------------
# A2 -- ablation: detector sensitivity
# ----------------------------------------------------------------------
def ablation2_detector(
    duration: float = 50_000.0,
    hol_thresholds=(10.0, 25.0, 50.0, 100.0, 200.0, 400.0),
) -> Tuple[str, Dict]:
    """Adaptive p99/p99.9 vs head-of-line detection threshold, with a
    4x noisy neighbor active mid-run.

    Expected shape: too-low thresholds cause jumpy steering (false
    trips); too-high thresholds miss stalls and let the tail grow; the
    knee sits near the typical stall duration.
    """
    t = Table(
        ["hol threshold (us)", "p99 (us)", "p99.9 (us)", "straggler verdicts"],
        title="A2  detector sensitivity (adaptive, 4x neighbor on path 0, load 0.6)",
    )
    data = {"threshold": list(hol_thresholds), "p99": [], "p999": []}
    for thr in hol_thresholds:
        detector = StragglerDetector(DetectorConfig(hol_threshold=thr))
        policy = AdaptiveMultipath(detector=detector)
        res = run_scenario(_base(duration, policy=policy, load=0.6,
                             interfere_intensity=4.0))
        t.add_row([thr, res.summary.p99, res.summary.p999,
                   detector.straggler_verdicts])
        data["p99"].append(res.summary.p99)
        data["p999"].append(res.summary.p999)
    return t.render(), data


# ----------------------------------------------------------------------
# A3 -- ablation: selective-replication budget
# ----------------------------------------------------------------------
def ablation3_replication(
    duration: float = 40_000.0,
    budgets=(0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0),
    loads=(0.4, 0.8),
) -> Tuple[str, Dict]:
    """p99.9 and CPU cost vs replication budget, small-RPC traffic.

    Uses 200-byte packets (all replication-eligible).  Expected shape:
    at low load, more replication keeps buying tail; at high load the
    curve turns -- replicas congest the paths they were meant to insure
    against.
    """
    t = Table(
        ["budget"] + [f"p99.9 @load {l}" for l in loads] + [f"cpu/pkt @load {l}" for l in loads],
        title="A3  selective-replication budget sweep (200B RPC packets)",
    )
    data: Dict = {"budgets": list(budgets)}
    rows = {b: {} for b in budgets}
    for load in loads:
        for b in budgets:
            policy = AdaptiveMultipath(replication_budget=b, critical_size=300)
            res = run_scenario(_base(duration, policy=policy, load=load,
                                 packet_size=200))
            rows[b][load] = (res.exact_percentile(99.9),
                             res.stats["cpu_per_delivered"])
    for b in budgets:
        row = [f"{b:.2f}"]
        row += [float(rows[b][l][0]) for l in loads]
        row += [float(rows[b][l][1]) for l in loads]
        t.add_row(row)
    data["rows"] = {b: rows[b] for b in budgets}
    return t.render(), data


# ----------------------------------------------------------------------
# A4 -- ablation: intra-chain (ParaGraph) vs cross-chain (MPDP) parallelism
# ----------------------------------------------------------------------
def _branching_gateway_graph(rng):
    """classifier -> {firewall, dpi, monitor} -> nat: three independent
    middle elements, parallelizable ParaGraph-style."""
    from repro.elements import AclFirewall, AclRule, Classifier, Dpi, ElementGraph, FlowMonitor, Nat

    g = ElementGraph("gateway-dag")
    g.add(Classifier("cls", rules=[], rng=rng))
    # The three independent middle elements are cost-balanced: with one
    # dominant element (e.g. full-cost DPI) Amdahl's law erases the
    # intra-chain win, which is precisely why ParaGraph selects
    # subgraphs -- the balanced case shows the best-case contrast.
    g.add(AclFirewall("fw", rules=[AclRule(dport=22, action="deny")],
                      base_cost=0.6, rng=rng))
    g.add(Dpi("dpi", base_cost=0.3, per_byte=0.0003, rng=rng))
    g.add(FlowMonitor("mon", base_cost=0.6, rng=rng))
    g.add(Nat("nat", rng=rng))
    for mid in ("fw", "dpi", "mon"):
        g.connect("cls", mid)
        g.connect(mid, "nat")
    return g


def ablation4_intrachain(duration: float = 50_000.0) -> Tuple[str, Dict]:
    """Intra-chain parallelism (ParaGraph-style) vs multipath replicas.

    Three compositions of the same branching gateway DAG:

    * **serial, 1 path** -- baseline linear pipeline;
    * **stage-parallel, 1 path** -- independent elements run concurrently
      on packet copies (max-of-costs + copy/merge overheads);
    * **serial, 4 paths (MPDP)** -- the paper's approach.

    Expected shape: intra-chain parallelism shortens *service time*
    (better median) but shares the single vCPU's stalls, so its tail
    stays near the serial baseline; multipath leaves the median alone
    and crushes the tail.  The two mechanisms are complementary, which
    is the paper's positioning vs the ParaGraph line of work.
    """
    from repro.bench.scenarios import _make_source
    from repro.core.mpdp import MpdpConfig, MultipathDataPlane
    from repro.dataplane.path import PathConfig
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry

    def run(kind: str):
        sim = Simulator()
        rngs = RngRegistry(seed=97)
        g = _branching_gateway_graph(rngs.stream("chain"))
        if kind == "stage-parallel, 1 path":
            chain = g.compile_parallel()
        elif kind == "subgraph-optimal, 1 path":
            chain = g.compile_optimal()
        else:
            from repro.elements.base import Chain

            chain = Chain(g.topological_order(), name="gateway-serial")
        n_paths = 4 if "4 paths" in kind else 1
        policy = "adaptive" if n_paths > 1 else "single"
        host = MultipathDataPlane(
            sim,
            MpdpConfig(n_paths=n_paths, policy=policy,
                       path=PathConfig(jitter=SHARED_CORE),
                       warmup=scaled_duration(duration) * 0.15),
            rngs,
            chain=chain,
        )
        cfg = ScenarioConfig(chain="heavy", load=0.55, n_paths=n_paths,
                             duration=scaled_duration(duration))
        src = _make_source(sim, host, rngs, cfg, None)
        src.start()
        sim.run(until=cfg.duration + cfg.drain)
        host.finalize()
        return host

    kinds = ("serial, 1 path", "stage-parallel, 1 path",
             "subgraph-optimal, 1 path", "serial, 4 paths (MPDP)")
    t = Table(
        ["composition", "p50 (us)", "p99 (us)", "p99.9 (us)"],
        title="A4  intra-chain (ParaGraph-style) vs cross-chain (MPDP) parallelism",
    )
    data = {}
    for kind in kinds:
        host = run(kind)
        s = host.sink.recorder.summary()
        data[kind] = s
        t.add_row([kind, s.p50, s.p99, s.p999])
    return t.render(), data


# ----------------------------------------------------------------------
# F9 -- end-to-end RPC RTT across a fabric
# ----------------------------------------------------------------------
def fig9_end_to_end(duration: float = 100_000.0) -> Tuple[str, Dict]:
    """RPC round-trip time between two hosts behind a 12 µs fabric.

    Both hosts carry background load; only the *hosts'* data planes
    change between rows.  Expected shape: the fabric contributes a fixed
    ~24 µs; everything above it is last-mile, so multipath hosts cut RTT
    p99 by multiples while the median barely moves.
    """
    from repro.bench.e2e import run_rpc_world

    configs = [("single-path hosts", "single", 1),
               ("hash k=4 hosts", "hash", 4),
               ("adaptive k=4 hosts", "adaptive", 4)]
    t = Table(
        ["hosts", "RTTs", "p50 (us)", "p99 (us)", "p99.9 (us)"],
        title="F9  end-to-end RPC RTT (12 us fabric each way, loaded hosts)",
    )
    data = {}
    for label, policy, k in configs:
        res = run_rpc_world(policy, k, duration=scaled_duration(duration))
        data[label] = {
            "rtts": len(res.rtts),
            "p50": res.rtt_percentile(50),
            "p99": res.rtt_percentile(99),
            "p999": res.rtt_percentile(99.9),
        }
        d = data[label]
        t.add_row([label, d["rtts"], d["p50"], d["p99"], d["p999"]])
    return t.render(), data


# ----------------------------------------------------------------------
# T3 -- closed-loop throughput/RTT vs concurrency
# ----------------------------------------------------------------------
def table3_closed_loop(
    duration: float = 50_000.0,
    concurrencies=(4, 16, 64),
) -> Tuple[str, Dict]:
    """Closed-loop RPC: throughput and RTT tail vs request concurrency.

    Closed-loop clients self-throttle, so offered load follows achieved
    latency.  Expected shape: at low concurrency both configurations
    deliver similar throughput (RTT-bound) but multipath already wins
    the RTT tail; at high concurrency the single path saturates while
    multipath keeps scaling throughput.
    """
    from repro.bench.e2e import run_closed_loop

    t = Table(
        ["concurrency", "single krps", "adaptive krps",
         "single RTT p99", "adaptive RTT p99"],
        title="T3  closed-loop RPC: throughput and RTT p99 vs concurrency",
    )
    data: Dict = {"concurrency": list(concurrencies), "single": [], "adaptive": []}
    for c in concurrencies:
        per = {}
        for policy, k in (("single", 1), ("adaptive", 4)):
            res = run_closed_loop(policy, k, concurrency=c,
                                  duration=scaled_duration(duration))
            per[policy] = {
                "rps": res.throughput_rps,
                "rtt_p99": res.rtt_percentile(99),
            }
            data[policy].append(per[policy])
        t.add_row([c, per["single"]["rps"] / 1e3, per["adaptive"]["rps"] / 1e3,
                   per["single"]["rtt_p99"], per["adaptive"]["rtt_p99"]])
    return t.render(), data


# ----------------------------------------------------------------------
# F10 -- resilience to a mid-run path crash
# ----------------------------------------------------------------------
def fig10_faults(duration: float = 100_000.0) -> Tuple[str, Dict]:
    """Tail latency and loss under a mid-run path crash, per policy.

    Path 0 crashes at 30% of the run and restarts 25% later.  Expected
    shape: the single path loses availability outright (explicit loss +
    a huge p99.9 from the surviving backlog); adaptive and redundant
    multipath mask the crash, keeping p99.9 within a small multiple of
    the fault-free run and near-total delivery; detection lag and
    recovery time come from the availability collectors.
    """
    dur = scaled_duration(duration)
    crash_at, crash_for = 0.30 * dur, 0.25 * dur

    t = Table(
        ["policy", "p99.9 clean", "p99 crash", "p99.9 crash", "delivered %",
         "rerouted", "lost", "detect (us)", "recover (us)"],
        title="F10  mid-run path crash: tail + availability per policy "
              "(load 0.55, crash 30%->55% of run)",
    )
    data: Dict = {}
    for policy, k in (("single", 1), ("hash", 4), ("adaptive", 4),
                      ("redundant2", 4)):
        base = _base(duration, policy=policy, n_paths=k, load=0.55)
        clean = run_scenario(base)
        sched = FaultSchedule().crash(path=0, at=crash_at, duration=crash_for)
        fault = run_scenario(dataclasses.replace(base, faults=sched))
        delivered_frac = fault.stats["delivered"] / fault.offered
        avail = fault.availability
        lost = fault.offered - fault.stats["delivered"]
        data[policy] = {
            "clean_p999": clean.summary.p999,
            "fault_p99": fault.summary.p99,
            "fault_p999": fault.summary.p999,
            "delivered_frac": delivered_frac,
            "lost": lost,
            "rerouted": avail["rerouted"],
            "detection_lag": avail["mean_detection_lag"],
            "recovery_time": avail["mean_recovery_time"],
            "uptime": avail["path_uptime_fraction"],
        }
        t.add_row([policy, clean.summary.p999, fault.summary.p99,
                   fault.summary.p999, 100.0 * delivered_frac,
                   avail["rerouted"], lost,
                   avail["mean_detection_lag"], avail["mean_recovery_time"]])
    return t.render(), data


# ----------------------------------------------------------------------
# F11 -- tail + availability vs fault rate (MTBF sweep)
# ----------------------------------------------------------------------
def fig11_mtbf_sweep(duration: float = 100_000.0) -> Tuple[str, Dict]:
    """Delivered fraction and p99.9 vs per-path crash rate (MTBF sweep).

    Every path runs an independent crash/restart renewal process (mean
    repair 2 ms) with per-path MTBF swept from none to 10 ms.  Expected
    shape: the single path's availability falls roughly with its down
    fraction; adaptive multipath holds near-total delivery and a bounded
    p99.9 because the controller ejects crashed paths and re-steers.
    """
    dur = scaled_duration(duration)
    mttr = 2_000.0
    mtbfs = [None, 50_000.0, 20_000.0, 10_000.0]

    t = Table(
        ["per-path MTBF", "single del %", "single p99.9", "adaptive del %",
         "adaptive p99.9", "adaptive uptime %"],
        title="F11  crash-rate sweep: delivered fraction + p99.9 "
              "(MTTR 2 ms, load 0.5)",
    )
    data: Dict = {"mtbf": mtbfs, "single": [], "adaptive": []}
    for mtbf in mtbfs:
        row = [("none" if mtbf is None else f"{mtbf / 1000:.0f} ms")]
        per = {}
        for policy, k in (("single", 1), ("adaptive", 4)):
            base = _base(duration, policy=policy, n_paths=k, load=0.5)
            if mtbf is None:
                res = run_scenario(base)
                uptime = 1.0
            else:
                sched = FaultSchedule()
                for path in range(k):
                    sched.renewal("crash", path=path, mtbf=mtbf, mttr=mttr)
                res = run_scenario(dataclasses.replace(base, faults=sched))
                uptime = res.availability["path_uptime_fraction"]
            per[policy] = {
                "delivered_frac": res.stats["delivered"] / res.offered,
                "p999": res.summary.p999,
                "uptime": uptime,
            }
            data[policy].append(per[policy])
        t.add_row(row + [100.0 * per["single"]["delivered_frac"],
                         per["single"]["p999"],
                         100.0 * per["adaptive"]["delivered_frac"],
                         per["adaptive"]["p999"],
                         100.0 * per["adaptive"]["uptime"]])
    return t.render(), data


#: Experiment registry: id -> regeneration function.
ALL_EXPERIMENTS = {
    "F1": fig1_motivation,
    "F2": fig2_breakdown,
    "F3": fig3_load_sweep,
    "F4": fig4_bursty,
    "F5": fig5_path_scaling,
    "F6": fig6_interference,
    "F7": fig7_fct,
    "F8": fig8_reorder,
    "F9": fig9_end_to_end,
    "F10": fig10_faults,
    "F11": fig11_mtbf_sweep,
    "T1": table1_percentiles,
    "T2": table2_overhead,
    "T3": table3_closed_loop,
    "A1": ablation1_flowlet_timeout,
    "A2": ablation2_detector,
    "A3": ablation3_replication,
    "A4": ablation4_intrachain,
}

# SLO engine experiments live in their own module (they pull in
# repro.slo); registered here so `repro run SLO1` just works.
from repro.bench.slo_experiments import slo1_attainment, slo2_fault_recovery  # noqa: E402

ALL_EXPERIMENTS["SLO1"] = slo1_attainment
ALL_EXPERIMENTS["SLO2"] = slo2_fault_recovery

# Cluster experiments likewise live in their own module (they pull in
# repro.cluster and its multiprocessing machinery).
from repro.bench.cluster_figures import c1_cluster_scale, c2_incast_fanin  # noqa: E402

ALL_EXPERIMENTS["C1"] = c1_cluster_scale
ALL_EXPERIMENTS["C2"] = c2_incast_fanin
