"""Canned experiment scenarios.

:func:`simulate` is the one-call experiment runner every figure uses: it
builds a host from a :class:`ScenarioConfig`, attaches the requested
traffic source, runs the simulation, and returns a
:class:`SimulationResult` with everything the analyses need.

Load convention
---------------
``load`` is the offered utilization of **one** path's service capacity
aggregated across k paths: ``rate_pps = load * k * path_capacity_pps``.
Path capacity is derived from the chain's expected per-packet cost, so
``load=0.9, policy=single, n_paths=1`` genuinely means a 90%-utilized
single path, and the same load against k=4 offers 4x the packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.mpdp import MpdpConfig, MultipathDataPlane
from repro.core.policies import Policy
from repro.dataplane.path import PathConfig
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.elements.nf import standard_chain
from repro.metrics.stats import LatencySummary
from repro.net.flow import FlowTracker
from repro.net.traffic import FlowSource, IncastSource, OnOffSource, PoissonSource
from repro.net.workloads import workload_by_name
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class ScenarioConfig:
    """Everything one experiment run needs.

    Attributes
    ----------
    policy / n_paths / jitter / chain:
        Host shape (see :class:`MpdpConfig`).
    traffic:
        ``"poisson"``, ``"onoff"``, ``"incast"`` or ``"flows"``.
    load:
        Offered utilization (see module docstring); ignored for
        ``incast`` and ``flows`` (which use their own knobs).
    duration:
        Traffic duration (µs); measurement continues until drained.
    warmup:
        Latency samples before this time are discarded.
    """

    policy: str | Policy = "adaptive"
    n_paths: int = 4
    jitter: JitterParams = field(default_factory=lambda: SHARED_CORE)
    chain: str = "basic"
    traffic: str = "poisson"
    load: float = 0.6
    duration: float = 100_000.0
    warmup: float = 10_000.0
    seed: int = 42
    n_flows: int = 256
    packet_size: int = 1554
    # ON/OFF knobs
    burstiness: float = 2.0  # peak rate multiplier over mean
    mean_on: float = 300.0
    # incast knobs
    fan_in: int = 16
    burst_pkts: int = 8
    epoch: float = 2_000.0
    # flow-workload knobs
    workload: str = "websearch"
    flow_load: float = 0.4  # fraction of aggregate bandwidth
    max_flow_pkts: int = 500
    # interference: contention factor applied to one path's core for the
    # middle [start_frac, end_frac] of the run (0 disables)
    interfere_intensity: float = 0.0
    interfere_path: int = 0
    interfere_start_frac: float = 0.25
    interfere_end_frac: float = 0.75
    # fault injection: a FaultSchedule (see repro.faults) installed over
    # the whole run; None = no faults, nothing armed, zero overhead.
    # Installing a schedule also enables controller ejection/recovery.
    faults: Optional[object] = None
    # host extras
    mpdp_overrides: Dict = field(default_factory=dict)
    drain: float = 20_000.0

    def path_capacity_pps(self) -> float:
        """Packets/second one path sustains (no jitter), measured.

        Analytic ``chain.mean_cost`` undershoots reality (DPI deep
        scans, NAT state, cache warmth), so capacity is calibrated by
        driving a few thousand steady-state packets through a throwaway
        chain replica -- cached per (chain, packet_size).
        """
        return _calibrated_capacity(self.chain, self.packet_size, self.n_flows)

    def rate_pps(self) -> float:
        """Offered packet rate implied by ``load``."""
        return self.load * self.n_paths * self.path_capacity_pps()

    def mean_off_us(self) -> float:
        """OFF period making the ON/OFF source's peak = burstiness * mean.

        duty = on/(on+off) = 1/burstiness  =>  off = on * (burstiness-1).
        """
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        return self.mean_on * (self.burstiness - 1.0)


@dataclass
class SimulationResult:
    """Output of one :func:`simulate` call."""

    config: ScenarioConfig
    summary: LatencySummary
    stats: Dict
    host: MultipathDataPlane
    tracker: Optional[FlowTracker]
    offered: int  # packets offered by the source
    sim_time: float
    #: Availability report (fault runs only; see repro.metrics.availability).
    availability: Optional[Dict] = None

    @property
    def p99(self) -> float:
        return self.summary.p99

    @property
    def p999(self) -> float:
        return self.summary.p999

    def exact_percentile(self, pct) -> float:
        return self.host.sink.recorder.exact_percentile(pct)

    def goodput_gbps(self) -> float:
        return self.host.sink.throughput.mean_gbps()

    def delivered_pps(self) -> float:
        return self.host.sink.throughput.mean_pps()


_CAPACITY_CACHE: Dict = {}


def _calibrated_capacity(chain_name: str, packet_size: int, n_flows: int) -> float:
    """Measure one path's sustainable pps by replaying steady-state traffic
    through a fresh chain replica (flow cache included)."""
    key = (chain_name, packet_size, n_flows)
    cached = _CAPACITY_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.dataplane.vswitch import FlowCache
    from repro.net.packet import FiveTuple, PacketFactory

    rng = np.random.default_rng(0xCA11B)
    chain = standard_chain(chain_name, rng)
    fc = FlowCache("calib.fc")
    factory = PacketFactory()
    tuples = [FiveTuple(0, 1, 1024 + i, 80) for i in range(n_flows)]
    n_warm, n_measure = 2 * n_flows, 4096
    total = 0.0
    for i in range(n_warm + n_measure):
        pkt = factory.make(tuples[i % n_flows], packet_size, 0.0,
                           flow_id=i % n_flows, seq=i)
        cost = fc.process(pkt, 0.0) + chain.process(pkt, 0.0)
        if i >= n_warm:
            total += cost
    # Charge the full per-batch overhead: below saturation the poller
    # mostly serves singleton batches, so it is not amortized.  (Under
    # backlog real batching makes effective capacity higher than this,
    # which errs on the safe side for load calibration.)
    per_pkt = total / n_measure + 0.25
    capacity = 1e6 / per_pkt
    _CAPACITY_CACHE[key] = capacity
    return capacity


def simulate(config: ScenarioConfig) -> SimulationResult:
    """Run one scenario to completion and collect results."""
    sim = Simulator()
    rngs = RngRegistry(seed=config.seed)
    tracker = FlowTracker() if config.traffic == "flows" else None

    mpdp_kw = dict(
        n_paths=config.n_paths,
        policy=config.policy,
        chain=config.chain,
        path=PathConfig(jitter=config.jitter),
        warmup=config.warmup,
    )
    mpdp_kw.update(config.mpdp_overrides)
    host = MultipathDataPlane(sim, MpdpConfig(**mpdp_kw), rngs, tracker=tracker)

    if config.interfere_intensity > 0:
        from repro.dataplane.interference import NoisyNeighbor

        victim = host.paths[config.interfere_path % len(host.paths)].vcpu
        neighbor = NoisyNeighbor(
            sim, victim, config.jitter, intensity=config.interfere_intensity
        )
        start = config.interfere_start_frac * config.duration
        end = config.interfere_end_frac * config.duration
        neighbor.schedule_burst(start, end - start)

    injector = None
    if config.faults is not None and not config.faults.empty:
        from repro.faults import FaultInjector

        injector = FaultInjector(sim, host, config.faults,
                                 rng=rngs.stream("faults"))
        injector.install(horizon=config.duration + config.drain)

    src = _make_source(sim, host, rngs, config, tracker)
    src.start()
    sim.run(until=config.duration + config.drain)
    host.finalize()

    availability = None
    if injector is not None:
        availability = _availability_report(injector, host, sim.now)

    return SimulationResult(
        config=config,
        summary=host.sink.recorder.summary(),
        stats=host.stats(),
        host=host,
        tracker=tracker,
        offered=src.stats.packets,
        sim_time=sim.now,
        availability=availability,
    )


def _availability_report(injector, host, horizon: float) -> Dict:
    """Merge tracker timings with data-plane loss/reroute accounting."""
    path_ids = [p.path_id for p in host.paths]
    out = injector.tracker.summary(horizon=horizon, targets=path_ids)
    ctl = host.controller
    if ctl is not None:
        out["ejections"] = ctl.ejections
        out["reinstatements"] = ctl.reinstatements
        out["rerouted"] = ctl.rerouted
    out["lost_to_faults"] = (
        sum(p.fault_dropped for p in host.paths) + host.nic.fault_dropped
    )
    out["timeline"] = list(injector.timeline)
    return out


def _make_source(sim, host, rngs, cfg: ScenarioConfig, tracker):
    rng = rngs.stream("traffic")
    common = dict(n_flows=cfg.n_flows, duration=cfg.duration)
    if cfg.traffic == "poisson":
        return PoissonSource(
            sim, host.factory, host.input, rng,
            rate_pps=cfg.rate_pps(), size=cfg.packet_size, **common,
        )
    if cfg.traffic == "onoff":
        duty = cfg.mean_on / (cfg.mean_on + cfg.mean_off_us())
        peak = cfg.rate_pps() / duty
        return OnOffSource(
            sim, host.factory, host.input, rng,
            peak_rate_pps=peak, mean_on=cfg.mean_on, mean_off=cfg.mean_off_us(),
            size=cfg.packet_size, **common,
        )
    if cfg.traffic == "incast":
        return IncastSource(
            sim, host.factory, host.input, rng,
            fan_in=cfg.fan_in, burst_pkts=cfg.burst_pkts, epoch=cfg.epoch,
            size=cfg.packet_size, duration=cfg.duration,
        )
    if cfg.traffic == "flows":
        cdf = workload_by_name(cfg.workload)
        mean_size = cdf.mean(n_mc=100_000)
        # Aggregate byte capacity of the host (B/µs): derive from pps.
        agg_Bpu = cfg.n_paths * cfg.path_capacity_pps() * cfg.packet_size / 1e6
        fps = cfg.flow_load * agg_Bpu * 1e6 / mean_size
        return FlowSource(
            sim, host.factory, host.input, rng,
            flow_rate_fps=fps, size_cdf=cdf, tracker=tracker,
            max_flow_pkts=cfg.max_flow_pkts, duration=cfg.duration,
        )
    raise ValueError(f"unknown traffic kind {cfg.traffic!r}")
