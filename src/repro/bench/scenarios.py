"""Canned experiment scenarios.

:func:`run_scenario` is the one-call experiment runner every figure
uses (via the :func:`repro.run` facade): it
builds a host from a :class:`ScenarioConfig`, attaches the requested
traffic source, runs the simulation, and returns a
:class:`SimulationResult` with everything the analyses need.

Load convention
---------------
``load`` is the offered utilization of **one** path's service capacity
aggregated across k paths: ``rate_pps = load * k * path_capacity_pps``.
Path capacity is derived from the chain's expected per-packet cost, so
``load=0.9, policy=single, n_paths=1`` genuinely means a 90%-utilized
single path, and the same load against k=4 offers 4x the packets.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.mpdp import MpdpConfig, MultipathDataPlane
from repro.core.policies import Policy
from repro.dataplane.path import PathConfig
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.elements.nf import standard_chain
from repro.metrics.stats import LatencySummary
from repro.net.flow import FlowTracker
from repro.net.traffic import FlowSource, IncastSource, OnOffSource, PoissonSource
from repro.net.workloads import workload_by_name
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Traffic source kinds :func:`run_scenario` understands.
TRAFFIC_KINDS = ("poisson", "onoff", "incast", "flows")


@dataclass
class ScenarioConfig:
    """Everything one experiment run needs.

    Attributes
    ----------
    policy / n_paths / jitter / chain:
        Host shape (see :class:`MpdpConfig`).
    traffic:
        ``"poisson"``, ``"onoff"``, ``"incast"`` or ``"flows"``.
    load:
        Offered utilization (see module docstring); ignored for
        ``incast`` and ``flows`` (which use their own knobs).
    duration:
        Traffic duration (µs); measurement continues until drained.
    warmup:
        Latency samples before this time are discarded.
    """

    policy: str | Dict | Policy = "adaptive"
    n_paths: int = 4
    jitter: JitterParams = field(default_factory=lambda: SHARED_CORE)
    chain: str = "basic"
    traffic: str = "poisson"
    load: float = 0.6
    duration: float = 100_000.0
    warmup: float = 10_000.0
    seed: int = 42
    n_flows: int = 256
    packet_size: int = 1554
    # ON/OFF knobs
    burstiness: float = 2.0  # peak rate multiplier over mean
    mean_on: float = 300.0
    # incast knobs
    fan_in: int = 16
    burst_pkts: int = 8
    epoch: float = 2_000.0
    # flow-workload knobs
    workload: str = "websearch"
    flow_load: float = 0.4  # fraction of aggregate bandwidth
    max_flow_pkts: int = 500
    # interference: contention factor applied to one path's core for the
    # middle [start_frac, end_frac] of the run (0 disables)
    interfere_intensity: float = 0.0
    interfere_path: int = 0
    interfere_start_frac: float = 0.25
    interfere_end_frac: float = 0.75
    # fault injection: a FaultSchedule (see repro.faults) installed over
    # the whole run; None = no faults, nothing armed, zero overhead.
    # Installing a schedule also enables controller ejection/recovery.
    faults: Optional[object] = None
    # service-level objectives: an SloSpec (see repro.slo) measured over
    # the run; None = no tracker installed, zero overhead.  Specs with
    # autotune/start_paths also arm the SloAutotuner control process.
    slo: Optional[object] = None
    # host extras
    mpdp_overrides: Dict = field(default_factory=dict)
    drain: float = 20_000.0

    def path_capacity_pps(self) -> float:
        """Packets/second one path sustains (no jitter), measured.

        Analytic ``chain.mean_cost`` undershoots reality (DPI deep
        scans, NAT state, cache warmth), so capacity is calibrated by
        driving a few thousand steady-state packets through a throwaway
        chain replica -- cached per (chain, packet_size).
        """
        return _calibrated_capacity(self.chain, self.packet_size, self.n_flows)

    def rate_pps(self) -> float:
        """Offered packet rate implied by ``load``."""
        return self.load * self.n_paths * self.path_capacity_pps()

    def mean_off_us(self) -> float:
        """OFF period making the ON/OFF source's peak = burstiness * mean.

        duty = on/(on+off) = 1/burstiness  =>  off = on * (burstiness-1).
        """
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        return self.mean_on * (self.burstiness - 1.0)

    # -- validation -----------------------------------------------------
    def validate(self) -> "ScenarioConfig":
        """Check every field, raising ``ValueError`` with an actionable
        message on the first problem.  Returns ``self`` for chaining.

        :func:`repro.run` calls this up front so bad names or
        non-positive knobs fail immediately instead of deep inside the
        engine.
        """
        from repro.core.policies import POLICY_NAMES, POLICY_REGISTRY, Policy
        from repro.elements.nf import STANDARD_CHAINS

        if isinstance(self.policy, str):
            if self.policy not in POLICY_REGISTRY:
                raise ValueError(
                    f"unknown policy {self.policy!r}; "
                    f"available: {', '.join(POLICY_NAMES)}"
                )
        elif isinstance(self.policy, dict):
            name = self.policy.get("name")
            if name not in POLICY_REGISTRY:
                raise ValueError(
                    f"unknown policy {name!r} in spec mapping; "
                    f"available: {', '.join(POLICY_NAMES)}"
                )
        elif not isinstance(self.policy, Policy):
            raise ValueError(
                f"policy must be a registry name, a spec mapping with a "
                f"'name' key, or a Policy instance, "
                f"got {type(self.policy).__name__}"
            )
        if isinstance(self.chain, str) and self.chain not in STANDARD_CHAINS:
            raise ValueError(
                f"unknown chain {self.chain!r}; "
                f"available: {', '.join(sorted(STANDARD_CHAINS))}"
            )
        if self.traffic not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {self.traffic!r}; "
                f"available: {', '.join(TRAFFIC_KINDS)}"
            )
        if self.n_paths < 1:
            raise ValueError(f"n_paths must be >= 1, got {self.n_paths}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive (µs), got {self.duration}")
        if self.warmup < 0 or self.drain < 0:
            raise ValueError(
                f"warmup/drain must be >= 0 (µs), got "
                f"warmup={self.warmup}, drain={self.drain}"
            )
        if self.packet_size <= 0:
            raise ValueError(f"packet_size must be positive bytes, got {self.packet_size}")
        if self.n_flows < 1:
            raise ValueError(f"n_flows must be >= 1, got {self.n_flows}")
        if self.interfere_intensity < 0:
            raise ValueError(
                f"interfere_intensity must be >= 0, got {self.interfere_intensity}"
            )
        if self.traffic in ("poisson", "onoff") and self.load <= 0:
            raise ValueError(
                f"load must be positive for {self.traffic!r} traffic, "
                f"got {self.load}"
            )
        if self.traffic == "onoff":
            if self.burstiness < 1.0:
                raise ValueError(f"burstiness must be >= 1, got {self.burstiness}")
            if self.mean_on <= 0:
                raise ValueError(f"mean_on must be positive (µs), got {self.mean_on}")
        if self.traffic == "incast":
            if self.fan_in < 1 or self.burst_pkts < 1:
                raise ValueError(
                    f"incast fan_in/burst_pkts must be >= 1, got "
                    f"fan_in={self.fan_in}, burst_pkts={self.burst_pkts}"
                )
            if self.epoch <= 0:
                raise ValueError(f"epoch must be positive (µs), got {self.epoch}")
        if self.traffic == "flows":
            from repro.net.workloads import workload_by_name

            try:
                workload_by_name(self.workload)
            except KeyError as exc:
                raise ValueError(str(exc).strip('"')) from None
            if self.flow_load <= 0:
                raise ValueError(
                    f"flow_load must be positive, got {self.flow_load}"
                )
            if self.max_flow_pkts < 1:
                raise ValueError(
                    f"max_flow_pkts must be >= 1, got {self.max_flow_pkts}"
                )
        if self.faults is not None and not hasattr(self.faults, "empty"):
            raise ValueError(
                f"faults must be None or a FaultSchedule, "
                f"got {type(self.faults).__name__}"
            )
        if self.slo is not None:
            if not hasattr(self.slo, "objectives"):
                raise ValueError(
                    f"slo must be None or an SloSpec, "
                    f"got {type(self.slo).__name__}"
                )
            self.slo.validate()
        return self

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`).

        Units are the dataclass units: every time in µs, sizes in bytes,
        ``load``/``flow_load`` as utilization fractions.  ``jitter``
        serializes via :meth:`JitterParams.to_dict` and ``faults`` via
        :meth:`FaultSchedule.to_dict`.  Only by-name policies serialize:
        configured policy *objects* (custom detectors, timeouts) have no
        declarative form and raise ``TypeError``.
        """
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "policy":
                if not isinstance(value, str):
                    raise TypeError(
                        "only by-name policies are serializable; got a "
                        f"{type(value).__name__} instance"
                    )
                out["policy"] = value
            elif f.name == "jitter":
                out["jitter"] = value.to_dict()
            elif f.name in ("faults", "slo"):
                out[f.name] = None if value is None else value.to_dict()
            elif f.name == "mpdp_overrides":
                out["mpdp_overrides"] = dict(value)
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioConfig":
        """Build a config from :meth:`to_dict`-shaped (JSON) data.

        ``jitter`` may be a profile name (``"shared"``) or a parameter
        dict; ``faults`` a :meth:`FaultSchedule.to_dict` payload or
        ``None``.  Unknown keys raise ``ValueError`` naming the closest
        valid field set.
        """
        from repro.dataplane.vcpu import JitterParams
        from repro.faults import FaultSchedule

        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown ScenarioConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(names)}"
            )
        kw = dict(data)
        if "jitter" in kw and kw["jitter"] is not None:
            kw["jitter"] = JitterParams.from_dict(kw["jitter"])
        if kw.get("faults") is not None and not hasattr(kw["faults"], "empty"):
            kw["faults"] = FaultSchedule.from_dict(kw["faults"])
        if kw.get("slo") is not None and not hasattr(kw["slo"], "objectives"):
            from repro.slo import SloSpec

            kw["slo"] = SloSpec.from_dict(kw["slo"])
        return cls(**kw)


@dataclass
class SimulationResult:
    """Output of one :func:`repro.run` / :func:`run_scenario` call."""

    config: ScenarioConfig
    summary: LatencySummary
    stats: Dict
    host: Optional[MultipathDataPlane]
    tracker: Optional[FlowTracker]
    offered: int  # packets offered by the source
    sim_time: float
    #: Availability report (fault runs only; see repro.metrics.availability).
    availability: Optional[Dict] = None
    #: Derived values captured at serialization time; set by
    #: :meth:`from_dict` so round-tripped results (``host is None``) keep
    #: answering :meth:`exact_percentile` / :meth:`goodput_gbps`.
    restored: Optional[Dict] = None
    #: Observability bundle (:class:`repro.obs.Telemetry`) when the run
    #: was instrumented; ``None`` otherwise.  Deliberately excluded from
    #: :meth:`to_dict` -- telemetry is an observation of the run, not
    #: part of the result contract, so artifacts stay byte-identical
    #: whether or not a run was traced.
    telemetry: Optional[object] = None
    #: SLO attainment report (runs with ``config.slo`` only; see
    #: :class:`repro.slo.SloTracker.report`).  Serialized only when
    #: present, so pre-SLO result payloads stay byte-identical.
    slo_report: Optional[Dict] = None
    #: Invariant-engine report (runs with checking armed only; see
    #: :meth:`repro.check.InvariantEngine.report`).  Serialized only
    #: when present -- checking is an observation, so unchecked payloads
    #: stay byte-identical.
    check_report: Optional[Dict] = None
    #: Tail-attribution report (runs with forensics armed only; see
    #: :func:`repro.obs.forensics.attribute_tail`).  Serialized only
    #: when present -- forensics is post-processing over telemetry, so
    #: un-forensicated payloads stay byte-identical.
    forensics_report: Optional[Dict] = None

    #: Exact-percentile keys available after a round-trip.
    EXACT_KEYS = ((50.0, "p50"), (90.0, "p90"), (95.0, "p95"),
                  (99.0, "p99"), (99.9, "p999"))

    @property
    def p99(self) -> float:
        return self.summary.p99

    @property
    def p999(self) -> float:
        return self.summary.p999

    def exact_percentile(self, pct) -> float:
        if self.host is not None:
            return self.host.sink.recorder.exact_percentile(pct)
        for value, key in self.EXACT_KEYS:
            if float(pct) == value:
                return self.restored["exact"][key]
        raise KeyError(
            f"percentile {pct} not retained by to_dict(); available: "
            f"{[v for v, _ in self.EXACT_KEYS]}"
        )

    def goodput_gbps(self) -> float:
        if self.host is not None:
            return self.host.sink.throughput.mean_gbps()
        return self.restored["goodput_gbps"]

    def delivered_pps(self) -> float:
        if self.host is not None:
            return self.host.sink.throughput.mean_pps()
        return self.restored["delivered_pps"]

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`).

        Stable key names shared by sweep artifacts, the files under
        ``benchmarks/results/`` and the figure code.  Units follow the
        config: latencies and ``sim_time`` in µs, ``goodput_gbps`` in
        Gbit/s, ``delivered_pps`` in packets/s.  The live ``host`` and
        ``tracker`` objects do not serialize; exact reservoir
        percentiles (:data:`EXACT_KEYS`) and throughput are captured so
        the round-tripped result still answers the standard queries.
        """
        from repro import schemas

        out = {
            "schema_version": schemas.version_for("simulation_result"),
            "config": self.config.to_dict(),
            "summary": self.summary.to_dict(),
            "stats": self.stats,
            "offered": self.offered,
            "delivered": self.stats["delivered"],
            "sim_time": self.sim_time,
            "availability": self.availability,
            "exact": {key: float(self.exact_percentile(pct))
                      for pct, key in self.EXACT_KEYS},
            "goodput_gbps": float(self.goodput_gbps()),
            "delivered_pps": float(self.delivered_pps()),
        }
        if self.slo_report is not None:
            out["slo_report"] = self.slo_report
        if self.check_report is not None:
            out["check_report"] = self.check_report
        if self.forensics_report is not None:
            out["forensics_report"] = self.forensics_report
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a (host-less) result from :meth:`to_dict` output.

        Rejects payloads whose ``schema_version`` has an unsupported
        major version (see :mod:`repro.schemas`); payloads written
        before versioning existed load as before.
        """
        from repro import schemas

        schemas.check_version(data, "simulation_result")
        return cls(
            config=ScenarioConfig.from_dict(data["config"]),
            summary=LatencySummary.from_dict(data["summary"]),
            stats=data["stats"],
            host=None,
            tracker=None,
            offered=int(data["offered"]),
            sim_time=float(data["sim_time"]),
            availability=data.get("availability"),
            restored={
                "exact": dict(data.get("exact", {})),
                "goodput_gbps": float(data.get("goodput_gbps", 0.0)),
                "delivered_pps": float(data.get("delivered_pps", 0.0)),
            },
            slo_report=data.get("slo_report"),
            check_report=data.get("check_report"),
            forensics_report=data.get("forensics_report"),
        )


_CAPACITY_CACHE: Dict = {}


def _calibrated_capacity(chain_name: str, packet_size: int, n_flows: int) -> float:
    """Measure one path's sustainable pps by replaying steady-state traffic
    through a fresh chain replica (flow cache included)."""
    key = (chain_name, packet_size, n_flows)
    cached = _CAPACITY_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.dataplane.vswitch import FlowCache
    from repro.net.packet import FiveTuple, PacketFactory

    rng = np.random.default_rng(0xCA11B)
    chain = standard_chain(chain_name, rng)
    fc = FlowCache("calib.fc")
    factory = PacketFactory()
    tuples = [FiveTuple(0, 1, 1024 + i, 80) for i in range(n_flows)]
    n_warm, n_measure = 2 * n_flows, 4096
    total = 0.0
    for i in range(n_warm + n_measure):
        pkt = factory.make(tuples[i % n_flows], packet_size, 0.0,
                           flow_id=i % n_flows, seq=i)
        cost = fc.process(pkt, 0.0) + chain.process(pkt, 0.0)
        if i >= n_warm:
            total += cost
    # Charge the full per-batch overhead: below saturation the poller
    # mostly serves singleton batches, so it is not amortized.  (Under
    # backlog real batching makes effective capacity higher than this,
    # which errs on the safe side for load calibration.)
    per_pkt = total / n_measure + 0.25
    capacity = 1e6 / per_pkt
    _CAPACITY_CACHE[key] = capacity
    return capacity


class ScenarioRuntime:
    """One fully-built scenario host, not yet (or partially) run.

    :func:`build_runtime` assembles everything :func:`run_scenario`
    needs -- simulator, RNG registry, data plane, traffic source,
    injector/SLO/check/telemetry attachments -- without advancing the
    clock, so callers control the run loop.  ``run_scenario`` drives it
    to completion in one ``sim.run``; the cluster engine
    (:mod:`repro.cluster`) instead steps it epoch by epoch with
    :meth:`Simulator.run_epoch`, exchanging cross-host envelopes at
    each barrier.  Splitting build from run is what lets every shard
    reuse the single-host engine *unmodified*.
    """

    __slots__ = ("config", "sim", "rngs", "host", "tracker", "src",
                 "engine", "telemetry", "injector", "slo_tracker",
                 "forensics_spec", "_wall_start", "_finalized")

    def __init__(self, config, sim, rngs, host, tracker, src, engine,
                 telemetry, injector, slo_tracker, forensics_spec,
                 wall_start) -> None:
        self.config = config
        self.sim = sim
        self.rngs = rngs
        self.host = host
        self.tracker = tracker
        self.src = src
        self.engine = engine
        self.telemetry = telemetry
        self.injector = injector
        self.slo_tracker = slo_tracker
        self.forensics_spec = forensics_spec
        self._wall_start = wall_start
        self._finalized = False

    @property
    def horizon(self) -> float:
        """Nominal run end (traffic duration + drain), in µs."""
        return self.config.duration + self.config.drain

    def start(self) -> None:
        """Begin traffic emission (does not advance the clock)."""
        self.src.start()

    def finalize(self) -> SimulationResult:
        """Close out the run and build the :class:`SimulationResult`.

        Call exactly once, after the event loop has been driven to the
        horizon (by ``sim.run`` or a sequence of ``run_epoch`` calls).
        """
        if self._finalized:
            raise RuntimeError("ScenarioRuntime.finalize() called twice")
        self._finalized = True
        host, sim, config = self.host, self.sim, self.config
        host.finalize()
        if self.engine is not None:
            self.engine.finalize()

        availability = None
        if self.injector is not None:
            availability = _availability_report(self.injector, host, sim.now)

        if self.telemetry is not None:
            try:
                config_dict = config.to_dict()
            except TypeError:  # policy objects have no declarative form
                config_dict = None
            self.telemetry.finalize(
                host,
                config=config_dict,
                seed=config.seed,
                injector=self.injector,
                wall_s=_time.perf_counter() - self._wall_start,
            )
            if self.slo_tracker is not None:
                self.slo_tracker.emit_events(self.telemetry)

        result = SimulationResult(
            config=config,
            summary=host.sink.recorder.summary(),
            stats=host.stats(),
            host=host,
            tracker=self.tracker,
            offered=self.src.stats.packets,
            sim_time=sim.now,
            availability=availability,
            telemetry=self.telemetry,
            slo_report=(self.slo_tracker.report()
                        if self.slo_tracker is not None else None),
            check_report=(self.engine.report()
                          if self.engine is not None else None),
        )
        if self.forensics_spec is not None:
            from repro.obs.forensics import attribute_tail

            result.forensics_report = attribute_tail(result,
                                                     self.forensics_spec)
            self.telemetry.forensics = result.forensics_report
        return result


def build_runtime(config: ScenarioConfig,
                  telemetry=None,
                  check=None,
                  recycle: bool = True,
                  forensics=None,
                  sink=None,
                  scheduler=None) -> ScenarioRuntime:
    """Build (but do not run) one scenario host; see :class:`ScenarioRuntime`.

    ``sink`` overrides where the traffic source delivers packets
    (default: the host's own data-plane ingress).  The cluster engine
    passes its per-host router here so flows can be steered to remote
    hosts across the fabric; single-host runs leave it ``None``.
    ``scheduler`` picks the event-scheduler backend (``"heap"`` or
    ``"calendar"``; ``None`` resolves via ``REPRO_SCHEDULER`` and
    defaults to ``"calendar"``) -- backends dispatch in the exact same
    order, so the result payload is bit-identical either way.
    """
    forensics_spec = None
    if forensics is not None and forensics is not False:
        from repro.obs.forensics import ForensicsSpec

        forensics_spec = (forensics if isinstance(forensics, ForensicsSpec)
                          else ForensicsSpec()).validate()
        if telemetry is None:
            from repro.obs import Telemetry

            telemetry = Telemetry()
    config.validate()
    wall_start = _time.perf_counter() if telemetry is not None else 0.0
    sim = Simulator(scheduler=scheduler)
    rngs = RngRegistry(seed=config.seed)
    tracker = FlowTracker() if config.traffic == "flows" else None

    mpdp_kw = dict(
        n_paths=config.n_paths,
        policy=config.policy,
        chain=config.chain,
        path=PathConfig(jitter=config.jitter),
        warmup=config.warmup,
    )
    mpdp_kw.update(config.mpdp_overrides)
    host = MultipathDataPlane(sim, MpdpConfig(**mpdp_kw), rngs, tracker=tracker,
                              telemetry=telemetry)
    if recycle:
        # The harness retains no Packet objects past delivery, so
        # terminal packets can be recycled through the factory free list.
        host.enable_packet_recycling()
    engine = None
    if check is not None and check is not False:
        from repro.check.invariants import InvariantEngine
        from repro.check.spec import CheckSpec

        if isinstance(check, InvariantEngine):
            engine = check
        elif isinstance(check, CheckSpec):
            engine = InvariantEngine(check)
        elif check is True:
            engine = InvariantEngine()
        else:
            raise ValueError(
                f"check must be None, a bool, a CheckSpec, or an "
                f"InvariantEngine, got {type(check).__name__}"
            )
        engine.attach(sim, host)
    if telemetry is not None:
        telemetry.attach(sim, horizon=config.duration + config.drain)

    if config.interfere_intensity > 0:
        from repro.dataplane.interference import NoisyNeighbor

        victim = host.paths[config.interfere_path % len(host.paths)].vcpu
        neighbor = NoisyNeighbor(
            sim, victim, config.jitter, intensity=config.interfere_intensity
        )
        start = config.interfere_start_frac * config.duration
        end = config.interfere_end_frac * config.duration
        neighbor.schedule_burst(start, end - start)

    injector = None
    if config.faults is not None and not config.faults.empty:
        from repro.faults import FaultInjector

        injector = FaultInjector(sim, host, config.faults,
                                 rng=rngs.stream("faults"))
        injector.install(horizon=config.duration + config.drain)

    slo_tracker = None
    if config.slo is not None:
        from repro.slo import SloTracker

        slo_tracker = SloTracker(sim, config.slo, host, warmup=config.warmup)
        slo_tracker.start()

    src = _make_source(sim, host, rngs, config, tracker, sink=sink)
    return ScenarioRuntime(config, sim, rngs, host, tracker, src, engine,
                           telemetry, injector, slo_tracker, forensics_spec,
                           wall_start)


def run_scenario(config: ScenarioConfig,
                 telemetry=None,
                 check=None,
                 recycle: bool = True,
                 forensics=None,
                 scheduler=None) -> SimulationResult:
    """Run one scenario to completion and collect results.

    This is the engine-room entry point behind :func:`repro.run`; call
    that facade instead unless you are inside ``repro.bench`` itself.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) instruments the run:
    stage spans, metric snapshots and fault/control instant events are
    collected into the bundle and attached to the result.  ``check``
    (``True`` or a :class:`repro.check.CheckSpec`) arms the runtime
    invariant engine and attaches its report; ``recycle=False`` disables
    terminal-packet recycling.  ``forensics`` (``True`` or a
    :class:`~repro.obs.forensics.ForensicsSpec`) runs tail attribution
    after the run and attaches ``result.forensics_report``; it needs
    telemetry and attaches a default :class:`~repro.obs.Telemetry` when
    none was passed.  All of these are *observation/harness* parameters,
    deliberately not part of :class:`ScenarioConfig`: the simulated
    trajectory, the result payload and all cache keys are bit-identical
    whichever way they are set.
    """
    rt = build_runtime(config, telemetry=telemetry, check=check,
                       recycle=recycle, forensics=forensics,
                       scheduler=scheduler)
    rt.start()
    rt.sim.run(until=rt.horizon)
    return rt.finalize()


def _availability_report(injector, host, horizon: float) -> Dict:
    """Merge tracker timings with data-plane loss/reroute accounting."""
    path_ids = [p.path_id for p in host.paths]
    out = injector.tracker.summary(horizon=horizon, targets=path_ids)
    ctl = host.controller
    if ctl is not None:
        out["ejections"] = ctl.ejections
        out["reinstatements"] = ctl.reinstatements
        out["rerouted"] = ctl.rerouted
    out["lost_to_faults"] = (
        sum(p.fault_dropped for p in host.paths) + host.nic.fault_dropped
    )
    out["timeline"] = list(injector.timeline)
    return out


def _make_source(sim, host, rngs, cfg: ScenarioConfig, tracker, sink=None):
    rng = rngs.stream("traffic")
    if sink is None:
        sink = host.input
    common = dict(n_flows=cfg.n_flows, duration=cfg.duration)
    if cfg.traffic == "poisson":
        return PoissonSource(
            sim, host.factory, sink, rng,
            rate_pps=cfg.rate_pps(), size=cfg.packet_size, **common,
        )
    if cfg.traffic == "onoff":
        duty = cfg.mean_on / (cfg.mean_on + cfg.mean_off_us())
        peak = cfg.rate_pps() / duty
        return OnOffSource(
            sim, host.factory, sink, rng,
            peak_rate_pps=peak, mean_on=cfg.mean_on, mean_off=cfg.mean_off_us(),
            size=cfg.packet_size, **common,
        )
    if cfg.traffic == "incast":
        return IncastSource(
            sim, host.factory, sink, rng,
            fan_in=cfg.fan_in, burst_pkts=cfg.burst_pkts, epoch=cfg.epoch,
            size=cfg.packet_size, duration=cfg.duration,
        )
    if cfg.traffic == "flows":
        cdf = workload_by_name(cfg.workload)
        mean_size = cdf.mean(n_mc=100_000)
        # Aggregate byte capacity of the host (B/µs): derive from pps.
        agg_Bpu = cfg.n_paths * cfg.path_capacity_pps() * cfg.packet_size / 1e6
        fps = cfg.flow_load * agg_Bpu * 1e6 / mean_size
        return FlowSource(
            sim, host.factory, sink, rng,
            flow_rate_fps=fps, size_cdf=cdf, tracker=tracker,
            max_flow_pkts=cfg.max_flow_pkts, duration=cfg.duration,
        )
    raise ValueError(f"unknown traffic kind {cfg.traffic!r}")
