"""Sweep helpers and environment-based scaling.

``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies every experiment's
traffic duration: set 0.2 for a quick smoke pass, 5 for tighter tails.
All figure functions route their durations through
:func:`scaled_duration` so one knob scales the whole suite.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, Iterable, List, Sequence

from repro.bench.scenarios import ScenarioConfig, SimulationResult, run_scenario


def bench_scale() -> float:
    """Current duration scale factor (env ``REPRO_BENCH_SCALE``)."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        raise ValueError("REPRO_BENCH_SCALE must be a float") from None
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


def scaled_duration(base_us: float) -> float:
    """Scale a baseline duration by the bench scale factor."""
    return base_us * bench_scale()


def sweep(
    base: ScenarioConfig,
    param: str,
    values: Sequence,
    **fixed_overrides,
) -> List[SimulationResult]:
    """Run ``base`` once per value of ``param``; returns results in order.

    ``fixed_overrides`` are applied to every run (dataclass field names).
    """
    out = []
    for v in values:
        cfg = dataclasses.replace(base, **{param: v}, **fixed_overrides)
        out.append(run_scenario(cfg))
    return out


def grid(
    base: ScenarioConfig,
    param_a: str,
    values_a: Sequence,
    param_b: str,
    values_b: Sequence,
) -> Dict:
    """2-D sweep: returns ``{(a, b): result}``."""
    out = {}
    for a in values_a:
        for b in values_b:
            cfg = dataclasses.replace(base, **{param_a: a, param_b: b})
            out[(a, b)] = run_scenario(cfg)
    return out


def replicate(
    base: ScenarioConfig,
    n_seeds: int = 5,
    metric: Callable[[SimulationResult], float] = lambda r: r.exact_percentile(99),
    seed0: int = 1000,
) -> Dict[str, float]:
    """Run ``base`` under ``n_seeds`` independent seeds and summarize
    ``metric`` across them: ``{mean, std, min, max, values}``.

    Tail percentiles are noisy functionals; any headline factor worth
    publishing should be checked across seeds with this helper.
    """
    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    values = []
    for i in range(n_seeds):
        cfg = dataclasses.replace(base, seed=seed0 + i)
        values.append(float(metric(run_scenario(cfg))))
    import numpy as np

    arr = np.array(values)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if n_seeds > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "values": values,
    }


def policy_comparison(
    base: ScenarioConfig,
    policies: Iterable[str],
    single_path_baseline: bool = True,
) -> Dict[str, SimulationResult]:
    """Run the same workload under each policy.

    ``single`` runs with ``n_paths=1`` (it *is* the one-lane baseline);
    every other policy keeps the base path count.
    """
    out: Dict[str, SimulationResult] = {}
    for policy in policies:
        overrides = {"policy": policy}
        if policy == "single" and single_path_baseline:
            overrides["n_paths"] = 1
        cfg = dataclasses.replace(base, **overrides)
        out[policy] = run_scenario(cfg)
    return out
