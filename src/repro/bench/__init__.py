"""Experiment harness: scenario builders, runners, figure regeneration.

The benchmark suite under ``benchmarks/`` is a thin pytest-benchmark
wrapper around this package; everything that decides *what* an experiment
runs lives here so it is importable, testable, and reusable from
notebooks or scripts.

* :mod:`~repro.bench.scenarios` -- canned host+workload builders with a
  single entry point, :func:`repro.run` (engine room:
  :func:`~repro.bench.scenarios.run_scenario`);
* :mod:`~repro.bench.runner` -- run/sweep helpers, result records,
  environment-based scaling of experiment durations;
* :mod:`~repro.bench.figures` -- one function per reconstructed figure
  and table (F1-F8, T1-T2, A1-A3), each returning rendered text plus the
  raw series, used by both the bench suite and EXPERIMENTS.md.
"""

from repro.bench.scenarios import (
    ScenarioConfig,
    ScenarioRuntime,
    SimulationResult,
    build_runtime,
    run_scenario,
)
from repro.bench.runner import bench_scale, scaled_duration, sweep

__all__ = [
    "ScenarioConfig",
    "ScenarioRuntime",
    "build_runtime",
    "run_scenario",
    "SimulationResult",
    "bench_scale",
    "scaled_duration",
    "sweep",
]
