"""Cluster experiments: rack-scale composition of the two multipath layers.

* **C1** (:func:`c1_cluster_scale`): a hosts × load grid under the
  uniform pattern -- every flow picks a destination uniformly over all
  hosts, so ``(N-1)/N`` of traffic crosses the fabric.  Reports the
  cluster-wide tail and the aggregate delivered packet rate, plus the
  envelope accounting that the cross-shard conservation identity makes
  exact.  Expected shape: aggregate pps scales ~linearly with the host
  count at fixed load (hosts are independent last miles), while the
  cluster p99 tracks the single-host p99 at the same load plus the
  fabric's base latency for the remote fraction.
* **C2** (:func:`c2_incast_fanin`): the classic fan-in hotspot --
  every non-target host directs *all* its flows at one target, so the
  target's last mile absorbs ``N-1`` senders' load on top of fabric
  skew.  Compares intra-host policies on the target under identical
  offered load.  Expected shape: the target's tail dominates the
  cluster tail; adaptive multipath absorbs the fan-in at full delivery
  while single-path saturates -- delivery collapses and every
  *surviving* packet pays a nearly-full bounded queue (median within a
  small factor of the tail).  The honest comparison is delivery +
  median, not survivor p99: a policy that drops half the offered load
  has an infinite p99 over *offered* packets however its survivors
  fare -- the paper's last-mile argument, reproduced at rack scale.

Both experiments run through :func:`repro.cluster.run_cluster`, so the
numbers here are the same bit-identical payloads the determinism gate
checks at ``workers=1`` vs ``workers=4``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.runner import scaled_duration
from repro.bench.scenarios import ScenarioConfig
from repro.cluster import ClusterConfig, run_cluster
from repro.metrics.report import Table
from repro.net.fabric import FabricConfig


def _host_template(duration: float, *, policy: str = "adaptive",
                   load: float = 0.6, floor: float = 0.0) -> ScenarioConfig:
    """The per-host scenario every cluster cell shares (heavy chain,
    15% warmup, scaled duration -- the same conventions as the
    single-host figures).  ``floor`` bounds how far ``REPRO_BENCH_SCALE``
    may shrink the horizon, for experiments whose steady state needs a
    minimum measurement window."""
    d = max(scaled_duration(duration), floor)
    return ScenarioConfig(policy=policy, n_paths=4, load=load,
                          duration=d, warmup=0.15 * d)


def _fabric() -> FabricConfig:
    """The rack fabric both experiments use: 4 spines, 50us base wire
    latency (the lookahead), mild skew so spine choice is visible."""
    return FabricConfig(n_spines=4, base_latency=50.0, spine_skew=5.0)


# ----------------------------------------------------------------------
# C1 -- cluster scale: hosts x load -> tail + aggregate pps
# ----------------------------------------------------------------------
def c1_cluster_scale(
    duration: float = 25_000.0,
    hosts=(2, 4, 8),
    loads=(0.4, 0.7),
    workers=None,
) -> Tuple[str, Dict]:
    """Cluster-wide tail and aggregate delivered pps, hosts x load.

    Expected shape: delivered pps scales ~linearly with the host count
    at fixed load; the cluster p99 is load-driven, not host-count
    driven; every envelope sent is received (uniform pattern, lossless
    fabric).
    """
    t = Table(
        ["hosts", "load", "delivered", "pps (M/s)", "remote %",
         "p50 (us)", "p99 (us)", "p99.9 (us)"],
        title="C1  cluster scale: uniform pattern, adaptive k=4, "
              "ecmp x4 fabric",
    )
    cells = []
    for n in hosts:
        for load in loads:
            cfg = ClusterConfig.uniform_hosts(
                n, _host_template(duration, load=load), _fabric(),
                pattern="uniform", seed=42,
            )
            res = run_cluster(cfg, workers=workers)
            c = res.cluster
            pps = res.delivered_pps()
            remote = 100.0 * c["envelopes_sent"] / max(c["offered"], 1)
            s = res.summary
            cell = {
                "hosts": n,
                "load": load,
                "offered": c["offered"],
                "delivered": c["delivered"],
                "delivery_ratio": c["delivery_ratio"],
                "delivered_pps": pps,
                "remote_fraction": c["envelopes_sent"] / max(c["offered"], 1),
                "envelopes_sent": c["envelopes_sent"],
                "envelopes_received": c["envelopes_received"],
                "fabric_dropped": c["fabric_dropped"],
                "p50": s.p50, "p99": s.p99, "p999": s.p999,
                "workers": res.workers,
                "wall_s": res.wall_s,
            }
            cells.append(cell)
            t.add_row([n, f"{load:.2f}", c["delivered"], pps / 1e6,
                       remote, s.p50, s.p99, s.p999])
    return t.render(), {"hosts": list(hosts), "loads": list(loads),
                        "cells": cells}


# ----------------------------------------------------------------------
# C2 -- incast fan-in: single vs adaptive on the hotspot host
# ----------------------------------------------------------------------
def c2_incast_fanin(
    duration: float = 25_000.0,
    n_hosts: int = 4,
    load: float = 0.15,
    policies=("single", "adaptive"),
) -> Tuple[str, Dict]:
    """Fan-in hotspot: N-1 senders converge on one target host.

    Under the incast pattern all deliveries happen at the target (the
    senders' last miles only transmit), so the target's summary *is*
    the cluster tail.  Per-sender load is chosen so the aggregate
    arriving at the target (N x per-sender load) fits inside its
    four-path capacity but overwhelms any single path: adaptive
    multipath absorbs the fan-in at full delivery, while single-path
    saturates -- delivery collapses and the survivors' whole
    distribution compresses against the bounded-queue sojourn cap (the
    median blows up to within a small factor of the tail, so the
    survivor p99 understates the damage).  Identical offered load in
    both rows; only the last-mile policy differs.

    The horizon is floored at 20 ms regardless of ``REPRO_BENCH_SCALE``:
    the fan-in ramp transient lasts a few ms, and a shorter window
    measures the ramp, not the steady state the claim is about.
    """
    t = Table(
        ["policy", "target p50", "target p99", "target p99.9",
         "delivered", "delivered %"],
        title=f"C2  incast fan-in: {n_hosts - 1} senders -> host0, "
              f"latency (us)",
    )
    cells = []
    for policy in policies:
        cfg = ClusterConfig.uniform_hosts(
            n_hosts,
            _host_template(duration, policy=policy, load=load,
                           floor=20_000.0),
            _fabric(), pattern="incast", incast_target=0, seed=42,
        )
        res = run_cluster(cfg)
        target = res.hosts[0]["summary"]
        c = res.cluster
        cell = {
            "policy": policy,
            "target_p50": target["p50"],
            "target_p99": target["p99"],
            "target_p999": target["p999"],
            "cluster_p99": res.p99,
            "delivered": c["delivered"],
            "delivery_ratio": c["delivery_ratio"],
            "envelopes_sent": c["envelopes_sent"],
            "fabric_dropped": c["fabric_dropped"],
        }
        cells.append(cell)
        t.add_row([policy, target["p50"], target["p99"], target["p999"],
                   c["delivered"], 100.0 * c["delivery_ratio"]])
    return t.render(), {"n_hosts": n_hosts, "load": load,
                        "policies": list(policies), "cells": cells}
