"""SLO experiments: attainment vs. resource cost, and fault reaction.

* **E-SLO1** (:func:`slo1_attainment`): across a load × interference
  grid, compares three provisioning strategies at *identical offered
  load* -- static-1 (one active path), static-4 (all paths), and the
  autotuner starting from one path -- on SLO attainment and the
  path-seconds they spend.  Expected shape: static-1 misses the p99
  objective once a single path saturates; static-4 always meets it but
  burns 4x path-seconds even when idle; the autotuner meets it at a
  cost that tracks the offered load.
* **E-SLO2** (:func:`slo2_fault_recovery`): a mid-run path crash under
  an autotuned run that has parked spare capacity.  Measures
  time-to-recover-attainment -- how long after the crash the windows go
  green again once the autotuner unparks a spare -- against a static
  baseline with the same initial active set and no tuner.

All configs share ``n_paths=4`` so ``load`` means the same offered
packet rate everywhere (see the load convention in
:mod:`repro.bench.scenarios`); only the *active* path count differs,
via ``SloSpec.start_paths``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.runner import scaled_duration
from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.faults import FaultSchedule
from repro.metrics.report import Table
from repro.slo import SloSpec

#: The headline objectives both experiments measure against.
SLO_OBJECTIVES = ("p99 <= 150us", "delivery >= 99%")


def _slo_spec(duration: float, *, autotune: bool,
              start_paths: Optional[int], min_paths: int = 1) -> SloSpec:
    """The spec both experiments share; windows scale with duration so
    short smoke runs still close enough windows to be meaningful."""
    window = max(1_000.0, duration / 30.0)
    return SloSpec(
        objectives=SLO_OBJECTIVES,
        window=window,
        autotune=autotune,
        start_paths=start_paths,
        min_paths=min_paths,
        cooldown=3 * window,
        hold_windows=4,
        margin=0.7,
        penalty=duration,  # at most one relearn probe per run
    )


def _steady(report: Dict) -> float:
    """Attainment over the second half of the traffic-bearing windows.

    Ramp windows (first half) show the autotuner *learning*; empty
    drain windows are vacuously attained and would dilute the signal at
    small ``REPRO_BENCH_SCALE``, so both are excluded.
    """
    wins = [w for w in report["windows"] if w["count"] > 0]
    tail = wins[len(wins) // 2:]
    if not tail:
        return 1.0
    return sum(1 for w in tail if w["ok"]) / len(tail)


# ----------------------------------------------------------------------
# E-SLO1 -- attainment & resource cost across load x interference
# ----------------------------------------------------------------------
def slo1_attainment(duration: float = 120_000.0) -> Tuple[str, Dict]:
    """Static-1 vs static-4 vs autotuned: attainment and path-seconds.

    Expected shape: at low load every strategy attains, but the
    autotuner (like static-1) spends a fraction of static-4's
    path-seconds; past single-path saturation static-1 collapses while
    the autotuner scales out and keeps attainment near static-4 at
    lower cost.  Interference on path 0 stresses the same trade under
    asymmetric slowdown.
    """
    dur = scaled_duration(duration)
    loads = [0.2, 0.35, 0.5]
    interference = [0.0, 2.5]
    strategies = [
        ("static-1", dict(autotune=False, start_paths=1)),
        ("static-4", dict(autotune=False, start_paths=None)),
        ("autotuned", dict(autotune=True, start_paths=1)),
    ]

    t = Table(
        ["load", "interf", "strategy", "attain %", "steady %", "path-s",
         "p99 (us)", "decisions"],
        title="E-SLO1  SLO attainment vs resource cost "
              f"({'; '.join(SLO_OBJECTIVES)}, k=4)",
    )
    data: Dict = {"loads": loads, "interference": interference, "cells": []}
    for load in loads:
        for intensity in interference:
            for name, knobs in strategies:
                spec = _slo_spec(dur, **knobs)
                cfg = ScenarioConfig(
                    policy="adaptive", n_paths=4, chain="heavy",
                    load=load, duration=dur, warmup=0.15 * dur,
                    interfere_intensity=intensity, slo=spec,
                )
                res = run_scenario(cfg)
                rep = res.slo_report
                cell = {
                    "load": load,
                    "interference": intensity,
                    "strategy": name,
                    "attainment": rep["attainment"],
                    "steady_attainment": _steady(rep),
                    "path_seconds": rep["path_seconds"],
                    "p99": res.summary.p99,
                    "n_decisions": len(rep["decisions"]),
                }
                data["cells"].append(cell)
                t.add_row([load, intensity, name,
                           100.0 * cell["attainment"],
                           100.0 * cell["steady_attainment"],
                           cell["path_seconds"], cell["p99"],
                           cell["n_decisions"]])
    return t.render(), data


# ----------------------------------------------------------------------
# E-SLO2 -- autotuner reaction to an injected path crash
# ----------------------------------------------------------------------
def slo2_fault_recovery(duration: float = 120_000.0) -> Tuple[str, Dict]:
    """Time to recover SLO attainment after a mid-run path crash.

    Both runs start with 2 of 4 paths active (the other 2 parked) at a
    load one active path cannot carry alone; path 0 crashes at 40% of
    the run and stays down for 30%.  The static baseline is left with a
    single live path and violates until the crashed path returns; the
    autotuner unparks a spare within a cooldown or two and the windows
    go green while the fault is still active.  ``recover_us`` is the
    gap between the crash and the end of the first subsequently-OK
    window (NaN-free: ``None`` when attainment never recovers in-run).
    """
    dur = scaled_duration(duration)
    crash_at, crash_for = 0.40 * dur, 0.30 * dur
    load = 0.35

    t = Table(
        ["strategy", "attain %", "pre-crash %", "during-crash %",
         "recover (us)", "unparks", "path-s"],
        title="E-SLO2  recovery of SLO attainment after a path crash "
              f"(crash at {crash_at:.0f}us for {crash_for:.0f}us, load {load})",
    )
    data: Dict = {"crash_at": crash_at, "crash_for": crash_for, "load": load}
    for name, autotune in (("static-2", False), ("autotuned", True)):
        spec = _slo_spec(dur, autotune=autotune, start_paths=2, min_paths=2)
        sched = FaultSchedule().crash(path=0, at=crash_at, duration=crash_for)
        cfg = ScenarioConfig(
            policy="adaptive", n_paths=4, chain="heavy", load=load,
            duration=dur, warmup=0.15 * dur, faults=sched, slo=spec,
        )
        res = run_scenario(cfg)
        rep = res.slo_report
        wins = rep["windows"]
        pre = [w for w in wins if w["end"] <= crash_at]
        during = [w for w in wins if crash_at < w["end"] <= crash_at + crash_for]
        recover = None
        seen_bad = False
        for w in wins:
            if w["end"] <= crash_at:
                continue
            if not w["ok"]:
                seen_bad = True
            elif seen_bad:
                recover = w["end"] - crash_at
                break
        unparks = sum(1 for d in rep["decisions"]
                      if d["knob"] == "paths" and d["action"] == "scale_up")
        row = {
            "strategy": name,
            "attainment": rep["attainment"],
            "pre_attain": (sum(w["ok"] for w in pre) / len(pre)) if pre else 1.0,
            "crash_attain": (sum(w["ok"] for w in during) / len(during))
                            if during else 1.0,
            "recover_us": recover,
            "unparks": unparks,
            "path_seconds": rep["path_seconds"],
            "decisions": rep["decisions"],
        }
        data[name] = row
        t.add_row([name, 100.0 * row["attainment"], 100.0 * row["pre_attain"],
                   100.0 * row["crash_attain"],
                   ("-" if recover is None else recover), unparks,
                   row["path_seconds"]])
    return t.render(), data
