"""End-to-end (cross-fabric) experiment worlds.

Builders shared by the F9/T3 experiments, the `end_to_end_rpc` example
and the end-to-end tests: two virtualized hosts joined by a fabric, an
open-loop RPC stream with per-request RTT accounting, and a closed-loop
variant driven by :class:`~repro.net.rpc.ClosedLoopRpcClient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.mpdp import MpdpConfig, MultipathDataPlane
from repro.dataplane.path import PathConfig
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.net.packet import FiveTuple
from repro.net.rpc import ClosedLoopRpcClient
from repro.net.topology import FabricModel, HostLink
from repro.net.traffic import PoissonSource
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: dport identifying RPC requests in these worlds.
RPC_PORT = 9000
#: Response flows are request flow id + this offset.
RESP_OFFSET = 500_000


@dataclass
class RpcWorldResult:
    """Outcome of one open-loop RPC world run."""

    rtts: np.ndarray
    sent: int
    host_a: MultipathDataPlane
    host_b: MultipathDataPlane

    def rtt_percentile(self, pct: float) -> float:
        return float(np.percentile(self.rtts, pct)) if len(self.rtts) else float("nan")


def run_rpc_world(
    policy: str,
    n_paths: int,
    *,
    seed: int = 41,
    rpc_pps: float = 120_000.0,
    bg_pps: float = 600_000.0,
    duration: float = 100_000.0,
    fabric_delay: float = 12.0,
    jitter: JitterParams = SHARED_CORE,
    warmup: float = 20_000.0,
) -> RpcWorldResult:
    """Two hosts, open-loop RPC stream + background load; returns RTTs."""
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    mk_cfg = lambda: MpdpConfig(n_paths=n_paths, policy=policy,
                                path=PathConfig(jitter=jitter))
    host_a = MultipathDataPlane(sim, mk_cfg(), rngs)
    host_b = MultipathDataPlane(sim, mk_cfg(), rngs)
    fab_ab = FabricModel(sim, host_b.input, base_delay=fabric_delay)
    fab_ba = FabricModel(sim, host_a.input, base_delay=fabric_delay)
    wire_a = HostLink(sim, fab_ab.send, rate_bps=25e9)
    wire_b = HostLink(sim, fab_ba.send, rate_bps=25e9)

    rtts = []
    t_sent: Dict[tuple, float] = {}
    n = [0]

    def server_app(pkt):
        if pkt.ftuple.dport != RPC_PORT:
            return
        resp = host_b.factory.make(pkt.ftuple.reversed(), 1200, sim.now,
                                   flow_id=pkt.flow_id + RESP_OFFSET,
                                   seq=pkt.seq, priority=1)
        wire_b.send(resp)

    def client_app(pkt):
        if pkt.ftuple.sport != RPC_PORT or pkt.flow_id < RESP_OFFSET:
            return
        t0 = t_sent.pop((pkt.flow_id - RESP_OFFSET, pkt.seq), None)
        if t0 is not None and t0 > warmup:
            rtts.append(sim.now - t0)

    host_b.sink.on_delivery = server_app
    host_a.sink.on_delivery = client_app

    def send_request():
        i = n[0]
        n[0] += 1
        req = host_a.factory.make(FiveTuple(1, 2, 1024 + i % 512, RPC_PORT),
                                  300, sim.now, flow_id=i % 512,
                                  seq=i // 512, priority=1)
        t_sent[(req.flow_id, req.seq)] = sim.now
        wire_a.send(req)

    rng = rngs.stream("rpc.arrivals")
    t = 0.0
    while t < duration:
        t += float(rng.exponential(1e6 / rpc_pps))
        sim.call_at(t, send_request)

    for host, label in ((host_a, "bg.a"), (host_b, "bg.b")):
        PoissonSource(sim, host.factory, host.input, rngs.stream(label),
                      rate_pps=bg_pps, n_flows=256, duration=duration).start()

    sim.run(until=duration + 20_000.0)
    host_a.finalize()
    host_b.finalize()
    return RpcWorldResult(np.array(rtts), n[0], host_a, host_b)


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop loopback run."""

    client: ClosedLoopRpcClient
    host: MultipathDataPlane

    @property
    def throughput_rps(self) -> float:
        return self.client.throughput_rps()

    def rtt_percentile(self, pct: float) -> float:
        return self.client.rtt.exact_percentile(pct)


def run_closed_loop(
    policy: str,
    n_paths: int,
    *,
    concurrency: int = 32,
    seed: int = 6,
    duration: float = 60_000.0,
    jitter: JitterParams = SHARED_CORE,
    server_think: float = 2.0,
) -> ClosedLoopResult:
    """Loopback closed-loop RPC world (client and server on one host)."""
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=n_paths, policy=policy,
                   path=PathConfig(jitter=jitter)),
        rngs,
    )
    client = ClosedLoopRpcClient(
        sim, host.factory, host.input, host.input, rngs.stream("rpc"),
        concurrency=concurrency, duration=duration, server_think=server_think,
    )

    def app(pkt):
        client.on_server_delivery(pkt)
        client.on_client_delivery(pkt)

    host.sink.on_delivery = app
    client.start()
    sim.run(until=duration + 30_000.0)
    host.finalize()
    return ClosedLoopResult(client, host)
