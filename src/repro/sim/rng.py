"""Deterministic random-stream management.

Every stochastic component in a simulation draws from its **own** named
stream spawned from a single root seed, so that (a) whole experiments are
reproducible bit-for-bit, and (b) changing one component's draw count does
not perturb any other component's sequence (no accidental coupling between,
say, the traffic generator and the scheduling-jitter process).

Streams use :class:`numpy.random.Generator` (PCG64) and the
``SeedSequence.spawn`` mechanism, the recommended practice for parallel and
multi-stream reproducible experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def spawn_streams(seed: int, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators from a root ``seed``."""
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngRegistry:
    """Named, lazily created random streams under one root seed.

    Streams are derived from ``hash(name)``-independent spawn keys: the
    registry records the order-independent mapping ``name -> child
    SeedSequence`` using the name's stable bytes, so the stream a component
    receives depends only on the root seed and the component's name --
    never on creation order.

    Example
    -------
    >>> reg = RngRegistry(seed=42)
    >>> arrivals = reg.stream("traffic.arrivals")
    >>> jitter = reg.stream("vcpu0.jitter")
    >>> reg2 = RngRegistry(seed=42)
    >>> float(arrivals.random()) == float(reg2.stream("traffic.arrivals").random())
    True
    """

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive entropy from the name bytes so ordering cannot matter.
            name_key = list(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(name_key))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def streams(self, names: Sequence[str]) -> List[np.random.Generator]:
        """Vector form of :meth:`stream`."""
        return [self.stream(n) for n in names]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
