"""The event loop.

:class:`Simulator` owns a schedule of entries managed by one of two
pluggable backends:

* ``"heap"`` -- a single binary heap (``heapq``), the classic backend;
* ``"calendar"`` -- a Brown-style calendar queue
  (:class:`~repro.sim.calqueue.CalendarQueue`) with O(1) steady-state
  inserts, the default.

Both backends dispatch in the **exact same total order**, so the choice
is invisible to results: same seed => byte-identical payloads (pinned by
``tests/test_golden_determinism.py`` and the cross-backend suite).  Pick
with ``Simulator(scheduler=...)``, ``RunOptions(scheduler=...)``, or the
``REPRO_SCHEDULER`` environment variable.

Two kinds of entry coexist on the schedule:

* **plain callbacks** pushed by :meth:`Simulator.call_at` /
  :meth:`Simulator.call_in` -- the zero-overhead fast path used by
  per-packet data-plane code (one tuple per event, no Event object);
* **events** (:class:`~repro.sim.events.Event`) whose ``_process`` method
  runs their callback list -- used by processes and resources.

Entries are ordered by ``(time, key)`` where ``key`` packs
``(priority << 52) | sequence`` into one integer: the monotonically
increasing sequence number makes ordering total and FIFO-stable among
same-time, same-priority entries, and packing keeps schedule tuples at
four elements so comparisons rarely go past the second slot.  The
sequence space is guarded: exhausting 2**52 entries raises a
:class:`~repro.sim.errors.SimulationError` rather than silently folding
priorities into each other.

Hot-path producers (traffic sources, the NIC, the poller) push
pre-packed tuples through :attr:`Simulator._push`, a bound callable the
backend installs at construction, so they stay backend-agnostic without
a dispatch branch per event.

For generator processes that sleep in a hot loop,
:meth:`Simulator.pooled_timeout` hands out :class:`Timeout` objects from
a free list and reclaims them automatically after they fire, avoiding
per-iteration Event allocation (see ``docs/PERFORMANCE.md`` for the
retention contract).

Cancelled periodic callbacks are deleted lazily: :meth:`PeriodicHandle.cancel`
is O(1) and leaves the pending entry in place as a no-op, but the
simulator counts the dead entries and compacts the schedule once they
outnumber the live ones (see :meth:`Simulator._compact`), so cancel-heavy
workloads -- control loops, liveness probes, ejected-path timers -- keep
a bounded schedule.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional, Union

from repro.sim.calqueue import CalendarQueue
from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import PENDING, Event, Timeout, AllOf, AnyOf

#: Runs before NORMAL entries at the same timestamp (e.g. preemptions).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1
#: Runs after NORMAL entries at the same timestamp (e.g. bookkeeping).
LOW = 2

#: Bits reserved for the sequence number inside a packed ordering key.
#: 2**52 entries is far beyond any run; priority occupies the top bits.
_SEQ_BITS = 52
#: Largest sequence number that still packs without touching priority bits.
_SEQ_MAX = (1 << _SEQ_BITS) - 1

_EVENT_MARKER = None  # placed in the fn slot for Event entries

_INF = float("inf")

#: Valid scheduler backend names.
SCHEDULERS = ("heap", "calendar")

#: Compaction trigger: at least this many dead entries *and* dead
#: entries at least half the schedule (amortized O(1) per cancel).
_COMPACT_MIN = 64


def default_scheduler() -> str:
    """The backend used when none is requested explicitly.

    Resolves the ``REPRO_SCHEDULER`` environment variable (``"heap"`` or
    ``"calendar"``); defaults to ``"calendar"``.
    """
    name = os.environ.get("REPRO_SCHEDULER") or "calendar"
    if name not in SCHEDULERS:
        raise SimulationError(
            f"REPRO_SCHEDULER={name!r} is not a valid scheduler; "
            f"choose one of {SCHEDULERS}"
        )
    return name


class PeriodicHandle:
    """A cancellable periodic callback scheduled by :meth:`Simulator.periodic`.

    Each firing runs ``fn()`` first and reschedules afterwards, so any
    entries ``fn`` pushes onto the schedule are sequenced *before* the
    next firing -- the same ordering a self-rescheduling callback written
    as ``fn(); sim.call_in(interval, fn)`` produces.  :meth:`cancel` is
    lazy: the pending entry stays but becomes a no-op, which keeps
    cancellation O(1); the simulator's dead-entry accounting compacts
    the schedule when cancelled entries pile up.
    """

    __slots__ = ("sim", "interval", "fn", "priority", "cancelled", "fired")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any], priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.priority = priority
        self.cancelled = False
        #: Number of completed firings (diagnostics).
        self.fired = 0

    def cancel(self) -> None:
        """Stop firing; the already-scheduled entry becomes a no-op.

        O(1): the entry is deleted lazily.  The simulator counts dead
        entries and compacts the schedule once they dominate, so
        cancel-heavy workloads cannot grow the schedule without bound.
        """
        if not self.cancelled:
            self.cancelled = True
            self.sim._note_dead()

    def _fire(self) -> None:
        if self.cancelled:
            # The no-op entry just left the schedule naturally.
            sim = self.sim
            if sim._dead:
                sim._dead -= 1
            return
        self.fn()
        self.fired += 1
        if not self.cancelled:  # fn may have cancelled us
            self.sim.call_in(self.interval, self._fire, priority=self.priority)


def _entry_is_dead(entry) -> bool:
    """True for a schedule entry belonging to a cancelled periodic handle."""
    fn = entry[2]
    if type(fn) is not _BOUND_METHOD or fn.__func__ is not PeriodicHandle._fire:
        return False
    return fn.__self__.cancelled


class _PooledTimeout(Timeout):
    """A :class:`Timeout` that returns itself to its simulator's free list.

    Handed out by :meth:`Simulator.pooled_timeout`.  After its callbacks
    run it is reset and reclaimed, so callers must not retain it past the
    yield that waits on it.
    """

    __slots__ = ()

    def _process(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        for cb in callbacks:
            cb(self)
        # Timeouts cannot fail, so no failure propagation is needed here.
        # Reset to pristine and reclaim (reusing the emptied list).
        callbacks.clear()
        self.callbacks = callbacks
        self._value = PENDING
        self.sim._timeout_pool.append(self)


_BOUND_METHOD = type(PeriodicHandle.cancel.__get__(object()))


class Simulator:
    """A discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).  Time
        units are whatever the model chooses; the data-plane models in this
        repository use **microseconds**.
    scheduler:
        Scheduler backend: ``"heap"`` (single binary heap) or
        ``"calendar"`` (Brown-style calendar queue).  ``None`` resolves
        via :func:`default_scheduler` (``REPRO_SCHEDULER`` env var,
        falling back to ``"calendar"``).  Backends dispatch in the exact
        same total order, so results are bit-identical either way.

    Notes
    -----
    The simulator is single-threaded and deterministic: given the same
    seeded random streams and the same schedule of calls it always produces
    the same trajectory.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_calq",
        "_push",
        "_scheduler",
        "_seq",
        "_running",
        "_stopped_value",
        "_processed",
        "_timeout_pool",
        "_ext_floor",
        "_dead",
    )

    def __init__(self, start_time: float = 0.0,
                 scheduler: Optional[str] = None) -> None:
        self._now: float = float(start_time)
        if scheduler is None:
            scheduler = default_scheduler()
        if scheduler == "calendar":
            self._heap = None
            self._calq = CalendarQueue()
            #: Backend-installed push: hot-path producers call this with a
            #: pre-packed ``(time, key, fn, args)`` tuple.
            self._push = self._calq.push
        elif scheduler == "heap":
            self._heap = []
            self._calq = None
            self._push = partial(heappush, self._heap)
        else:
            raise SimulationError(
                f"unknown scheduler backend {scheduler!r}; "
                f"choose one of {SCHEDULERS}"
            )
        self._scheduler: str = scheduler
        self._seq: int = 0
        self._running: bool = False
        self._stopped_value: Any = None
        self._processed: int = 0
        self._timeout_pool: list = []
        #: Lazily-deleted (cancelled) entries still on the schedule.
        self._dead: int = 0
        # Epoch floor for externally injected events (see external_event):
        # the cluster engine sets this to the end of the last completed
        # epoch, and external events below it indicate a broken lookahead.
        self._ext_floor: float = float(start_time)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the active scheduler backend (``"heap"`` or ``"calendar"``)."""
        return self._scheduler

    @property
    def processed_count(self) -> int:
        """Number of schedule entries dispatched so far (cheap progress metric)."""
        return self._processed

    @property
    def pending_count(self) -> int:
        """Number of entries currently scheduled.

        Includes lazily-cancelled periodic entries that have not been
        compacted away yet, so treat this as an upper bound; the
        invariant sampler and tests use it as a liveness signal.
        """
        heap = self._heap
        return len(heap) if heap is not None else len(self._calq)

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else _INF
        return self._calq.peek_time()

    # ------------------------------------------------------------------
    # Fast-path scheduling: plain callbacks
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` at absolute simulation ``time``.

        This is the hot-path API: it allocates a single schedule tuple
        and no Event object.  ``fn`` must not raise ``StopIteration``.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        self._seq = seq = self._seq + 1
        if seq > _SEQ_MAX:
            raise SimulationError(
                f"sequence space exhausted: {seq} entries exceed the "
                f"2**{_SEQ_BITS} packing headroom of the ordering key; "
                f"widen _SEQ_BITS if a run legitimately needs more"
            )
        self._push((time, (priority << _SEQ_BITS) | seq, fn, args))

    def call_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq = seq = self._seq + 1
        if seq > _SEQ_MAX:
            raise SimulationError(
                f"sequence space exhausted: {seq} entries exceed the "
                f"2**{_SEQ_BITS} packing headroom of the ordering key; "
                f"widen _SEQ_BITS if a run legitimately needs more"
            )
        self._push((self._now + delay, (priority << _SEQ_BITS) | seq, fn, args))

    def periodic(
        self,
        interval: float,
        fn: Callable[[], Any],
        *,
        priority: int = NORMAL,
        first_at: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run ``fn()`` every ``interval`` time units until cancelled.

        The first firing is at ``now + interval`` (or at the absolute
        time ``first_at`` when given); each firing runs ``fn`` and then
        reschedules, so control loops written against this helper are
        order-identical to the traditional self-rescheduling callback.
        Returns a :class:`PeriodicHandle`; call its
        :meth:`~PeriodicHandle.cancel` to stop.
        """
        if interval <= 0:
            raise SimulationError(
                f"periodic interval must be positive, got {interval!r}"
            )
        handle = PeriodicHandle(self, interval, fn, priority)
        if first_at is None:
            self.call_in(interval, handle._fire, priority=priority)
        else:
            self.call_at(first_at, handle._fire, priority=priority)
        return handle

    # ------------------------------------------------------------------
    # Lazy deletion
    # ------------------------------------------------------------------
    def _note_dead(self) -> None:
        """Account one lazily-cancelled entry; compact when they dominate."""
        self._dead = dead = self._dead + 1
        if dead >= _COMPACT_MIN and dead * 2 >= self.pending_count:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled periodic entries from the schedule.

        Removal never reallocates sequence numbers or reorders live
        entries, so compaction is invisible to the simulated trajectory.
        Safe to run from inside a callback: both backends filter their
        containers in place, so a draining loop's hoisted references
        stay valid.
        """
        heap = self._heap
        if heap is not None:
            kept = [e for e in heap if not _entry_is_dead(e)]
            if len(kept) != len(heap):
                heap[:] = kept
                heapify(heap)
        else:
            self._calq.remove_if(_entry_is_dead)
        self._dead = 0

    # ------------------------------------------------------------------
    # Cluster hooks: epoch runs and externally injected events
    # ------------------------------------------------------------------
    def external_event(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule an event injected from *outside* this simulator.

        The sharded cluster engine delivers cross-host packets between
        epochs through this entry point.  It is :meth:`call_at` plus the
        **lookahead contract check**: during epoch ``[T, T + L)`` every
        peer shard may only emit envelopes arriving at ``>= T + L``, so
        an injection below the current epoch floor means some component
        violated the fabric's minimum-latency bound and the simulation
        would be causally wrong.  That is a bug, never load-dependent,
        so it raises immediately rather than silently reordering time.
        """
        if time < self._ext_floor:
            raise SimulationError(
                f"external event at t={time} violates the lookahead "
                f"contract: epoch floor is {self._ext_floor} (injected "
                f"events must arrive at or after the current epoch start)"
            )
        self.call_at(time, fn, *args, priority=priority)

    def run_epoch(self, end: float) -> None:
        """Run one conservative-synchronization epoch ending at ``end``.

        Identical to ``run(until=end)`` -- entries at exactly ``end``
        stay queued and the clock is left at ``end`` -- and additionally
        raises the external-event floor to ``end``, arming the lookahead
        check of :meth:`external_event` for the exchange that follows.
        Running epochs ``[0, L), [L, 2L), ...`` with envelope exchange
        at each barrier is exactly the null-message-free conservative
        protocol described in ``docs/CLUSTER.md``.
        """
        self.run(until=end)
        self._ext_floor = end

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, priority: int = NORMAL) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value, priority)

    def pooled_timeout(self, delay: float, priority: int = NORMAL) -> Timeout:
        """A free-listed :class:`Timeout` for hot process loops.

        Semantically identical to :meth:`timeout` with one contract: the
        returned object is reclaimed into a per-simulator pool right after
        its callbacks run, so the caller must not keep a reference past
        the ``yield`` that waits on it (``yield sim.pooled_timeout(d)`` is
        the intended form).  Values are not supported; the event fires
        with ``None``.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            t = pool.pop()
            t.delay = delay
            t._value = None  # pre-triggered, like a fresh Timeout
            self._schedule_event(t, delay, priority)
            return t
        return _PooledTimeout(self, delay, None, priority)

    def process(self, generator) -> "Process":
        """Spawn a :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Condition event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Internal: event scheduling
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float, priority: int) -> None:
        self._seq = seq = self._seq + 1
        if seq > _SEQ_MAX:
            raise SimulationError(
                f"sequence space exhausted: {seq} entries exceed the "
                f"2**{_SEQ_BITS} packing headroom of the ordering key; "
                f"widen _SEQ_BITS if a run legitimately needs more"
            )
        self._push(
            (self._now + delay, (priority << _SEQ_BITS) | seq, _EVENT_MARKER, event)
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Dispatch the single next entry on the schedule.

        Raises :class:`EmptySchedule` if the schedule is empty.
        """
        heap = self._heap
        if heap is not None:
            if not heap:
                raise EmptySchedule("event schedule is empty")
            e = heappop(heap)
        else:
            try:
                e = self._calq.pop()
            except IndexError:
                raise EmptySchedule("event schedule is empty") from None
        self._now = e[0]
        self._processed += 1
        fn = e[2]
        if fn is _EVENT_MARKER:
            e[3]._process()
        else:
            fn(*e[3])

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            * ``None`` -- run until the schedule is empty.
            * a number -- run until the clock reaches that time; entries at
              exactly ``until`` are *not* dispatched and the clock is left
              at ``until``.
            * an :class:`Event` -- run until that event is processed and
              return its value (re-raising its exception if it failed).

        Returns
        -------
        The ``until`` event's value, the value passed to :meth:`stop`, or
        ``None``.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if until is None:
                return self._run_until_time(_INF)
            if isinstance(until, Event):
                return self._run_until_event(until)
            return self._run_until_time(float(until))
        finally:
            self._running = False

    def _run_until_time(self, until: float) -> Any:
        if until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        try:
            if self._heap is not None:
                self._drain_heap(until)
            else:
                self._calq.drain(self, until)
        except StopSimulation as exc:
            return exc.value
        if self._now < until < _INF:
            self._now = until
        return None

    def _drain_heap(self, until: float) -> None:
        # The dispatch loop is inlined (rather than calling step()) --
        # this is the hottest loop in the package.  Attribute lookups
        # are hoisted, and the boundary check costs one extra pop/push
        # round-trip at the end of the drain instead of a peek per entry.
        heap = self._heap
        pop = heappop
        marker = _EVENT_MARKER
        n = 0
        try:
            while heap:
                e = pop(heap)
                t = e[0]
                if t >= until:
                    heappush(heap, e)
                    return
                self._now = t
                n += 1
                fn = e[2]
                if fn is marker:
                    e[3]._process()
                else:
                    fn(*e[3])
        finally:
            self._processed += n

    def _run_until_event(self, until: Event) -> Any:
        if until.sim is not self:
            raise SimulationError("`until` event belongs to a different simulator")
        if until.processed:
            if not until.ok:
                raise until.value
            return until.value
        done = []
        until.callbacks.append(lambda ev: done.append(ev))
        try:
            while not done and self.pending_count:
                self.step()
        except StopSimulation as exc:
            return exc.value
        if not done:
            raise EmptySchedule(
                "event schedule ran dry before the `until` event was triggered"
            )
        if not until.ok:
            raise until.value
        return until.value

    def stop(self, value: Any = None) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now} pending={self.pending_count} "
            f"scheduler={self._scheduler}>"
        )
