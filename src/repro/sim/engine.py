"""The event loop.

:class:`Simulator` owns a binary heap of scheduled entries.  Two kinds of
entry coexist on the heap:

* **plain callbacks** pushed by :meth:`Simulator.call_at` /
  :meth:`Simulator.call_in` -- the zero-overhead fast path used by
  per-packet data-plane code (one tuple per event, no Event object);
* **events** (:class:`~repro.sim.events.Event`) whose ``_process`` method
  runs their callback list -- used by processes and resources.

Entries are ordered by ``(time, key)`` where ``key`` packs
``(priority << 52) | sequence`` into one integer: the monotonically
increasing sequence number makes ordering total and FIFO-stable among
same-time, same-priority entries, and packing keeps heap tuples at four
elements so sift comparisons rarely go past the second slot.

For generator processes that sleep in a hot loop,
:meth:`Simulator.pooled_timeout` hands out :class:`Timeout` objects from
a free list and reclaims them automatically after they fire, avoiding
per-iteration Event allocation (see ``docs/PERFORMANCE.md`` for the
retention contract).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Union

from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import PENDING, Event, Timeout, AllOf, AnyOf

#: Runs before NORMAL entries at the same timestamp (e.g. preemptions).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1
#: Runs after NORMAL entries at the same timestamp (e.g. bookkeeping).
LOW = 2

#: Bits reserved for the sequence number inside a packed ordering key.
#: 2**52 entries is far beyond any run; priority occupies the top bits.
_SEQ_BITS = 52

_EVENT_MARKER = None  # placed in the fn slot for Event entries


class PeriodicHandle:
    """A cancellable periodic callback scheduled by :meth:`Simulator.periodic`.

    Each firing runs ``fn()`` first and reschedules afterwards, so any
    entries ``fn`` pushes onto the heap are sequenced *before* the next
    firing -- the same ordering a self-rescheduling callback written as
    ``fn(); sim.call_in(interval, fn)`` produces.  :meth:`cancel` is
    lazy: the pending heap entry stays but becomes a no-op, which keeps
    cancellation O(1) without heap surgery.
    """

    __slots__ = ("sim", "interval", "fn", "priority", "cancelled", "fired")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any], priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.priority = priority
        self.cancelled = False
        #: Number of completed firings (diagnostics).
        self.fired = 0

    def cancel(self) -> None:
        """Stop firing; the already-scheduled entry becomes a no-op."""
        self.cancelled = True

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn()
        self.fired += 1
        if not self.cancelled:  # fn may have cancelled us
            self.sim.call_in(self.interval, self._fire, priority=self.priority)


class _PooledTimeout(Timeout):
    """A :class:`Timeout` that returns itself to its simulator's free list.

    Handed out by :meth:`Simulator.pooled_timeout`.  After its callbacks
    run it is reset and reclaimed, so callers must not retain it past the
    yield that waits on it.
    """

    __slots__ = ()

    def _process(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        for cb in callbacks:
            cb(self)
        # Timeouts cannot fail, so no failure propagation is needed here.
        # Reset to pristine and reclaim (reusing the emptied list).
        callbacks.clear()
        self.callbacks = callbacks
        self._value = PENDING
        self.sim._timeout_pool.append(self)


class Simulator:
    """A discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).  Time
        units are whatever the model chooses; the data-plane models in this
        repository use **microseconds**.

    Notes
    -----
    The simulator is single-threaded and deterministic: given the same
    seeded random streams and the same schedule of calls it always produces
    the same trajectory.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_running",
        "_stopped_value",
        "_processed",
        "_timeout_pool",
        "_ext_floor",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now: float = float(start_time)
        self._heap: list = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped_value: Any = None
        self._processed: int = 0
        self._timeout_pool: list = []
        # Epoch floor for externally injected events (see external_event):
        # the cluster engine sets this to the end of the last completed
        # epoch, and external events below it indicate a broken lookahead.
        self._ext_floor: float = float(start_time)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_count(self) -> int:
        """Number of heap entries dispatched so far (cheap progress metric)."""
        return self._processed

    @property
    def pending_count(self) -> int:
        """Number of entries currently scheduled on the heap.

        Includes lazily-cancelled periodic entries (they stay on the heap
        as no-ops), so treat this as an upper bound; the invariant
        sampler and tests use it as a liveness signal.
        """
        return len(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # ------------------------------------------------------------------
    # Fast-path scheduling: plain callbacks
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` at absolute simulation ``time``.

        This is the hot-path API: it allocates a single heap tuple and no
        Event object.  ``fn`` must not raise ``StopIteration``.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (time, (priority << _SEQ_BITS) | seq, fn, args))

    def call_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._heap, (self._now + delay, (priority << _SEQ_BITS) | seq, fn, args)
        )

    def periodic(
        self,
        interval: float,
        fn: Callable[[], Any],
        *,
        priority: int = NORMAL,
        first_at: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run ``fn()`` every ``interval`` time units until cancelled.

        The first firing is at ``now + interval`` (or at the absolute
        time ``first_at`` when given); each firing runs ``fn`` and then
        reschedules, so control loops written against this helper are
        heap-order-identical to the traditional self-rescheduling
        callback.  Returns a :class:`PeriodicHandle`; call its
        :meth:`~PeriodicHandle.cancel` to stop.
        """
        if interval <= 0:
            raise SimulationError(
                f"periodic interval must be positive, got {interval!r}"
            )
        handle = PeriodicHandle(self, interval, fn, priority)
        if first_at is None:
            self.call_in(interval, handle._fire, priority=priority)
        else:
            self.call_at(first_at, handle._fire, priority=priority)
        return handle

    # ------------------------------------------------------------------
    # Cluster hooks: epoch runs and externally injected events
    # ------------------------------------------------------------------
    def external_event(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule an event injected from *outside* this simulator.

        The sharded cluster engine delivers cross-host packets between
        epochs through this entry point.  It is :meth:`call_at` plus the
        **lookahead contract check**: during epoch ``[T, T + L)`` every
        peer shard may only emit envelopes arriving at ``>= T + L``, so
        an injection below the current epoch floor means some component
        violated the fabric's minimum-latency bound and the simulation
        would be causally wrong.  That is a bug, never load-dependent,
        so it raises immediately rather than silently reordering time.
        """
        if time < self._ext_floor:
            raise SimulationError(
                f"external event at t={time} violates the lookahead "
                f"contract: epoch floor is {self._ext_floor} (injected "
                f"events must arrive at or after the current epoch start)"
            )
        self.call_at(time, fn, *args, priority=priority)

    def run_epoch(self, end: float) -> None:
        """Run one conservative-synchronization epoch ending at ``end``.

        Identical to ``run(until=end)`` -- entries at exactly ``end``
        stay queued and the clock is left at ``end`` -- and additionally
        raises the external-event floor to ``end``, arming the lookahead
        check of :meth:`external_event` for the exchange that follows.
        Running epochs ``[0, L), [L, 2L), ...`` with envelope exchange
        at each barrier is exactly the null-message-free conservative
        protocol described in ``docs/CLUSTER.md``.
        """
        self.run(until=end)
        self._ext_floor = end

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, priority: int = NORMAL) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value, priority)

    def pooled_timeout(self, delay: float, priority: int = NORMAL) -> Timeout:
        """A free-listed :class:`Timeout` for hot process loops.

        Semantically identical to :meth:`timeout` with one contract: the
        returned object is reclaimed into a per-simulator pool right after
        its callbacks run, so the caller must not keep a reference past
        the ``yield`` that waits on it (``yield sim.pooled_timeout(d)`` is
        the intended form).  Values are not supported; the event fires
        with ``None``.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            t = pool.pop()
            t.delay = delay
            t._value = None  # pre-triggered, like a fresh Timeout
            self._schedule_event(t, delay, priority)
            return t
        return _PooledTimeout(self, delay, None, priority)

    def process(self, generator) -> "Process":
        """Spawn a :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Condition event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Internal: event scheduling
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float, priority: int) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._heap,
            (self._now + delay, (priority << _SEQ_BITS) | seq, _EVENT_MARKER, event),
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Dispatch the single next entry on the heap.

        Raises :class:`EmptySchedule` if the heap is empty.
        """
        if not self._heap:
            raise EmptySchedule("event heap is empty")
        time, _key, fn, payload = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        if fn is _EVENT_MARKER:
            payload._process()
        else:
            fn(*payload)

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            * ``None`` -- run until the heap is empty.
            * a number -- run until the clock reaches that time; entries at
              exactly ``until`` are *not* dispatched and the clock is left
              at ``until``.
            * an :class:`Event` -- run until that event is processed and
              return its value (re-raising its exception if it failed).

        Returns
        -------
        The ``until`` event's value, the value passed to :meth:`stop`, or
        ``None``.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if until is None:
                return self._run_until_empty()
            if isinstance(until, Event):
                return self._run_until_event(until)
            return self._run_until_time(float(until))
        finally:
            self._running = False

    def _run_until_empty(self) -> Any:
        # The dispatch loop is inlined (rather than calling step()) --
        # this is the hottest loop in the package.
        heap = self._heap
        pop = heapq.heappop
        n = 0
        try:
            while heap:
                time, _key, fn, payload = pop(heap)
                self._now = time
                n += 1
                if fn is _EVENT_MARKER:
                    payload._process()
                else:
                    fn(*payload)
        except StopSimulation as exc:
            return exc.value
        finally:
            self._processed += n
        return None

    def _run_until_time(self, until: float) -> Any:
        if until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        pop = heapq.heappop
        n = 0
        try:
            while heap and heap[0][0] < until:
                time, _key, fn, payload = pop(heap)
                self._now = time
                n += 1
                if fn is _EVENT_MARKER:
                    payload._process()
                else:
                    fn(*payload)
        except StopSimulation as exc:
            return exc.value
        finally:
            self._processed += n
        if self._now < until:
            self._now = until
        return None

    def _run_until_event(self, until: Event) -> Any:
        if until.sim is not self:
            raise SimulationError("`until` event belongs to a different simulator")
        if until.processed:
            if not until.ok:
                raise until.value
            return until.value
        done = []
        until.callbacks.append(lambda ev: done.append(ev))
        heap = self._heap
        try:
            while heap and not done:
                self.step()
        except StopSimulation as exc:
            return exc.value
        if not done:
            raise EmptySchedule(
                "event heap ran dry before the `until` event was triggered"
            )
        if not until.ok:
            raise until.value
        return until.value

    def stop(self, value: Any = None) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
