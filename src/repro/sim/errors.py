"""Exception types used by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors.

    Raised for misuse of the kernel API: triggering an already-triggered
    event, running a simulator that has been stopped, scheduling into the
    past, and so on.  Model-level errors (e.g. a queue overflow the model
    chooses to treat as fatal) should define their own exception types.
    """


class StopSimulation(Exception):
    """Raised inside a callback/process to halt :meth:`Simulator.run`.

    The event loop catches this exception, stops dispatching and returns
    normally.  ``Simulator.stop()`` is the usual way to trigger it.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """The event heap ran dry before the requested ``until`` time."""
