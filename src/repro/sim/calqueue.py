"""Calendar-queue scheduler backend.

A Brown-style calendar queue [Brown88]_: a power-of-two array of
*buckets*, each covering ``width`` units of simulated time, indexed by
``int(time / width) mod nbuckets``.  Steady-state inserts are O(1)
(bucket index + a push into a near-empty per-bucket heap) and the drain
visits buckets in calendar order, so the queue beats a single binary
heap when the schedule is large and times are spread evenly -- exactly
the regime of a packet-level simulation, where most pending entries sit
within a few service times of ``now``.

Ordering is **exact**, not approximate.  Entries are the engine's
4-tuples ``(time, key, fn, args)`` where ``key`` packs
``(priority << 52) | seq`` and is unique, and:

* the bucket map ``time -> int(time * inv_width)`` is monotonic, so an
  entry can never land in an *earlier* virtual bucket than any entry
  that precedes it in ``(time, key)`` order;
* each bucket is maintained as a heap on the full tuple, so same-bucket
  entries pop in exact ``(time, key)`` order;
* entries whose virtual bucket lies beyond the current calendar year
  share a physical bucket with current-year entries but are deferred by
  comparing ``int(head_time * inv_width)`` against the virtual bucket
  cursor -- the *same* rounding used at insert, so placement and drain
  can never disagree about when an entry is due.

Together these give the same total order a single ``heapq`` produces,
which is what lets ``Simulator`` treat the backend as a pure swap: same
seed => byte-identical results (pinned by ``tests/test_golden_determinism``
and the cross-backend tests).

Contract: a pushed entry's time must be >= the time of the last entry
popped (the no-scheduling-into-the-past law every ``Simulator`` API
already enforces).  Resizing (doubling above ``2 * nbuckets`` entries,
halving below ``nbuckets // 2``) re-derives the bucket width from the
gaps of the earliest entries and redistributes; redistribution preserves
entry identity, never touches sequence numbers, and is therefore
invisible to results.

.. [Brown88] R. Brown, "Calendar queues: a fast O(1) priority queue
   implementation for the simulation event set problem", CACM 31(10).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

#: Floor for the adaptive bucket width; guards against a zero-span sample.
_MIN_WIDTH = 1e-9
#: The bucket array never shrinks below this (power of two).
_MIN_BUCKETS = 16
#: Width is derived from the gaps of this many earliest entries.
_SAMPLE = 64

_INF = float("inf")


class CalendarQueue:
    """An exact-order calendar queue over ``(time, key, fn, args)`` tuples."""

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_inv",
        "_count",
        "_hi",
        "_lo",
        "_vcur",
    )

    def __init__(self, width: float = 1.0, nbuckets: int = _MIN_BUCKETS) -> None:
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two, got {nbuckets}")
        if not width > 0.0:
            raise ValueError(f"width must be positive, got {width!r}")
        self._buckets: list = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = float(width)
        self._inv = 1.0 / self._width
        self._count = 0
        self._hi = nbuckets * 2
        self._lo = nbuckets // 2
        self._vcur = 0

    # ------------------------------------------------------------------
    # Inserting
    # ------------------------------------------------------------------
    def push(self, entry) -> None:
        """Insert one entry.  O(1) amortized; never resizes in-line.

        Resize checks happen at bucket boundaries of :meth:`drain` /
        :meth:`pop` so that a drain loop's hoisted locals can never go
        stale mid-bucket.
        """
        heappush(self._buckets[int(entry[0] * self._inv) & self._mask], entry)
        self._count += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if not self._count:
            return _INF
        return min(b[0] for b in self._buckets if b)[0]

    def _min_entry(self):
        return min(b[0] for b in self._buckets if b)

    # ------------------------------------------------------------------
    # Removing
    # ------------------------------------------------------------------
    def pop(self):
        """Pop and return the earliest entry (exact order).

        Raises ``IndexError`` when empty.  This is the step-at-a-time
        path; bulk dispatch goes through :meth:`drain`.
        """
        if not self._count:
            raise IndexError("pop from an empty CalendarQueue")
        if self._count > self._hi or (
            self._count < self._lo and self._nbuckets > _MIN_BUCKETS
        ):
            self._resize()
        buckets, mask, inv = self._buckets, self._mask, self._inv
        nb = self._nbuckets
        v = self._vcur
        scans = 0
        while True:
            b = buckets[v & mask]
            if b and int(b[0][0] * inv) <= v:
                e = heappop(b)
                self._count -= 1
                self._vcur = v
                return e
            v += 1
            scans += 1
            if scans >= nb:
                # A whole calendar year without a due entry: jump the
                # cursor straight to the year of the global minimum.
                v = int(self._min_entry()[0] * inv)
                scans = 0

    def drain(self, sim, until: float) -> None:
        """Dispatch every entry with ``time < until`` through ``sim``.

        This is the hot loop of the calendar backend: the bucket array,
        index math, and dispatch plumbing are hoisted into locals once
        per bucket visit, and the entry count is reconciled per bucket
        rather than per event.  ``sim._now`` and ``sim._processed`` are
        kept exact (including when a callback raises ``StopSimulation``).
        ``until`` may be ``inf`` to run the schedule dry.
        """
        n = 0
        counted = 0
        pop = heappop
        try:
            while self._count:
                # Bucket-boundary housekeeping: adapt the bucket array
                # before hoisting locals, never during a bucket.
                if self._count > self._hi or (
                    self._count < self._lo and self._nbuckets > _MIN_BUCKETS
                ):
                    self._resize()
                buckets, mask, inv = self._buckets, self._mask, self._inv
                width = self._width
                nb = self._nbuckets
                v = int(sim._now * inv)
                scans = 0
                while True:
                    b = buckets[v & mask]
                    before = n
                    # Entries sharing this physical bucket are either due
                    # this year (vi <= v, time < ~(v+1)*width) or a whole
                    # year or more away (vi >= v + nbuckets), so any limit
                    # inside that gap separates them exactly; (v+2)*width
                    # sits a full bucket clear of rounding on both sides.
                    # That turns the per-entry due-check into one float
                    # compare, like the heap drain's boundary test.
                    lim = (v + 2) * width
                    if until < lim:
                        lim = until
                    while b:
                        e = b[0]
                        t = e[0]
                        if t >= lim:
                            if t >= until and int(t * inv) <= v:
                                # Due this year: nothing anywhere can be
                                # earlier, so the drain is finished.
                                return
                            break  # bucket exhausted for this visit
                        pop(b)
                        sim._now = t
                        n += 1
                        fn = e[2]
                        if fn is None:  # _EVENT_MARKER
                            e[3]._process()
                        else:
                            fn(*e[3])
                    if n != before:
                        self._count -= n - before
                        counted = n
                        if not self._count:
                            return
                        if self._count > self._hi or self._count < self._lo:
                            # Callbacks pushed (or the bucket emptied)
                            # past a resize threshold -- fall out to the
                            # housekeeping loop to re-hoist locals.
                            break
                        scans = 0
                    else:
                        scans += 1
                        if scans >= nb:
                            e = self._min_entry()
                            if e[0] >= until:
                                return
                            # A whole year without a due entry: jump the
                            # cursor to the year of the global minimum.
                            v = int(e[0] * inv)
                            scans = 0
                            continue
                    v += 1
        finally:
            self._count -= n - counted
            self._vcur = int(sim._now * self._inv)
            sim._processed += n

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def remove_if(self, pred) -> int:
        """Remove every entry for which ``pred(entry)`` is true.

        Used by the engine's lazy-deletion compactor.  Entry identity and
        relative order of survivors are untouched, so compaction is
        invisible to the simulated trajectory.  Returns the number of
        entries removed.
        """
        removed = 0
        for b in self._buckets:
            if not b:
                continue
            kept = [e for e in b if not pred(e)]
            if len(kept) != len(b):
                removed += len(b) - len(kept)
                b[:] = kept
                heapify(b)
        self._count -= removed
        return removed

    def _resize(self) -> None:
        """Adapt bucket count and width to the current population.

        Doubles while ``count > 2 * nbuckets``, halves while
        ``count < nbuckets // 2`` (never below ``_MIN_BUCKETS``), and
        re-derives the width from the average gap of the earliest
        ``_SAMPLE`` entries (Brown's rule, x3 so a bucket holds a few
        entries).  Runs in O(count log count); amortized O(1) per
        operation because the thresholds are geometric.
        """
        entries = []
        for b in self._buckets:
            entries.extend(b)
        nb = self._nbuckets
        count = len(entries)
        while count > nb * 2:
            nb <<= 1
        while count < nb // 2 and nb > _MIN_BUCKETS:
            nb >>= 1
        entries.sort()
        k = min(count, _SAMPLE)
        if k >= 2:
            span = entries[k - 1][0] - entries[0][0]
            if span > 0.0:
                width = 3.0 * span / k
                if width < _MIN_WIDTH:
                    width = _MIN_WIDTH
                self._width = width
                self._inv = 1.0 / width
        self._nbuckets = nb
        self._mask = mask = nb - 1
        self._hi = nb * 2
        self._lo = nb // 2
        inv = self._inv
        buckets = [[] for _ in range(nb)]
        for e in entries:
            # Ascending append keeps each bucket a valid heap.
            buckets[int(e[0] * inv) & mask].append(e)
        self._buckets = buckets
        self._vcur = int(entries[0][0] * inv) if entries else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue n={self._count} buckets={self._nbuckets} "
            f"width={self._width:g}>"
        )
