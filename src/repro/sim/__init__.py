"""Discrete-event simulation kernel.

This subpackage provides the event-driven substrate on which the virtualized
data plane (:mod:`repro.dataplane`) and the multipath core
(:mod:`repro.core`) are built.  It is deliberately small and fast:

* :class:`~repro.sim.engine.Simulator` -- binary-heap event loop with a
  zero-allocation fast path (:meth:`~repro.sim.engine.Simulator.call_at`)
  used by per-packet code, plus full simpy-style generator processes for
  control-plane logic (pollers, schedulers, traffic sources).
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` --
  one-shot triggerable events with callback lists.
* :class:`~repro.sim.process.Process` -- generator-driven coroutine
  processes supporting interrupts.
* :mod:`~repro.sim.resources` -- ``Resource`` (k-server), ``Store``
  (FIFO object queue) and ``Container`` (continuous level) primitives.
* :mod:`~repro.sim.rng` -- deterministic, named random streams spawned
  from a single root seed so every experiment is reproducible.
Structured tracing lives in :mod:`repro.obs` (the pre-2.0
``repro.sim.trace`` alias was removed); the ``Tracer`` names
re-exported here come from there.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from repro.sim.engine import Simulator, NORMAL, URGENT, LOW
from repro.sim.events import Event, Timeout, AnyOf, AllOf, Condition
from repro.sim.process import Process, Interrupt
from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.resources import Resource, Store, PriorityStore, Container
from repro.sim.rng import RngRegistry, spawn_streams
from repro.obs.span import Tracer, TraceRecord, NullTracer

__all__ = [
    "Simulator",
    "NORMAL",
    "URGENT",
    "LOW",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Condition",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "Resource",
    "Store",
    "PriorityStore",
    "Container",
    "RngRegistry",
    "spawn_streams",
    "Tracer",
    "TraceRecord",
    "NullTracer",
]
