"""Shared-resource primitives: Resource, Store, PriorityStore, Container.

These follow simpy's request/release model, slimmed down:

* :class:`Resource` -- ``capacity`` identical servers.  ``request()``
  returns an event that fires when a slot is granted; ``release(req)``
  frees it.  Supports ``with``-style usage inside processes via the
  returned request object.
* :class:`Store` -- FIFO queue of Python objects with optional capacity.
  ``put(item)`` / ``get()`` return events.
* :class:`PriorityStore` -- like Store but ``get`` returns the smallest
  item (heap order).
* :class:`Container` -- continuous level (e.g. token bucket fill).

All waiters are served FIFO.  These primitives are used by control-plane
processes; the per-packet hot path uses the specialised queues in
:mod:`repro.dataplane` instead.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Request(Event):
    """Event granted by :meth:`Resource.request`; usable as context manager."""

    __slots__ = ("resource",)

    def __init__(self, sim, resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    __slots__ = ("sim", "capacity", "users", "queue")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Requests waiting for a slot.
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Free a previously granted slot (idempotent for waiting requests)."""
        try:
            self.users.remove(request)
        except ValueError:
            # Cancelling a queued request is allowed.
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release() of a request not held or queued")
            return
        if self.queue:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, sim, item: Any) -> None:
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    __slots__ = ()


class Store:
    """FIFO object queue with optional capacity.

    ``put`` blocks (the event stays pending) while the store is full;
    ``get`` blocks while it is empty.
    """

    __slots__ = ("sim", "capacity", "items", "_putters", "_getters")

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def _do_put(self, item: Any) -> None:
        self.items.append(item)

    def _do_get(self) -> Any:
        return self.items.pop(0)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; event fires when the item is accepted."""
        ev = StorePut(self.sim, item)
        if len(self.items) < self.capacity:
            self._do_put(item)
            ev.succeed()
            self._wake_getters()
        else:
            self._putters.append(ev)
        return ev

    def get(self) -> StoreGet:
        """Remove and return the next item; event value is the item."""
        ev = StoreGet(self.sim)
        if self.items:
            ev.succeed(self._do_get())
            self._wake_putters()
        else:
            self._getters.append(ev)
        return ev

    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self._do_get())

    def _wake_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self._do_put(putter.item)
            putter.succeed()
            self._wake_getters()


class PriorityStore(Store):
    """Store whose ``get`` returns the smallest item (heap ordered).

    Items must be mutually comparable; use ``(priority, seq, payload)``
    tuples for arbitrary payloads.
    """

    __slots__ = ()

    def _do_put(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _do_get(self) -> Any:
        return heapq.heappop(self.items)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, sim, amount: float) -> None:
        super().__init__(sim)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, sim, amount: float) -> None:
        super().__init__(sim)
        self.amount = amount


class Container:
    """A continuous level between 0 and ``capacity`` (token buckets etc.)."""

    __slots__ = ("sim", "capacity", "_level", "_putters", "_getters")

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._putters: Deque[ContainerPut] = deque()
        self._getters: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        ev = ContainerPut(self.sim, amount)
        if self._level + amount <= self.capacity:
            self._level += amount
            ev.succeed()
            self._wake_getters()
        else:
            self._putters.append(ev)
        return ev

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        ev = ContainerGet(self.sim, amount)
        if amount <= self._level:
            self._level -= amount
            ev.succeed()
            self._wake_putters()
        else:
            self._getters.append(ev)
        return ev

    def _wake_getters(self) -> None:
        while self._getters and self._getters[0].amount <= self._level:
            getter = self._getters.popleft()
            self._level -= getter.amount
            getter.succeed()

    def _wake_putters(self) -> None:
        while self._putters and self._level + self._putters[0].amount <= self.capacity:
            putter = self._putters.popleft()
            self._level += putter.amount
            putter.succeed()
            self._wake_getters()
