"""Deprecated alias of :mod:`repro.obs.span`.

The tracer implementation moved to :mod:`repro.obs.span` when the
observability subsystem was introduced; this module re-exports the same
names so existing imports (``from repro.sim.trace import Tracer``) keep
working for one more release, with a :class:`DeprecationWarning` on
import.  New code must import from :mod:`repro.obs`.
"""

from __future__ import annotations

import warnings

from repro.obs.span import (  # noqa: F401
    NullTracer,
    SpanTracer,
    TraceRecord,
    Tracer,
    _NullTracer,
)

warnings.warn(
    "repro.sim.trace is deprecated; import Tracer/SpanTracer/NullTracer "
    "from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Tracer", "SpanTracer", "TraceRecord", "NullTracer"]
