"""Structured tracing of per-packet stage timings (compatibility alias).

The tracer implementation moved to :mod:`repro.obs.span` when the
observability subsystem was introduced; this module re-exports the same
names so existing imports (``from repro.sim.trace import Tracer``) keep
working unchanged.  New code should import from :mod:`repro.obs`.

The move also fixed the old ``per_packet`` full-scan: the tracer now
keeps a per-packet index, so per-packet lookups are O(spans-of-packet)
instead of O(all records).
"""

from __future__ import annotations

from repro.obs.span import (  # noqa: F401
    NullTracer,
    SpanTracer,
    TraceRecord,
    Tracer,
    _NullTracer,
)

__all__ = ["Tracer", "SpanTracer", "TraceRecord", "NullTracer"]
