"""Deprecated alias of :mod:`repro.obs.span`.

The tracer implementation moved to :mod:`repro.obs.span` when the
observability subsystem was introduced; this module re-exports the same
names so existing imports (``from repro.sim.trace import Tracer``) keep
working for one more release, with a :class:`DeprecationWarning` on
import.  New code must import from :mod:`repro.obs`.
"""

from __future__ import annotations

import warnings

import repro.obs.span as _span
from repro.obs.span import (  # noqa: F401
    NullTracer,
    SpanTracer,
    TraceRecord,
    Tracer,
    _NullTracer,
)

# Warn once per *process*, not once per import: the flag lives on the
# (stable) target module, so even importlib.reload() of this alias does
# not re-fire the warning.
if not getattr(_span, "_TRACE_ALIAS_WARNED", False):
    _span._TRACE_ALIAS_WARNED = True
    warnings.warn(
        "repro.sim.trace is deprecated; import Tracer/SpanTracer/NullTracer "
        "from repro.obs instead",
        DeprecationWarning,
        stacklevel=2,
    )

__all__ = ["Tracer", "SpanTracer", "TraceRecord", "NullTracer"]
