"""Structured tracing of per-packet stage timings.

The latency-breakdown experiment (F2) needs to know *where* a packet spent
its time: NIC ring, vSwitch queue, scheduler stall, NF service, reorder
buffer.  Components report ``(time, stage, packet_id, dt, extra)`` records
to a :class:`Tracer`; the breakdown analysis aggregates them.

Tracing is off by default: the :class:`NullTracer` singleton swallows all
records with a no-op method so the hot path pays a single attribute lookup
plus a call when disabled, and model code never needs ``if tracer:``
branches.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, NamedTuple


class TraceRecord(NamedTuple):
    """One stage-latency observation."""

    time: float  #: simulation time when the stage completed
    stage: str  #: stage label, e.g. "vswitch_queue"
    packet_id: int
    dt: float  #: time spent in the stage
    extra: Any  #: optional component-specific payload


class Tracer:
    """Accumulates :class:`TraceRecord` entries in memory."""

    __slots__ = ("records", "enabled")

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.enabled = True

    def record(
        self,
        time: float,
        stage: str,
        packet_id: int,
        dt: float,
        extra: Any = None,
    ) -> None:
        """Append one observation."""
        self.records.append(TraceRecord(time, stage, packet_id, dt, extra))

    def clear(self) -> None:
        """Drop all accumulated records."""
        self.records.clear()

    def by_stage(self) -> Dict[str, List[float]]:
        """Group ``dt`` values by stage label."""
        out: Dict[str, List[float]] = defaultdict(list)
        for rec in self.records:
            out[rec.stage].append(rec.dt)
        return dict(out)

    def stage_totals(self) -> Dict[str, float]:
        """Total time spent per stage across all packets."""
        out: Dict[str, float] = defaultdict(float)
        for rec in self.records:
            out[rec.stage] += rec.dt
        return dict(out)

    def per_packet(self, packet_id: int) -> List[TraceRecord]:
        """All records for one packet, in insertion (time) order."""
        return [r for r in self.records if r.packet_id == packet_id]

    def __len__(self) -> int:
        return len(self.records)


class _NullTracer:
    """No-op tracer used when tracing is disabled."""

    __slots__ = ()

    enabled = False
    records: List[TraceRecord] = []

    def record(self, time, stage, packet_id, dt, extra=None) -> None:
        pass

    def clear(self) -> None:
        pass

    def by_stage(self) -> Dict[str, List[float]]:
        return {}

    def stage_totals(self) -> Dict[str, float]:
        return {}

    def per_packet(self, packet_id: int) -> List[TraceRecord]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer instance.
NullTracer = _NullTracer()
