"""One-shot events and condition events.

The event model follows simpy's semantics, trimmed to what the data-plane
models need:

* an :class:`Event` is created *pending*, may be *triggered* exactly once
  (with :meth:`Event.succeed` or :meth:`Event.fail`), after which it is
  scheduled and its callbacks run at the current simulation time;
* a :class:`Timeout` is created already triggered and scheduled ``delay``
  time units in the future;
* :class:`AnyOf` / :class:`AllOf` compose several events into one.

Callbacks are plain callables invoked as ``cb(event)``.  Processes register
their ``_resume`` bound method as a callback when they yield an event.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.sim.errors import SimulationError

#: Sentinel for "event has not been assigned a value yet".
PENDING = object()


class Event:
    """A one-shot occurrence inside a :class:`~repro.sim.engine.Simulator`.

    Lifecycle::

        pending --(succeed/fail)--> triggered --(heap pop)--> processed

    Parameters
    ----------
    sim:
        Owning simulator.  Events may only be used with the simulator that
        created/owns them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Callables run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        """Trigger the event successfully with ``value``.

        The event is scheduled at the current simulation time; callbacks run
        when the event loop reaches it.  Raises :class:`SimulationError` if
        the event was already triggered.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule_event(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        """Trigger the event with an exception.

        A failed event re-raises ``exception`` inside every process waiting
        on it.  If nothing waits on it and nobody calls :meth:`defused`, the
        exception propagates out of :meth:`Simulator.run` to avoid silently
        swallowed errors.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if self._value is not PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.sim._schedule_event(self, 0.0, 1)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # ------------------------------------------------------------------
    # Internal: run callbacks (called by the event loop)
    # ------------------------------------------------------------------
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody handled the failure.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Created pre-triggered; it cannot be failed or re-triggered.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None, priority: int = 1) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay, priority)

    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        raise SimulationError("Timeout events are triggered at creation")

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        raise SimulationError("Timeout events are triggered at creation")


class Condition(Event):
    """Base for events composed of several sub-events.

    Subclasses define :meth:`_evaluate`, invoked each time a sub-event
    fires, returning True when the condition is satisfied.  The condition's
    value is a dict mapping each *triggered* sub-event to its value, in
    trigger order.
    """

    __slots__ = ("events", "_count")

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_sub_event(ev)
            else:
                ev.callbacks.append(self._on_sub_event)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered and ev.processed}

    def _on_sub_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._count += 1
        if self._evaluate():
            self.succeed(self._collect())

    def _evaluate(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires once *all* sub-events have fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count == len(self.events)


class AnyOf(Condition):
    """Fires as soon as *any* sub-event has fired."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count >= 1
