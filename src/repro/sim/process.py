"""Generator-based coroutine processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps until
that event fires, then resumes with the event's value (``value = yield ev``).
A failed event re-raises its exception inside the generator at the yield
point.  The process itself *is* an event -- it fires with the generator's
return value -- so processes can wait on each other.

Interrupts
----------
:meth:`Process.interrupt` injects an :class:`Interrupt` exception into the
generator at its current yield point, without cancelling the event it was
waiting on.  This models preemption: the data plane uses it for vCPU
descheduling of pollers.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.events import Event, PENDING


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    Attributes
    ----------
    cause:
        Arbitrary object passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """An event that fires when its generator terminates."""

    __slots__ = ("_generator", "_target")

    def __init__(self, sim, generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick off the process at the current time via an initialisation
        # event so that process start order is deterministic.
        init = Event(sim)
        init._ok = True
        init._value = None
        sim._schedule_event(init, 0.0, 1)
        init.callbacks.append(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The interrupt is delivered asynchronously (via an URGENT event at
        the current time), so it is safe to call from any context,
        including from the interrupted process' own waiters.  Interrupting
        a dead process raises :class:`SimulationError`.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._generator.gi_running:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.sim)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume_interrupt)
        self.sim._schedule_event(interrupt_ev, 0.0, 0)  # URGENT

    # ------------------------------------------------------------------
    # Resumption machinery
    # ------------------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # process ended between interrupt() and delivery
        # Detach from the event we were waiting on; it may still fire but
        # must no longer resume us (we re-register if the generator yields
        # the same event again).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event._value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            event.defuse()
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as exc:
            self._ok = True
            self._value = exc.value
            self.sim._schedule_event(self, 0.0, 1)
            return
        except Interrupt as exc:
            # Unhandled interrupt terminates the process as a failure.
            self._ok = False
            self._value = exc
            self.sim._schedule_event(self, 0.0, 1)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.sim._schedule_event(self, 0.0, 1)
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self._generator!r} yielded a non-event: {target!r}"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        if target.processed:
            # Already done: resume immediately (but via the schedule so that
            # the process does not starve the event loop).
            resume_ev = Event(self.sim)
            resume_ev._ok = target._ok
            resume_ev._value = target._value
            if not target._ok:
                resume_ev._defused = True
            resume_ev.callbacks.append(self._resume)
            self.sim._schedule_event(resume_ev, 0.0, 1)
            self._target = resume_ev
        else:
            target.callbacks.append(self._resume)
            self._target = target
