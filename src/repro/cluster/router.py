"""Per-host cluster router: the seam between source, fabric and host.

In a cluster run each host's traffic source no longer feeds the host's
NIC directly -- it feeds this router (via the ``sink`` override of
:func:`repro.bench.scenarios.build_runtime`).  The router assigns every
**flow** a destination host per the cluster pattern, then either

* delivers the packet into its own host's data plane (local flow), or
* steers it across the fabric (:class:`~repro.net.fabric.FabricSteering`
  picks spine, delay and loss) and emits a schema-versioned envelope
  that the shard engine forwards at the next epoch barrier.

Destination assignment is per-flow, not per-packet: a flow's packets
all land on one host, so per-flow sequence numbers stay gap-free and
the destination's reorder buffer sees a normal flow.

Conservation across the shard boundary is exact and testable: for every
host pair ``(i, j)``, ``sent_i[j] == received_j[i] +
fabric_dropped_j[i]`` -- lost packets still travel as envelopes flagged
``dropped`` and are *accounted* (never delivered) at the receiver, so
no packet can silently vanish between shards (see
:func:`repro.check.cluster.check_cluster_conservation`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dataplane.boundary import (
    ARRIVE_IDX,
    DROPPED_IDX,
    SRC_IDX,
    decode_envelope,
    encode_envelope,
)
from ..net.fabric import FabricSteering


class ClusterRouter:
    """Routes one host's generated flows to local or remote hosts.

    Created *before* the host runtime (it is the source's sink), then
    :meth:`bind`-ed to the built runtime.  All randomness (flow
    destinations, fabric steering) comes from the bound host's own RNG
    registry, so routing is a pure function of the host's derived seed.
    """

    __slots__ = ("host_id", "n_hosts", "pattern", "incast_target",
                 "steering", "sim", "factory", "local_sink", "_route_rng",
                 "_dst_by_tuple", "outgoing", "_env_seq",
                 "generated", "local", "sent", "received", "fabric_dropped")

    def __init__(self, host_id: int, n_hosts: int, pattern: str,
                 incast_target: int, fabric_config) -> None:
        self.host_id = host_id
        self.n_hosts = n_hosts
        self.pattern = pattern
        self.incast_target = incast_target
        self.steering = FabricSteering(fabric_config)
        self.sim = None
        self.factory = None
        self.local_sink = None
        self._route_rng = None
        self._dst_by_tuple: Dict = {}
        #: Envelopes emitted this epoch; drained by the shard at barriers.
        self.outgoing: List[Tuple] = []
        self._env_seq = 0
        self.generated = 0
        self.local = 0
        self.sent: Dict[int, int] = {}
        self.received: Dict[int, int] = {}
        self.fabric_dropped: Dict[int, int] = {}

    def bind(self, runtime) -> None:
        """Attach the built host runtime (simulator, factory, ingress)."""
        self.sim = runtime.sim
        self.factory = runtime.host.factory
        self.local_sink = runtime.host.input
        self._route_rng = runtime.rngs.stream("cluster.route")
        self.steering.rng = runtime.rngs.stream("cluster.fabric")

    # ------------------------------------------------------------------
    # Egress: the traffic source's sink
    # ------------------------------------------------------------------
    def __call__(self, pkt) -> None:
        self.generated += 1
        ft = pkt.ftuple
        dst = self._dst_by_tuple.get(ft)
        if dst is None:
            dst = self._assign_dst()
            self._dst_by_tuple[ft] = dst
        if dst == self.host_id:
            self.local += 1
            self.local_sink(pkt)
            return
        now = self.sim._now
        _spine, delay, lost = self.steering.transit(
            self.host_id, pkt.flow_id, now
        )
        env = encode_envelope(pkt, self.host_id, dst, self._env_seq,
                              now, now + delay, _spine, lost)
        self._env_seq += 1
        self.sent[dst] = self.sent.get(dst, 0) + 1
        self.outgoing.append(env)
        # The packet object never leaves this process; the envelope
        # carries everything, so the carcass can feed the local pool.
        self.factory.recycle(pkt)

    def _assign_dst(self) -> int:
        if self.pattern == "incast":
            # Non-target hosts converge on the target; the target's own
            # traffic stays local (it is the server, not a client).
            return self.incast_target
        return int(self._route_rng.integers(self.n_hosts))

    # ------------------------------------------------------------------
    # Ingress: envelopes forwarded by the shard engine at barriers
    # ------------------------------------------------------------------
    def schedule(self, env: Tuple) -> None:
        """Queue one incoming envelope for arrival-time injection.

        Goes through :meth:`Simulator.external_event`, which enforces
        the lookahead contract (arrival must be at or after the current
        epoch floor).
        """
        self.sim.external_event(env[ARRIVE_IDX], self._arrive, env)

    def _arrive(self, env: Tuple) -> None:
        src = env[SRC_IDX]
        if env[DROPPED_IDX]:
            self.fabric_dropped[src] = self.fabric_dropped.get(src, 0) + 1
            return
        self.received[src] = self.received.get(src, 0) + 1
        self.local_sink(decode_envelope(env, self.factory))

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """JSON-friendly routing/conservation counters for this host."""
        return {
            "generated": self.generated,
            "local": self.local,
            "sent": {str(k): v for k, v in sorted(self.sent.items())},
            "received": {str(k): v
                         for k, v in sorted(self.received.items())},
            "fabric_dropped": {str(k): v for k, v
                               in sorted(self.fabric_dropped.items())},
            "by_spine": {str(k): v for k, v
                         in sorted(self.steering.by_spine.items()) if v},
        }
