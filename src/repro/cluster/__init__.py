"""repro.cluster -- rack-scale sharded simulation.

Partitions a :class:`ClusterConfig` (N hosts + a fabric topology)
across a multiprocessing worker pool, one shard of hosts per worker,
synchronized with conservative barrier epochs whose length equals the
fabric's minimum inter-host latency (the lookahead).  Each shard runs
the existing single-host engine unmodified, so the paper's intra-host
("last-mile") multipath composes with fabric multipath (ECMP/flowlet);
cross-shard sends travel as schema-versioned envelopes and merge into
one :class:`ClusterResult`.

Quickstart::

    import repro
    from repro import ClusterConfig, ScenarioConfig

    cluster = ClusterConfig.uniform_hosts(
        n_hosts=8,
        scenario=ScenarioConfig(policy="adaptive", n_paths=4, load=0.6,
                                duration=50_000.0),
        seed=7,
    )
    result = repro.run(cluster, repro.RunOptions(workers=4))
    print(result.summary, result.cluster["delivery_ratio"])

Same seed => bit-identical :meth:`ClusterResult.to_dict` at any worker
count.  See ``docs/CLUSTER.md`` for the sharding model, the lookahead
contract and the determinism guarantees.
"""

from repro.cluster.config import (
    PATTERN_KINDS,
    ClusterConfig,
    HostConfig,
    derived_host_seed,
)
from repro.cluster.engine import (
    ClusterExecutionError,
    partition_hosts,
    resolve_workers,
    run_cluster,
)
from repro.cluster.result import ClusterResult, merge_summaries
from repro.net.fabric import FabricConfig

__all__ = [
    "ClusterConfig",
    "ClusterExecutionError",
    "ClusterResult",
    "FabricConfig",
    "HostConfig",
    "PATTERN_KINDS",
    "derived_host_seed",
    "merge_summaries",
    "partition_hosts",
    "resolve_workers",
    "run_cluster",
]
