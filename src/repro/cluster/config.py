"""Cluster configuration: hosts + fabric + traffic pattern.

A :class:`ClusterConfig` is N :class:`HostConfig`\\ s (each wrapping the
familiar single-host :class:`~repro.bench.scenarios.ScenarioConfig`)
joined by a :class:`~repro.net.fabric.FabricConfig` topology and a
cluster-level **pattern** deciding which host each flow is destined to:

* ``"uniform"`` -- every flow picks a destination uniformly over all
  hosts (including its own, so ``1/N`` of traffic stays local);
* ``"incast"`` -- every non-target host sends *all* its flows to
  ``incast_target`` (the classic fan-in hotspot); the target's own
  traffic stays local.

All three config classes carry the same
``validate()/to_dict()/from_dict()`` round-trip contract as
``ScenarioConfig`` and are registered payload kinds in
:mod:`repro.schemas`, so cluster specs serialize, hash and load exactly
like single-host specs.

Seeds: ``ClusterConfig.seed`` is the cluster seed.  Each host runs with
a derived seed mixed from ``(cluster seed, host id, the host scenario's
own seed)`` via :func:`numpy.random.SeedSequence`, so hosts are
decorrelated by construction and a host's random streams never depend
on which worker simulates it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..bench.scenarios import ScenarioConfig
from ..net.fabric import FabricConfig

#: Flow-destination patterns :func:`repro.cluster.run_cluster` understands.
PATTERN_KINDS = ("uniform", "incast")


def derived_host_seed(cluster_seed: int, host_id: int,
                      scenario_seed: int) -> int:
    """The effective scenario seed for one host of a cluster run.

    Mixed through :class:`numpy.random.SeedSequence` so nearby cluster
    seeds / host ids give statistically independent streams, and stable
    across platforms and worker counts (pure function of its inputs).
    """
    ss = np.random.SeedSequence(
        entropy=cluster_seed & 0xFFFFFFFFFFFFFFFF,
        spawn_key=(host_id, scenario_seed & 0xFFFFFFFFFFFFFFFF),
    )
    return int(ss.generate_state(1)[0])


@dataclass
class HostConfig:
    """One host of a cluster: a scenario plus a label.

    ``scenario.seed`` acts as a per-host salt: the host's effective
    seed is derived from it together with the cluster seed and host id
    (see :func:`derived_host_seed`), so two hosts sharing a template
    scenario still run decorrelated traffic.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    name: str = ""

    def validate(self) -> "HostConfig":
        """Check the wrapped scenario, plus cluster-only restrictions."""
        self.scenario.validate()
        if self.scenario.traffic == "flows":
            raise ValueError(
                "traffic='flows' is not supported inside a cluster: "
                "flow-completion tracking does not survive the remote "
                "redirect; use 'poisson', 'onoff' or 'incast' per host"
            )
        try:
            self.scenario.to_dict()
        except TypeError as exc:
            raise ValueError(
                f"cluster host scenarios must be serializable (they "
                f"cross process boundaries): {exc}"
            ) from None
        return self

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        from repro import schemas

        return {
            "schema_version": schemas.version_for("host_config"),
            "scenario": self.scenario.to_dict(),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "HostConfig":
        """Build a config from :meth:`to_dict`-shaped (JSON) data."""
        kw = dict(data)
        kw.pop("schema_version", None)
        unknown = set(kw) - {"scenario", "name"}
        if unknown:
            raise ValueError(
                f"unknown HostConfig field(s) {sorted(unknown)}; "
                f"valid fields: ['name', 'scenario']"
            )
        scenario = kw.get("scenario", {})
        if not isinstance(scenario, ScenarioConfig):
            scenario = ScenarioConfig.from_dict(scenario)
        return cls(scenario=scenario, name=kw.get("name", ""))


@dataclass
class ClusterConfig:
    """A rack of hosts behind a multipath fabric.

    Attributes
    ----------
    hosts:
        Per-host configs; the list index is the host id.
    fabric:
        Topology + steering between hosts (:class:`FabricConfig`).
    pattern / incast_target:
        Flow-destination pattern (see module docstring).
    seed:
        Cluster seed; per-host seeds derive from it.
    epoch:
        Synchronization epoch length (µs) for the sharded engine, or
        ``None`` for the maximum conservative value
        (``fabric.min_latency()``).  Must not exceed the fabric's
        minimum latency -- that is the lookahead contract.
    """

    hosts: List[HostConfig] = field(default_factory=list)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    pattern: str = "uniform"
    incast_target: int = 0
    seed: int = 42
    epoch: Optional[float] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def uniform_hosts(cls, n_hosts: int,
                      scenario: Optional[ScenarioConfig] = None,
                      fabric: Optional[FabricConfig] = None,
                      **kw) -> "ClusterConfig":
        """N identical hosts from one template scenario.

        The template is copied per host through its serialized form, so
        later mutation of the template never aliases into the cluster.
        Remaining keyword arguments go to the :class:`ClusterConfig`
        constructor (``pattern=...``, ``seed=...``, ...).
        """
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        template = scenario if scenario is not None else ScenarioConfig()
        as_dict = template.to_dict()
        hosts = [HostConfig(scenario=ScenarioConfig.from_dict(dict(as_dict)),
                            name=f"host{i}")
                 for i in range(n_hosts)]
        return cls(hosts=hosts,
                   fabric=fabric if fabric is not None else FabricConfig(),
                   **kw)

    # -- derived quantities --------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def epoch_length(self) -> float:
        """Effective epoch length: the explicit one or the lookahead."""
        return self.epoch if self.epoch is not None \
            else self.fabric.min_latency()

    def horizon(self) -> float:
        """Nominal cluster run end: the slowest host's duration+drain."""
        return max(h.scenario.duration + h.scenario.drain
                   for h in self.hosts)

    # -- validation -----------------------------------------------------
    def validate(self) -> "ClusterConfig":
        """Check every field and host, raising ``ValueError`` with an
        actionable message on the first problem."""
        if not self.hosts:
            raise ValueError("a cluster needs at least one host")
        for i, h in enumerate(self.hosts):
            if not isinstance(h, HostConfig):
                raise ValueError(
                    f"hosts[{i}] must be a HostConfig, "
                    f"got {type(h).__name__}"
                )
            try:
                h.validate()
            except ValueError as exc:
                raise ValueError(f"hosts[{i}]: {exc}") from None
        self.fabric.validate()
        if self.pattern not in PATTERN_KINDS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; "
                f"available: {', '.join(PATTERN_KINDS)}"
            )
        if not 0 <= self.incast_target < len(self.hosts):
            raise ValueError(
                f"incast_target {self.incast_target} out of range for "
                f"{len(self.hosts)} host(s)"
            )
        if self.epoch is not None:
            if self.epoch <= 0:
                raise ValueError(
                    f"epoch must be positive (µs), got {self.epoch}"
                )
            if self.epoch > self.fabric.min_latency():
                raise ValueError(
                    f"epoch {self.epoch}µs exceeds the fabric's minimum "
                    f"latency {self.fabric.min_latency()}µs: the "
                    f"conservative lookahead contract requires epoch <= "
                    f"min inter-host wire latency"
                )
        return self

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        from repro import schemas

        return {
            "schema_version": schemas.version_for("cluster_config"),
            "hosts": [h.to_dict() for h in self.hosts],
            "fabric": self.fabric.to_dict(),
            "pattern": self.pattern,
            "incast_target": self.incast_target,
            "seed": self.seed,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterConfig":
        """Build a config from :meth:`to_dict`-shaped (JSON) data."""
        kw = dict(data)
        kw.pop("schema_version", None)
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kw) - names
        if unknown:
            raise ValueError(
                f"unknown ClusterConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(names)}"
            )
        hosts = [h if isinstance(h, HostConfig) else HostConfig.from_dict(h)
                 for h in kw.get("hosts", [])]
        fabric = kw.get("fabric", None)
        if fabric is None:
            fabric = FabricConfig()
        elif not isinstance(fabric, FabricConfig):
            fabric = FabricConfig.from_dict(fabric)
        return cls(
            hosts=hosts,
            fabric=fabric,
            pattern=kw.get("pattern", "uniform"),
            incast_target=kw.get("incast_target", 0),
            seed=kw.get("seed", 42),
            epoch=kw.get("epoch", None),
        )
