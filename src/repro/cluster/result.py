"""Merged output of a cluster run.

A :class:`ClusterResult` aggregates one payload dict per host (the
host's :meth:`SimulationResult.to_dict` plus its router/conservation
counters and a retained latency sample) under cluster-wide summaries.

Determinism contract: the result is a pure function of
``(ClusterConfig, seed)``.  Worker count, wall-clock time and telemetry
attachment are *observations* of the run, not part of it --
``workers``/``wall_s`` live on the object for reporting but are
deliberately excluded from :meth:`ClusterResult.to_dict`, so the
serialized payload is bit-identical at ``workers=1`` and ``workers=4``
(pinned by ``tests/test_cluster.py``).

Cluster-wide percentiles are computed by a **weighted merge** of each
host's retained evenly-spaced order statistics: host *i* contributes
``count_i / len(samples_i)`` weight per retained sample, so hosts are
represented proportionally to their delivered traffic regardless of
how many samples each retained.  Count, mean, std and max merge
exactly from the per-host summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..metrics.stats import LatencySummary
from .config import ClusterConfig

#: Retained order statistics per host (matches the ledger's default).
MAX_HOST_SAMPLES = 2000


def retained_samples(values, max_samples: int = MAX_HOST_SAMPLES
                     ) -> List[float]:
    """Deterministic downsample: evenly spaced order statistics."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size <= max_samples:
        return [float(v) for v in arr]
    idx = np.linspace(0, arr.size - 1, max_samples).astype(int)
    return [float(v) for v in arr[idx]]


def merge_summaries(summaries: List[Dict],
                    samples: List[List[float]]) -> LatencySummary:
    """Cluster-wide :class:`LatencySummary` from per-host parts.

    ``summaries`` are per-host ``LatencySummary.to_dict()`` payloads;
    ``samples`` the matching retained order statistics.  Count, mean,
    std (via pooled second moments) and max are exact; percentiles come
    from the weighted sample merge described in the module docstring.
    """
    counts = [int(s["count"]) for s in summaries]
    total = sum(counts)
    if total == 0:
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    mean = sum(c * float(s["mean"])
               for c, s in zip(counts, summaries) if c) / total
    # Pooled E[x^2] from per-host mean/std reconstructs the exact
    # cluster-wide variance (population convention, matching summarize).
    e2 = sum(c * (float(s["std"]) ** 2 + float(s["mean"]) ** 2)
             for c, s in zip(counts, summaries) if c) / total
    std = float(np.sqrt(max(e2 - mean * mean, 0.0)))
    mx = max(float(s["max"]) for c, s in zip(counts, summaries) if c)

    values, weights = [], []
    for c, host_samples in zip(counts, samples):
        if c and host_samples:
            values.append(np.asarray(host_samples, dtype=np.float64))
            weights.append(np.full(len(host_samples), c / len(host_samples)))
    v = np.concatenate(values)
    w = np.concatenate(weights)
    order = np.argsort(v, kind="stable")
    v, w = v[order], w[order]
    cum = np.cumsum(w)
    pcts = {}
    for pct, key in ((50.0, "p50"), (90.0, "p90"), (95.0, "p95"),
                     (99.0, "p99"), (99.9, "p999")):
        target = pct / 100.0 * cum[-1]
        i = int(np.searchsorted(cum, target, side="left"))
        pcts[key] = float(v[min(i, len(v) - 1)])
    return LatencySummary(count=total, mean=float(mean), std=std,
                          max=mx, **pcts)


@dataclass
class ClusterResult:
    """Output of one :func:`repro.cluster.run_cluster` call.

    Attributes
    ----------
    config:
        The validated :class:`ClusterConfig` that produced the run.
    hosts:
        One payload dict per host (index = host id): the host's
        ``SimulationResult.to_dict()`` plus ``"router"`` (routing and
        conservation counters) and ``"latency_samples"`` (retained
        order statistics feeding the cluster-wide percentile merge).
    summary:
        Cluster-wide delivered-latency summary (weighted merge).
    cluster:
        Cluster-level totals: offered/delivered packets, local vs
        remote split, envelopes sent/received/fabric-dropped, delivery
        ratio, epoch bookkeeping.
    sim_time:
        Final simulation clock (µs), common to every host.
    workers / wall_s:
        How the run was executed and how long it took -- observations,
        excluded from :meth:`to_dict` (see module docstring).
    """

    config: ClusterConfig
    hosts: List[Dict]
    summary: LatencySummary
    cluster: Dict
    sim_time: float
    workers: int = 0
    wall_s: float = 0.0

    @property
    def p99(self) -> float:
        return self.summary.p99

    @property
    def p999(self) -> float:
        return self.summary.p999

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def delivered_pps(self) -> float:
        """Aggregate delivered packets per wall-second of simulated time."""
        if self.sim_time <= 0:
            return 0.0
        return self.cluster["delivered"] / (self.sim_time / 1e6)

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`).

        Excludes ``workers`` and ``wall_s``: the payload is the
        *simulated outcome*, bit-identical however the run was sharded.
        """
        from repro import schemas

        return {
            "schema_version": schemas.version_for("cluster_result"),
            "config": self.config.to_dict(),
            "n_hosts": len(self.hosts),
            "hosts": self.hosts,
            "summary": self.summary.to_dict(),
            "cluster": self.cluster,
            "sim_time": self.sim_time,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro import schemas

        schemas.check_version(data, "cluster_result")
        return cls(
            config=ClusterConfig.from_dict(data["config"]),
            hosts=list(data["hosts"]),
            summary=LatencySummary.from_dict(data["summary"]),
            cluster=dict(data["cluster"]),
            sim_time=float(data["sim_time"]),
        )
