"""The spatially-sharded parallel discrete-event engine.

:func:`run_cluster` partitions a :class:`ClusterConfig`'s hosts into
contiguous shards, one shard per worker process, and synchronizes them
with **conservative barrier epochs**: the global timeline is cut into
epochs of length ``L <= fabric.min_latency()`` (the lookahead), every
shard independently simulates ``[T, T + L)``, and cross-host packet
envelopes are exchanged at the barrier.  Because the fabric's latency
model is bounded below by ``L`` (see :mod:`repro.net.fabric`), an
envelope emitted during an epoch can only arrive in a *later* epoch --
so no shard can ever receive an event for simulated time it has already
passed, and no rollbacks or null messages are needed beyond the barrier
itself.

Determinism is structural, not incidental:

* each host is its own logical process -- own :class:`Simulator`, own
  RNG registry (seeded by :func:`derived_host_seed`), own packet
  factory -- so a host's trajectory is a pure function of its derived
  seed and the envelopes it receives;
* incoming envelopes are injected in the canonical order
  ``(arrive_time, src_host, env_seq)`` whatever order shards produced
  them in;
* ``workers=1`` runs the *same* epoch loop inline -- worker count only
  changes which OS process executes a host, never what the host
  computes.  ``tests/test_cluster.py`` pins workers=1 vs workers=4
  bit-identity of the full :class:`ClusterResult` payload.
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.scenarios import ScenarioConfig, build_runtime
from ..dataplane.boundary import ARRIVE_IDX, DST_IDX, SEQ_IDX, SRC_IDX
from .config import ClusterConfig, derived_host_seed
from .result import ClusterResult, merge_summaries, retained_samples
from .router import ClusterRouter

#: Canonical injection order for envelopes arriving at one host.
def _envelope_key(env: Tuple) -> Tuple:
    return (env[ARRIVE_IDX], env[SRC_IDX], env[SEQ_IDX])


def resolve_workers(workers: Optional[int], n_hosts: int) -> int:
    """Worker-count resolution, mirroring the sweep orchestrator rules.

    Explicit argument wins; else the ``REPRO_CLUSTER_WORKERS`` env var;
    else ``min(n_hosts, cpu_count)``.  Nested inside a daemonized pool
    worker the count is forced to 1 (no grandchild processes).
    """
    if workers is None:
        env = os.environ.get("REPRO_CLUSTER_WORKERS")
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_CLUSTER_WORKERS must be an int, got {env!r}"
                ) from None
    if workers is None or workers <= 0:
        workers = min(n_hosts, os.cpu_count() or 1) or 1
    if multiprocessing.current_process().daemon:
        return 1  # nested inside a pool worker: no grandchild processes
    return max(1, min(workers, n_hosts or 1))


def partition_hosts(n_hosts: int, workers: int) -> List[List[int]]:
    """Contiguous balanced shards: host ids per worker, no gaps."""
    base, extra = divmod(n_hosts, workers)
    shards, start = [], 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return [s for s in shards if s]


class _Shard:
    """One shard: a set of host logical processes in one OS process."""

    def __init__(self, cluster: ClusterConfig, host_ids: Sequence[int],
                 *, telemetry: bool = False, check=None, forensics=None,
                 recycle: bool = True, scheduler=None) -> None:
        self.cluster = cluster
        self.host_ids = list(host_ids)
        self.telemetry = telemetry
        self.runtimes: Dict[int, object] = {}
        self.routers: Dict[int, ClusterRouter] = {}
        n = cluster.n_hosts
        for hid in self.host_ids:
            hcfg = cluster.hosts[hid]
            # Canonical per-host copy (same object graph a worker gets
            # after crossing a process boundary) with the derived seed.
            scen = ScenarioConfig.from_dict(hcfg.scenario.to_dict())
            scen.seed = derived_host_seed(cluster.seed, hid,
                                          hcfg.scenario.seed)
            router = ClusterRouter(hid, n, cluster.pattern,
                                   cluster.incast_target, cluster.fabric)
            tel = None
            if telemetry:
                from repro.obs import Telemetry

                tel = Telemetry()
            rt = build_runtime(scen, telemetry=tel, check=check,
                               recycle=recycle, forensics=forensics,
                               sink=router, scheduler=scheduler)
            router.bind(rt)
            rt.start()
            self.runtimes[hid] = rt
            self.routers[hid] = router

    def run_epoch(self, end: float, incoming: List[Tuple]) -> List[Tuple]:
        """Advance every host to ``end``; return envelopes they emitted.

        ``incoming`` holds this shard's due envelopes in canonical
        order; they are scheduled (via the lookahead-checked
        ``external_event``) before the epoch runs.
        """
        routers = self.routers
        for env in incoming:
            routers[env[DST_IDX]].schedule(env)
        out: List[Tuple] = []
        for hid in self.host_ids:
            self.runtimes[hid].sim.run_epoch(end)
            router = routers[hid]
            if router.outgoing:
                out.extend(router.outgoing)
                router.outgoing = []
        return out

    def finalize(self, telemetry_dir: Optional[str] = None) -> Dict[int, Dict]:
        """Finalize every host; return per-host payload dicts."""
        payloads: Dict[int, Dict] = {}
        for hid in self.host_ids:
            rt = self.runtimes[hid]
            result = rt.finalize()
            payload = result.to_dict()
            payload["host_id"] = hid
            payload["name"] = self.cluster.hosts[hid].name or f"host{hid}"
            payload["router"] = self.routers[hid].stats()
            payload["latency_samples"] = retained_samples(
                result.host.sink.recorder.values()
            )
            if telemetry_dir is not None and result.telemetry is not None:
                result.telemetry.export(
                    os.path.join(telemetry_dir, f"host{hid}")
                )
            payloads[hid] = payload
        return payloads


def _worker_main(conn, cluster_dict: Dict, host_ids: List[int],
                 opts: Dict) -> None:
    """Worker process body: build the shard, serve epoch/finalize requests."""
    try:
        shard = _Shard(ClusterConfig.from_dict(cluster_dict), host_ids,
                       telemetry=opts.get("telemetry", False),
                       check=opts.get("check"),
                       forensics=opts.get("forensics"),
                       recycle=opts.get("recycle", True),
                       scheduler=opts.get("scheduler"))
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "epoch":
                conn.send(("out", shard.run_epoch(msg[1], msg[2])))
            elif tag == "finalize":
                conn.send(("done", shard.finalize(msg[1])))
                return
            elif tag == "stop":
                return
    except EOFError:  # parent died; exit quietly
        return
    except BaseException as exc:  # surface worker failures to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        raise
    finally:
        conn.close()


class ClusterExecutionError(RuntimeError):
    """A shard worker failed; the message carries the worker's error."""


def run_cluster(config: ClusterConfig,
                workers: Optional[int] = None,
                *,
                telemetry_dir: Optional[str] = None,
                check=None,
                forensics=None,
                recycle: bool = True,
                scheduler: Optional[str] = None) -> ClusterResult:
    """Run a cluster scenario across a sharded worker pool.

    Parameters
    ----------
    config:
        The cluster to simulate (validated up front).
    workers:
        Worker processes (see :func:`resolve_workers`); ``1`` runs every
        shard inline through the identical epoch loop.
    telemetry_dir:
        When given, each host runs instrumented and exports its bundle
        to ``<telemetry_dir>/host<k>/``, with one cluster-level
        provenance ``manifest.json`` on top.
    check:
        Arm the per-host invariant engine (``True`` or a ``CheckSpec``)
        *plus* the cross-shard conservation check
        (:func:`repro.check.cluster.check_cluster_conservation`), which
        raises on any unaccounted envelope.
    forensics:
        Arm per-host tail attribution (``True`` or a ``ForensicsSpec``);
        reports land in each host's payload (and bundle).
    scheduler:
        Event-scheduler backend for every shard engine (``"heap"`` or
        ``"calendar"``; ``None`` resolves via ``REPRO_SCHEDULER``).
        Backends dispatch in the same total order, so the serialized
        cluster payload is bit-identical either way.

    Returns
    -------
    ClusterResult
        Per-host payloads plus cluster-wide summaries.  The serialized
        payload is a pure function of ``config`` -- never of
        ``workers`` or the observation knobs' wall-clock effects.
    """
    config.validate()
    wall_start = _time.perf_counter()
    n_hosts = config.n_hosts
    workers = resolve_workers(workers, n_hosts)
    shards = partition_hosts(n_hosts, workers)
    opts = {"telemetry": telemetry_dir is not None, "check": check,
            "forensics": forensics, "recycle": recycle,
            "scheduler": scheduler}

    if len(shards) == 1:
        shard = _Shard(config, shards[0], telemetry=opts["telemetry"],
                       check=check, forensics=forensics, recycle=recycle,
                       scheduler=scheduler)
        payloads = _drive_inline(config, shard, telemetry_dir)
    else:
        payloads = _drive_pool(config, shards, opts, telemetry_dir)

    hosts = [payloads[hid] for hid in range(n_hosts)]
    result = ClusterResult(
        config=config,
        hosts=hosts,
        summary=merge_summaries([h["summary"] for h in hosts],
                                [h["latency_samples"] for h in hosts]),
        cluster=_cluster_totals(config, hosts),
        sim_time=float(hosts[0]["sim_time"]) if hosts else 0.0,
        workers=workers,
        wall_s=_time.perf_counter() - wall_start,
    )
    if check is not None and check is not False:
        from repro.check.cluster import check_cluster_conservation

        report = check_cluster_conservation(result)
        result.cluster["conservation"] = report
        if not report["ok"]:
            from repro.check.invariants import InvariantViolation

            raise InvariantViolation(
                "cross-shard conservation violated: "
                + "; ".join(report["violations"][:5])
            )
    if telemetry_dir is not None:
        _write_cluster_manifest(config, result, telemetry_dir)
    return result


def _drive_epochs(config: ClusterConfig, step_fn) -> None:
    """Shared barrier loop: epoch schedule + horizon extension.

    ``step_fn(end, incoming_by_shard) -> outgoing`` advances every
    shard to ``end`` and returns all envelopes emitted during the
    epoch.  The horizon starts at the nominal run end and is pushed out
    whenever an envelope's arrival (plus one epoch of settling) falls
    beyond it, so every envelope is delivered and accounted before the
    run closes -- the cross-shard conservation identity is exact, not
    best-effort.
    """
    L = config.epoch_length()
    horizon = config.horizon()
    t = 0.0
    pending: List[Tuple] = []
    while t < horizon or pending:
        end = min(t + L, horizon) if t < horizon else t + L
        outgoing = step_fn(end, pending)
        pending = sorted(outgoing, key=_envelope_key)
        for env in pending:
            arrive = env[ARRIVE_IDX]
            if arrive + L > horizon:
                horizon = arrive + L
        t = end


def _drive_inline(config: ClusterConfig, shard: _Shard,
                  telemetry_dir: Optional[str]) -> Dict[int, Dict]:
    def step(end: float, incoming: List[Tuple]) -> List[Tuple]:
        return shard.run_epoch(end, incoming)

    _drive_epochs(config, step)
    return shard.finalize(telemetry_dir)


def _drive_pool(config: ClusterConfig, shards: List[List[int]],
                opts: Dict, telemetry_dir: Optional[str]) -> Dict[int, Dict]:
    # Fork is preferred (cheap, inherits the warm capacity-calibration
    # cache); spawn works too since the worker body is importable.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    shard_of_host = {}
    for si, ids in enumerate(shards):
        for hid in ids:
            shard_of_host[hid] = si
    cluster_dict = config.to_dict()
    conns, procs = [], []
    try:
        for ids in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, cluster_dict, ids, opts),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        def step(end: float, incoming: List[Tuple]) -> List[Tuple]:
            by_shard: List[List[Tuple]] = [[] for _ in shards]
            for env in incoming:
                by_shard[shard_of_host[env[DST_IDX]]].append(env)
            for conn, envs in zip(conns, by_shard):
                conn.send(("epoch", end, envs))
            outgoing: List[Tuple] = []
            for conn in conns:
                tag, payload = conn.recv()
                if tag == "error":
                    raise ClusterExecutionError(payload)
                outgoing.extend(payload)
            return outgoing

        _drive_epochs(config, step)

        payloads: Dict[int, Dict] = {}
        for conn in conns:
            conn.send(("finalize", telemetry_dir))
        for conn in conns:
            tag, shard_payloads = conn.recv()
            if tag == "error":
                raise ClusterExecutionError(shard_payloads)
            payloads.update(shard_payloads)
        return payloads
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)


def _cluster_totals(config: ClusterConfig, hosts: List[Dict]) -> Dict:
    """Cluster-level accounting over the per-host payloads."""
    offered = sum(h["offered"] for h in hosts)
    delivered = sum(h["delivered"] for h in hosts)
    local = sum(h["router"]["local"] for h in hosts)
    sent = sum(sum(h["router"]["sent"].values()) for h in hosts)
    received = sum(sum(h["router"]["received"].values()) for h in hosts)
    dropped = sum(sum(h["router"]["fabric_dropped"].values()) for h in hosts)
    return {
        "n_hosts": len(hosts),
        "pattern": config.pattern,
        "epoch_us": config.epoch_length(),
        "offered": offered,
        "delivered": delivered,
        "delivery_ratio": (delivered / offered) if offered else 0.0,
        "local": local,
        "envelopes_sent": sent,
        "envelopes_received": received,
        "fabric_dropped": dropped,
    }


def _write_cluster_manifest(config: ClusterConfig, result: ClusterResult,
                            telemetry_dir: str) -> None:
    """One provenance manifest covering every per-host bundle."""
    import hashlib
    import json

    from repro.obs.manifest import git_commit

    os.makedirs(telemetry_dir, exist_ok=True)
    config_json = json.dumps(config.to_dict(), sort_keys=True)
    manifest = {
        "kind": "cluster_bundle",
        "n_hosts": config.n_hosts,
        "hosts": [f"host{hid}" for hid in range(config.n_hosts)],
        "seed": config.seed,
        "config_sha256": hashlib.sha256(config_json.encode()).hexdigest(),
        "git_commit": git_commit(),
        "workers": result.workers,
        "wall_s": result.wall_s,
        "sim_time": result.sim_time,
    }
    with open(os.path.join(telemetry_dir, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
