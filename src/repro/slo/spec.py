"""Declarative service-level objectives.

An :class:`SloSpec` states *what* the data plane must achieve --
``"p99 <= 800us"``, ``"delivery >= 99.9%"`` -- plus the knobs governing
how attainment is measured (window length) and, optionally, how the
:class:`~repro.slo.autotuner.SloAutotuner` may trade resources for tail
latency.  Like :class:`~repro.bench.scenarios.ScenarioConfig` it is a
plain declarative dataclass with a strict ``validate`` /
``to_dict`` / ``from_dict`` round-trip, so specs ride inside sweep
grids, cache keys and JSON artifacts unchanged.

Objective grammar
-----------------
``<metric> <op> <value><unit>`` where

* ``metric`` is one of ``p50 p90 p95 p99 p999 mean`` (end-to-end
  latency) or ``delivery`` (delivered / offered within the window);
* latency objectives use ``<=`` with a value in ``us`` (default),
  ``ms`` or ``s``; thresholds normalize to µs;
* ``delivery`` uses ``>=`` with a percentage (``%`` optional).

Canonical form (what :meth:`SloObjective.canonical` emits and
``to_dict`` stores) is always µs for latency and ``%`` for delivery,
formatted with ``%g`` -- parsing its own output is the identity.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Latency metrics the tracker can compute, mapped to quantile fractions
#: (``mean`` is handled separately).
QUANTILE_METRICS: Dict[str, float] = {
    "p50": 0.50,
    "p90": 0.90,
    "p95": 0.95,
    "p99": 0.99,
    "p999": 0.999,
}

LATENCY_METRICS: Tuple[str, ...] = tuple(QUANTILE_METRICS) + ("mean",)
ALL_METRICS: Tuple[str, ...] = LATENCY_METRICS + ("delivery",)

_UNIT_US = {"us": 1.0, "ms": 1_000.0, "s": 1_000_000.0}

_OBJECTIVE_RE = re.compile(
    r"^\s*(?P<metric>[a-z]+\d*)\s*(?P<op><=|>=)\s*"
    r"(?P<value>[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)\s*"
    r"(?P<unit>us|ms|s|%)?\s*$"
)


@dataclass(frozen=True)
class SloObjective:
    """One parsed objective: ``metric op threshold``.

    ``threshold`` is normalized -- µs for latency metrics, percent for
    ``delivery``.  Build via :meth:`parse`; the constructor assumes
    normalized units.
    """

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.metric not in ALL_METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; "
                f"available: {', '.join(ALL_METRICS)}"
            )
        if self.metric == "delivery":
            if self.op != ">=":
                raise ValueError(
                    f"delivery objectives must use '>=', got {self.op!r}"
                )
            if not 0.0 < self.threshold <= 100.0:
                raise ValueError(
                    f"delivery threshold must be in (0, 100] percent, "
                    f"got {self.threshold}"
                )
        else:
            if self.op != "<=":
                raise ValueError(
                    f"latency objectives must use '<=', got {self.op!r}"
                )
            if not self.threshold > 0 or not math.isfinite(self.threshold):
                raise ValueError(
                    f"latency threshold must be positive and finite (µs), "
                    f"got {self.threshold}"
                )

    @classmethod
    def parse(cls, text: str) -> "SloObjective":
        """Parse one grammar string (see module docstring)."""
        m = _OBJECTIVE_RE.match(text)
        if m is None:
            raise ValueError(
                f"cannot parse SLO objective {text!r}; expected "
                f"'<metric> <= <value>[us|ms|s]' or 'delivery >= <pct>[%]'"
            )
        metric, op, unit = m["metric"], m["op"], m["unit"]
        value = float(m["value"])
        if metric == "delivery":
            if unit not in (None, "%"):
                raise ValueError(
                    f"delivery objectives take a percentage, got unit "
                    f"{unit!r} in {text!r}"
                )
        else:
            if unit == "%":
                raise ValueError(
                    f"latency objectives take a time unit (us/ms/s), "
                    f"got '%' in {text!r}"
                )
            value *= _UNIT_US[unit or "us"]
        return cls(metric=metric, op=op, threshold=value)

    def canonical(self) -> str:
        """Normalized grammar string; ``parse(canonical())`` round-trips."""
        if self.metric == "delivery":
            return f"delivery >= {self.threshold:g}%"
        return f"{self.metric} <= {self.threshold:g}us"

    def check(self, metrics: Dict[str, float]) -> bool:
        """True when this objective holds over ``metrics``.

        A metric absent from the dict (e.g. an empty window has no
        latency samples) is vacuously satisfied.
        """
        value = metrics.get(self.metric)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return True
        if self.op == "<=":
            return value <= self.threshold
        return value >= self.threshold

    def ratio(self, metrics: Dict[str, float]) -> float:
        """Measured / threshold for latency objectives (margin logic).

        Returns 0.0 when the metric is missing; delivery objectives have
        no meaningful ratio and also return 0.0.
        """
        if self.metric == "delivery":
            return 0.0
        value = metrics.get(self.metric)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return 0.0
        return value / self.threshold


@dataclass
class SloSpec:
    """A set of objectives plus measurement and autotuning knobs.

    Attributes
    ----------
    objectives:
        Grammar strings or :class:`SloObjective` instances; strings are
        parsed on construction.
    window:
        Attainment window length (µs of sim time).  Each window closes
        independently: a run *attains* the SLO in the fraction of
        windows where every objective held.
    autotune:
        Enable the :class:`~repro.slo.autotuner.SloAutotuner` control
        process (requires a host with a :class:`PathController`).
    min_paths / max_paths:
        Bounds on the active (non-parked) path count the autotuner may
        choose; ``max_paths=None`` means "all configured paths".
    start_paths:
        Initial active path count (highest-id paths are parked before
        traffic starts).  Works with ``autotune=False`` too, which is
        how the static-k baselines of experiment E-SLO1 are expressed.
    cooldown:
        Minimum µs between autotuner actions (hysteresis).
    hold_windows:
        Consecutive comfortably-attained windows required before the
        autotuner scales *down*.
    margin:
        "Comfortable" means every latency objective's measured/threshold
        ratio is at or below this fraction.
    penalty:
        After a violation forces a path scale-up away from an active
        count, scaling back down *to* that count is forbidden for this
        many µs -- the blame memory that stops limit-cycle oscillation
        (down, violate, up, repeat) around an insufficient count.
    replication_step / replication_max:
        Increment and cap for the adaptive policy's replication budget
        on the scale-up ladder.
    flowlet_floor:
        Lower bound (µs) when the autotuner halves the flowlet timeout.
    """

    objectives: Sequence[Union[str, SloObjective]] = ()
    name: str = "slo"
    window: float = 5_000.0
    autotune: bool = False
    min_paths: int = 1
    max_paths: Optional[int] = None
    start_paths: Optional[int] = None
    cooldown: float = 10_000.0
    hold_windows: int = 3
    margin: float = 0.8
    penalty: float = 30_000.0
    replication_step: float = 0.05
    replication_max: float = 0.25
    flowlet_floor: float = 25.0

    def __post_init__(self) -> None:
        parsed = tuple(
            obj if isinstance(obj, SloObjective) else SloObjective.parse(obj)
            for obj in self.objectives
        )
        object.__setattr__(self, "objectives", parsed)

    # -- validation -----------------------------------------------------
    def validate(self) -> "SloSpec":
        """Check every knob, raising ``ValueError`` on the first problem."""
        if not self.objectives:
            raise ValueError("SloSpec needs at least one objective")
        seen = set()
        for obj in self.objectives:
            if obj.metric in seen:
                raise ValueError(
                    f"duplicate objective for metric {obj.metric!r}"
                )
            seen.add(obj.metric)
        if self.window <= 0:
            raise ValueError(f"window must be positive (µs), got {self.window}")
        if self.min_paths < 1:
            raise ValueError(f"min_paths must be >= 1, got {self.min_paths}")
        if self.max_paths is not None and self.max_paths < self.min_paths:
            raise ValueError(
                f"max_paths ({self.max_paths}) must be >= "
                f"min_paths ({self.min_paths})"
            )
        if self.start_paths is not None and self.start_paths < 1:
            raise ValueError(
                f"start_paths must be >= 1, got {self.start_paths}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0 (µs), got {self.cooldown}")
        if self.hold_windows < 1:
            raise ValueError(
                f"hold_windows must be >= 1, got {self.hold_windows}"
            )
        if not 0.0 < self.margin <= 1.0:
            raise ValueError(f"margin must be in (0, 1], got {self.margin}")
        if self.penalty < 0:
            raise ValueError(f"penalty must be >= 0 (µs), got {self.penalty}")
        if not 0.0 < self.replication_step <= 1.0:
            raise ValueError(
                f"replication_step must be in (0, 1], got {self.replication_step}"
            )
        if not 0.0 <= self.replication_max <= 1.0:
            raise ValueError(
                f"replication_max must be in [0, 1], got {self.replication_max}"
            )
        if self.flowlet_floor <= 0:
            raise ValueError(
                f"flowlet_floor must be positive (µs), got {self.flowlet_floor}"
            )
        return self

    # -- derived views --------------------------------------------------
    @property
    def latency_objectives(self) -> Tuple[SloObjective, ...]:
        return tuple(o for o in self.objectives if o.metric != "delivery")

    @property
    def delivery_objectives(self) -> Tuple[SloObjective, ...]:
        return tuple(o for o in self.objectives if o.metric == "delivery")

    def quantiles(self) -> List[float]:
        """Sorted quantile fractions the tracker must estimate."""
        return sorted(
            QUANTILE_METRICS[o.metric]
            for o in self.objectives
            if o.metric in QUANTILE_METRICS
        )

    def wants_mean(self) -> bool:
        return any(o.metric == "mean" for o in self.objectives)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`).

        Objectives serialize as canonical grammar strings, so the dict is
        stable under round-trips and usable as a sweep cell value.
        """
        out = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if f.name == "objectives":
                out["objectives"] = [o.canonical() for o in value]
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SloSpec":
        """Build a spec from :meth:`to_dict`-shaped (JSON) data."""
        names = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown SloSpec field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(names)}"
            )
        return cls(**data)
