"""Declarative SLOs and the online tail-latency autotuner.

* :mod:`~repro.slo.spec` -- :class:`SloSpec` / :class:`SloObjective`:
  the declarative objective grammar (``"p99 <= 800us"``,
  ``"delivery >= 99.9%"``) with a strict serialization round-trip;
* :mod:`~repro.slo.tracker` -- :class:`SloTracker`: streaming windowed
  attainment measurement off the delivery sink, with post-run
  violation attribution into the telemetry event stream;
* :mod:`~repro.slo.autotuner` -- :class:`SloAutotuner`: the
  hysteresis-and-cooldown control process that scales active paths,
  replication budget and flowlet timeout to meet the objectives with
  minimal path-seconds.

Entry point: pass ``slo=SloSpec(...)`` to :func:`repro.run`; the result
gains an ``slo_report``.  See ``docs/SLO.md``.
"""

from repro.slo.spec import SloObjective, SloSpec
from repro.slo.tracker import SloTracker
from repro.slo.autotuner import SloAutotuner

__all__ = ["SloObjective", "SloSpec", "SloTracker", "SloAutotuner"]
