"""Online tail-latency autotuner.

The :class:`SloAutotuner` is the periodic control sibling of
:class:`~repro.core.controller.PathController`: where the controller
*observes* path health every tick, the autotuner *acts* on SLO windows,
reusing the controller as its actuator (administrative parking via
``set_admin_down`` / ``set_admin_up``) alongside two policy knobs of the
adaptive multipath policy -- the replication budget and the flowlet
timeout.  It holds no heap entry of its own: the
:class:`~repro.slo.tracker.SloTracker`'s window close drives
:meth:`observe`, which keeps tracker and tuner perfectly phase-aligned
and adds zero scheduling overhead.

Control law (hysteresis + cooldown, no RNG -- fully deterministic):

* **scale up** on a violated window, one ladder rung per action:
  unpark the lowest parked path, else raise the replication budget by
  ``replication_step`` (capped at ``replication_max``), else halve the
  flowlet timeout (floored at ``flowlet_floor``);
* **scale down** only after ``hold_windows`` consecutive windows where
  every latency objective sat at or below ``margin`` of its threshold,
  walking the ladder in reverse: restore the flowlet timeout (doubling
  toward its base), lower the replication budget toward its base, then
  park the highest active path (never below ``min_paths``);
* every action arms a ``cooldown`` during which the tuner only watches.

The goal is the paper's last-mile trade framed as a control problem:
meet the declared tail objectives with as few path-seconds as possible,
instead of statically over-provisioning every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.slo.spec import SloSpec


class SloAutotuner:
    """Window-driven scaler for paths, replication and flowlet timeout."""

    def __init__(self, sim: Simulator, spec: SloSpec, host,
                 warmup: float = 0.0) -> None:
        self.sim = sim
        self.spec = spec
        self.host = host
        self.warmup = float(warmup)
        self.controller = host.controller
        if self.controller is None:
            raise ValueError(
                "SLO autotuning needs a PathController (adaptive-style "
                "policies create one; set mpdp_overrides "
                "controller_interval > 0 for others)"
            )
        self.policy = host.policy
        n_paths = len(host.paths)
        self.max_paths = spec.max_paths if spec.max_paths is not None else n_paths
        self.max_paths = min(self.max_paths, n_paths)
        if spec.start_paths is not None and spec.start_paths > n_paths:
            raise ValueError(
                f"start_paths ({spec.start_paths}) exceeds configured "
                f"n_paths ({n_paths})"
            )
        #: Decision history: one dict per knob change, in action order.
        self.decisions: List[Dict] = []
        #: ``[time, active_path_count]`` transitions (starts at t=0).
        self.active_log: List[List[float]] = []
        self._cooldown_until = 0.0
        self._ok_streak = 0
        # Blame memory: active counts proven insufficient (a violation
        # forced a scale-up away from them) map to the sim time until
        # which scaling back down to them is forbidden.
        self._bad_at: Dict[int, float] = {}
        # Knob bases (restored on scale-down); None when the policy
        # lacks the knob -- those ladder rungs are skipped.
        self._base_replication = getattr(self.policy, "replication_budget", None)
        table = getattr(self.policy, "table", None)
        self._base_flowlet = getattr(table, "timeout", None)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Apply initial parking (``start_paths``) before traffic flows."""
        if self._started:
            return
        self._started = True
        ctl = self.controller
        target = self.spec.start_paths
        if target is not None:
            # Park highest-id paths first, mirroring scale-down order.
            for p in sorted((p.path_id for p in self.host.paths), reverse=True):
                if self._active_count() <= target:
                    break
                ctl.set_admin_down(p)
        self.active_log.append([self.sim.now, self._active_count()])

    def _active_count(self) -> int:
        return len(self.host.paths) - len(self.controller.admin_down)

    # ------------------------------------------------------------------
    def observe(self, window: Dict, index: int) -> None:
        """Consume one closed attainment window (tracker callback)."""
        if not self.spec.autotune:
            return
        now = self.sim.now
        if not window["ok"]:
            self._ok_streak = 0
            if now >= self._cooldown_until:
                self._scale_up(window, index, now)
            return
        if window["count"] == 0:
            return  # no latency evidence either way
        ratios = [
            o.ratio(window["metrics"]) for o in self.spec.latency_objectives
        ]
        comfortable = max(ratios) <= self.spec.margin if ratios else True
        if comfortable:
            self._ok_streak += 1
        else:
            self._ok_streak = 0
        if self._ok_streak >= self.spec.hold_windows and now >= self._cooldown_until:
            if self._scale_down(window, index, now):
                self._ok_streak = 0

    # ------------------------------------------------------------------
    # Ladders
    # ------------------------------------------------------------------
    def _scale_up(self, window: Dict, index: int, now: float) -> None:
        spec = self.spec
        ctl = self.controller
        reason = "; ".join(window["violations"])
        parked = ctl.admin_down
        if parked and self._active_count() < self.max_paths:
            self._bad_at[self._active_count()] = now + spec.penalty
            pid = min(parked)
            if ctl.set_admin_up(pid):
                n = self._active_count()
                self.active_log.append([now, n])
                self._record(now, "scale_up", "paths", n - 1, n, reason, index)
                return
        rep = getattr(self.policy, "replication_budget", None)
        if (self._base_replication is not None
                and rep is not None and rep < spec.replication_max):
            new = min(spec.replication_max, rep + spec.replication_step)
            self.policy.replication_budget = new
            self._record(now, "scale_up", "replication", rep, new, reason, index)
            return
        table = getattr(self.policy, "table", None)
        if (self._base_flowlet is not None and table is not None
                and table.timeout > spec.flowlet_floor):
            old = table.timeout
            table.timeout = max(spec.flowlet_floor, old / 2.0)
            self._record(now, "scale_up", "flowlet_timeout", old,
                         table.timeout, reason, index)

    def _scale_down(self, window: Dict, index: int, now: float) -> bool:
        spec = self.spec
        ctl = self.controller
        reason = f"ok_streak {self._ok_streak}"
        table = getattr(self.policy, "table", None)
        if (self._base_flowlet is not None and table is not None
                and table.timeout < self._base_flowlet):
            old = table.timeout
            table.timeout = min(self._base_flowlet, old * 2.0)
            self._record(now, "scale_down", "flowlet_timeout", old,
                         table.timeout, reason, index)
            return True
        rep = getattr(self.policy, "replication_budget", None)
        if (self._base_replication is not None
                and rep is not None and rep > self._base_replication):
            new = max(self._base_replication, rep - spec.replication_step)
            self.policy.replication_budget = new
            self._record(now, "scale_down", "replication", rep, new,
                         reason, index)
            return True
        active = self._active_count()
        if (active > spec.min_paths and ctl.live_ids
                and now >= self._bad_at.get(active - 1, 0.0)):
            pid = max(ctl.live_ids)
            if ctl.set_admin_down(pid):
                n = self._active_count()
                self.active_log.append([now, n])
                self._record(now, "scale_down", "paths", n + 1, n,
                             reason, index)
                return True
        return False

    def _record(self, now: float, action: str, knob: str, old, new,
                reason: str, index: int) -> None:
        self.decisions.append({
            "time": now,
            "action": action,
            "knob": knob,
            "from": old,
            "to": new,
            "reason": reason,
            "window": index,
        })
        self._cooldown_until = now + self.spec.cooldown

    # ------------------------------------------------------------------
    def path_seconds(self, end: float) -> float:
        """Integral of the active path count over [warmup, end], in
        path-seconds -- the resource cost the E-SLO1 experiment compares
        across static and autotuned configurations."""
        start = self.warmup
        if end <= start or not self.active_log:
            return 0.0
        total = 0.0
        log = self.active_log
        for i, (t, n) in enumerate(log):
            t0 = max(t, start)
            t1 = log[i + 1][0] if i + 1 < len(log) else end
            t1 = min(t1, end)
            if t1 > t0:
                total += n * (t1 - t0)
        return total / 1e6
