"""Streaming SLO attainment over sliding sim-time windows.

The :class:`SloTracker` chains onto the delivery sink's ``on_delivery``
hook (one list-append per delivered packet -- nothing else rides the
per-packet hot path) and closes one attainment window every
``spec.window`` µs from a LOW-priority periodic tick, after all same-time
data-plane events.  Each close folds the buffered latencies into a fresh
:class:`~repro.metrics.stats.QuantileSet`, evaluates every objective,
and hands the window record to the autotuner (when one is armed).

Determinism contract: the tracker consumes only the simulated trajectory
(latencies, delivery/drop counters) and the autotuner uses no RNG, so a
fixed ``(seed, config, spec)`` produces a bit-identical
:meth:`report` -- with or without telemetry attached.  Violation
*attribution* (which leaf stage dominated the violating packets) needs
span data, so it is derived post-run by :meth:`emit_events` into the
telemetry event stream and deliberately kept **out** of the report,
mirroring how telemetry itself is excluded from result payloads.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.metrics.stats import QuantileSet
from repro.obs.span import LEAF_STAGES
from repro.sim.engine import LOW, Simulator
from repro.slo.autotuner import SloAutotuner
from repro.slo.spec import QUANTILE_METRICS, SloSpec


class SloTracker:
    """Measures windowed SLO attainment for one simulation run.

    Parameters
    ----------
    sim / spec / host:
        The simulator, the (validated) :class:`SloSpec`, and the
        :class:`~repro.core.mpdp.MultipathDataPlane` under measurement.
    warmup:
        Deliveries before this sim time are ignored and the first
        window opens here, aligned with the latency recorder's warmup.
    """

    def __init__(self, sim: Simulator, spec: SloSpec, host,
                 warmup: float = 0.0) -> None:
        self.sim = sim
        self.spec = spec.validate()
        self.host = host
        self.warmup = float(warmup)
        self.windows: List[Dict] = []
        self.autotuner: Optional[SloAutotuner] = None
        if spec.autotune or spec.start_paths is not None:
            self.autotuner = SloAutotuner(sim, spec, host, warmup=self.warmup)
        self._buf: List[float] = []
        self._append = self._buf.append
        self._qs = spec.quantiles()
        self._win_start = self.warmup
        self._last_delivered = 0
        self._last_dropped = 0
        self._prev_hook = None
        self._handle = None
        self._started = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install the sink hook and the periodic window close (idempotent)."""
        if self._started:
            return
        self._started = True
        sink = self.host.sink
        self._prev_hook = sink.on_delivery
        sink.on_delivery = self._on_delivery
        if self.autotuner is not None:
            self.autotuner.start()
        # Baseline the delivery/drop counters at warmup so the first
        # window's deltas exclude pre-warmup traffic (latencies already
        # are, via the t_done guard in the hook).
        if self.warmup > 0:
            self.sim.call_at(self.warmup, self._snap_baseline, priority=LOW)
        # LOW priority: the close runs after every same-timestamp
        # data-plane event, so a delivery landing exactly on the window
        # edge is counted in the window it closes.
        self._handle = self.sim.periodic(
            self.spec.window,
            self._close_window,
            priority=LOW,
            first_at=self.warmup + self.spec.window,
        )

    def _snap_baseline(self) -> None:
        self._last_delivered = self.host.sink.delivered
        self._last_dropped = self.host.drop_count()

    def _on_delivery(self, packet) -> None:
        prev = self._prev_hook
        if prev is not None:
            prev(packet)
        done = packet.t_done
        if done >= self.warmup:
            self._append(done - packet.t_created)

    # ------------------------------------------------------------------
    # Window accounting
    # ------------------------------------------------------------------
    def _close_window(self) -> None:
        now = self.sim.now
        buf = self._buf
        count = len(buf)
        sink = self.host.sink
        delivered = sink.delivered
        dropped = self.host.drop_count()
        d_delivered = delivered - self._last_delivered
        d_dropped = dropped - self._last_dropped
        self._last_delivered = delivered
        self._last_dropped = dropped

        metrics: Dict[str, float] = {}
        if count:
            if self._qs:
                bank = QuantileSet(self._qs)
                bank.add_many(buf)
                for obj_q, value in bank.values().items():
                    if not math.isnan(value):
                        metrics[_METRIC_BY_Q[obj_q]] = value
            if self.spec.wants_mean():
                metrics["mean"] = sum(buf) / count
        total = d_delivered + d_dropped
        metrics["delivery"] = (
            100.0 * d_delivered / total if total > 0 else 100.0
        )

        violations = [
            o.canonical() for o in self.spec.objectives if not o.check(metrics)
        ]
        record = {
            "start": self._win_start,
            "end": now,
            "count": count,
            "delivered": d_delivered,
            "dropped": d_dropped,
            "metrics": metrics,
            "ok": not violations,
            "violations": violations,
        }
        self.windows.append(record)
        buf.clear()
        self._win_start = now
        if self.autotuner is not None:
            self.autotuner.observe(record, len(self.windows) - 1)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def report(self) -> Dict:
        """The run's SLO report (JSON-friendly, deterministic).

        ``path_seconds`` is the resource cost: the integral of the
        active path count over the measured span (warmup to now), in
        path-seconds.  ``decisions`` and ``active_log`` come from the
        autotuner when armed (empty / static otherwise).
        """
        end = self.sim.now
        n = len(self.windows)
        attained = sum(1 for w in self.windows if w["ok"])
        if self.autotuner is not None:
            path_seconds = self.autotuner.path_seconds(end)
            decisions = list(self.autotuner.decisions)
            active_log = list(self.autotuner.active_log)
        else:
            n_paths = len(self.host.paths)
            path_seconds = n_paths * max(0.0, end - self.warmup) / 1e6
            decisions = []
            active_log = [[0.0, n_paths]]
        from repro import schemas

        return {
            "schema_version": schemas.version_for("slo_report"),
            "spec": self.spec.to_dict(),
            "n_windows": n,
            "attained": attained,
            "attainment": attained / n if n else 1.0,
            "violated_windows": [w["start"] for w in self.windows if not w["ok"]],
            "windows": list(self.windows),
            "path_seconds": path_seconds,
            "decisions": decisions,
            "active_log": active_log,
        }

    # ------------------------------------------------------------------
    # Post-run attribution (telemetry only)
    # ------------------------------------------------------------------
    def emit_events(self, telemetry) -> None:
        """Derive ``slo:violation`` instant events with stage attribution.

        For each violated window, the packets delivered inside it whose
        end-to-end latency exceeded the tightest violated latency
        threshold are pulled from the span tracer, their per-leaf-stage
        time summed, and the dominant stage named in the event.  Runs
        post-simulation so it cannot perturb the trajectory; a telemetry
        bundle without span tracing gets events without attribution.
        """
        if telemetry is None:
            return
        tracer = telemetry.tracer
        spans = bool(getattr(tracer, "enabled", False)) and len(
            getattr(tracer, "records", ())
        ) > 0
        deliveries: List = []
        if spans:
            deliveries = [
                (rec.time, rec.packet_id)
                for rec in tracer.records
                if rec.stage == "sink"
            ]
        for w in self.windows:
            if w["ok"]:
                continue
            args: Dict = {
                "start": w["start"],
                "violations": list(w["violations"]),
                "count": w["count"],
            }
            if spans:
                stage, share, n_pkts = self._attribute(
                    tracer, deliveries, w
                )
                if stage is not None:
                    args["dominant_stage"] = stage
                    args["stage_share"] = share
                    args["attributed_packets"] = n_pkts
            telemetry.instant(w["end"], "slo:violation", track="slo",
                              args=args)

    def _attribute(self, tracer, deliveries, window):
        """(dominant leaf stage, its share of time, packets considered)."""
        violated = {
            o.metric: o.threshold
            for o in self.spec.latency_objectives
            if o.canonical() in window["violations"]
        }
        threshold = min(violated.values()) if violated else None
        start, end = window["start"], window["end"]
        totals = {stage: 0.0 for stage in LEAF_STAGES}
        n_pkts = 0
        for t, pid in deliveries:
            if not start <= t < end:
                continue
            if threshold is not None and tracer.packet_total(pid) <= threshold:
                continue
            n_pkts += 1
            for rec in tracer.per_packet(pid):
                if rec.stage in totals:
                    totals[rec.stage] += rec.dt
        grand = sum(totals.values())
        if n_pkts == 0 or grand <= 0:
            return None, 0.0, 0
        # Deterministic tie-break: stage order in LEAF_STAGES.
        stage = max(LEAF_STAGES, key=lambda s: totals[s])
        return stage, totals[stage] / grand, n_pkts


#: Reverse map quantile fraction -> metric name for window records.
_METRIC_BY_Q = {q: name for name, q in QUANTILE_METRICS.items()}
