"""Structured sweep artifacts.

A :class:`SweepResult` is the single JSON artifact one sweep run
produces: the spec that generated it, one :class:`CellResult` per grid
point (latency summary, data-plane stats, exact reservoir percentiles,
availability when faults ran) and wall-clock accounting.  Everything
round-trips via ``to_dict``/``from_dict`` with stable key names, so
``benchmarks/results/*.json``, ``repro sweep --out`` files and the
figure code all consume one shape.

Identity vs. provenance: ``wall_s`` (measured wall-clock) and ``cached``
(whether the cell came from the cache) are *provenance* -- they vary
between runs of the same experiment.  :meth:`CellResult.identity_dict`
strips them, and the determinism tests assert that identity dicts are
bit-identical across worker counts and cache hits/misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.scenarios import SimulationResult
from repro.metrics.stats import LatencySummary


@dataclass
class CellResult:
    """Outcome of one sweep cell (all latencies in µs)."""

    index: int
    #: Axis coordinates, ``{axis.param: label}``.
    params: Dict
    #: Canonical config dict the cell ran (cache-key material).
    config: Dict
    summary: LatencySummary
    stats: Dict
    #: Exact reservoir percentiles: ``p50/p90/p95/p99/p999``.
    exact: Dict[str, float]
    offered: int
    delivered: int
    sim_time: float
    goodput_gbps: float
    delivered_pps: float
    availability: Optional[Dict] = None
    #: SLO attainment report (cells whose config carries an ``slo`` spec
    #: only; see :meth:`repro.slo.SloTracker.report`).
    slo_report: Optional[Dict] = None
    #: Invariant-engine report (sweeps run with ``check=...`` only; see
    #: :meth:`repro.check.InvariantEngine.report`).  Observational --
    #: excluded from :meth:`identity_dict`.
    check_report: Optional[Dict] = None
    #: Wall-clock seconds the simulation took (provenance, not identity).
    wall_s: float = 0.0
    #: True when this cell was served from the result cache.
    cached: bool = False

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        out = {
            "index": self.index,
            "params": self.params,
            "config": self.config,
            "summary": self.summary.to_dict(),
            "stats": self.stats,
            "exact": self.exact,
            "offered": self.offered,
            "delivered": self.delivered,
            "sim_time": self.sim_time,
            "goodput_gbps": self.goodput_gbps,
            "delivered_pps": self.delivered_pps,
            "availability": self.availability,
            "wall_s": self.wall_s,
            "cached": self.cached,
        }
        if self.slo_report is not None:
            out["slo_report"] = self.slo_report
        if self.check_report is not None:
            out["check_report"] = self.check_report
        return out

    def identity_dict(self) -> Dict:
        """The run-invariant part: everything except provenance and
        observations (the check report describes the checking, not the
        simulated trajectory)."""
        out = self.to_dict()
        del out["wall_s"], out["cached"]
        out.pop("check_report", None)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "CellResult":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            index=int(data["index"]),
            params=dict(data["params"]),
            config=dict(data["config"]),
            summary=LatencySummary.from_dict(data["summary"]),
            stats=data["stats"],
            exact=dict(data["exact"]),
            offered=int(data["offered"]),
            delivered=int(data["delivered"]),
            sim_time=float(data["sim_time"]),
            goodput_gbps=float(data["goodput_gbps"]),
            delivered_pps=float(data["delivered_pps"]),
            availability=data.get("availability"),
            slo_report=data.get("slo_report"),
            check_report=data.get("check_report"),
            wall_s=float(data.get("wall_s", 0.0)),
            cached=bool(data.get("cached", False)),
        )


def measure(result: SimulationResult, wall_s: float) -> Dict:
    """Extract the serializable cell payload from a live simulation.

    The returned dict is a :meth:`CellResult.to_dict` fragment (no
    index/params/config) -- exactly what crosses the worker-pool pickle
    boundary and what the cache stores.
    """
    rd = result.to_dict()
    out = {
        "summary": rd["summary"],
        "stats": rd["stats"],
        "exact": rd["exact"],
        "offered": rd["offered"],
        "delivered": rd["delivered"],
        "sim_time": rd["sim_time"],
        "goodput_gbps": rd["goodput_gbps"],
        "delivered_pps": rd["delivered_pps"],
        "availability": rd["availability"],
        "wall_s": wall_s,
    }
    if "slo_report" in rd:
        out["slo_report"] = rd["slo_report"]
    if "check_report" in rd:
        out["check_report"] = rd["check_report"]
    return out


@dataclass
class SweepResult:
    """One sweep run: spec + per-cell results + wall-clock accounting."""

    spec: Dict
    cells: List[CellResult] = field(default_factory=list)
    jobs: int = 1
    #: End-to-end wall-clock of the orchestrator call, seconds.
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def get(self, **params) -> CellResult:
        """The unique cell whose coordinates match every given param.

        ``sr.get(policy="adaptive", load=0.7)`` -- raises ``KeyError``
        with the known coordinates when nothing (or several) match.
        """
        matches = [c for c in self.cells
                   if all(c.params.get(k) == v for k, v in params.items())]
        if len(matches) == 1:
            return matches[0]
        axes = {k: sorted({str(c.params.get(k)) for c in self.cells})
                for k in (self.cells[0].params if self.cells else {})}
        raise KeyError(
            f"{len(matches)} cells match {params!r}; axis coordinates: {axes}"
        )

    def cell_wall_s(self) -> float:
        """Sum of per-cell simulation wall-clock (CPU-bound work)."""
        return sum(c.wall_s for c in self.cells)

    def identity(self) -> List[Dict]:
        """Per-cell identity dicts, for bit-identical comparisons."""
        return [c.identity_dict() for c in self.cells]

    def accounting(self) -> Dict:
        """Wall-clock + cache bookkeeping of this run."""
        return {
            "jobs": self.jobs,
            "cells": len(self.cells),
            "wall_s": self.wall_s,
            "cell_wall_s": self.cell_wall_s(),
            "speedup": (self.cell_wall_s() / self.wall_s
                        if self.wall_s > 0 else 0.0),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        from repro import schemas

        return {
            "schema_version": schemas.version_for("sweep_result"),
            "spec": self.spec,
            "accounting": self.accounting(),
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepResult":
        """Rebuild a sweep artifact from :meth:`to_dict` output.

        Rejects payloads whose ``schema_version`` has an unsupported
        major version (see :mod:`repro.schemas`); pre-versioning
        payloads load as before.
        """
        from repro import schemas

        schemas.check_version(data, "sweep_result")
        acct = data.get("accounting", {})
        return cls(
            spec=data["spec"],
            cells=[CellResult.from_dict(c) for c in data["cells"]],
            jobs=int(acct.get("jobs", 1)),
            wall_s=float(acct.get("wall_s", 0.0)),
            cache_hits=int(acct.get("cache_hits", 0)),
            cache_misses=int(acct.get("cache_misses", 0)),
        )

    def save(self, path) -> None:
        """Write the artifact as JSON."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Read an artifact written by :meth:`save`."""
        import json

        with open(path) as fh:
            return cls.from_dict(json.load(fh))
