"""Parallel sweep execution with caching and progress reporting.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec`, serves
every cell it can from the content-hash cache, and fans the misses out
across a ``multiprocessing`` pool.  Each cell is an independent
simulation with its own :class:`~repro.sim.rng.RngRegistry` seeded from
the cell config, so results are bit-identical whatever the worker count
-- parallelism changes only *when* a cell runs, never *what* it computes.
Cells are reassembled in expansion order regardless of completion order.

Worker-count resolution: an explicit ``jobs`` argument wins, else the
``REPRO_SWEEP_JOBS`` env var, else ``min(n_cells, cpu_count)``.  Caching
defaults on; disable per call (``cache=False``) or globally with
``REPRO_SWEEP_CACHE=0``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sweep.cache import ResultCache
from repro.sweep.result import CellResult, SweepResult, measure
from repro.sweep.spec import SweepCell, SweepSpec

#: Progress callback signature: (done_count, total, finished_cell).
ProgressFn = Callable[[int, int, CellResult], None]


def _run_config_dict(config_dict: Dict,
                     telemetry_dir: Optional[str] = None,
                     check=None) -> Dict:
    """Simulate one canonical config dict and return its cell payload.

    With ``telemetry_dir`` set, the run is instrumented and its bundle
    (trace.json / events.jsonl / metrics.json / manifest.json /
    forensics.json) is exported under ``<telemetry_dir>/<cache-key>/``
    -- tail forensics runs over every instrumented cell, so a sweep
    leaves a per-cell cause attribution behind.  With ``check`` (a
    :class:`~repro.check.spec.CheckSpec`), the invariant engine runs
    armed and the payload gains a ``check_report``.  The simulated cell
    identity is byte-identical either way -- telemetry, forensics and
    checking are observations, never part of the cell result.
    """
    from repro.bench.scenarios import ScenarioConfig, run_scenario

    telemetry = None
    if telemetry_dir is not None:
        from repro.obs import Telemetry

        telemetry = Telemetry()
    t0 = time.perf_counter()
    result = run_scenario(ScenarioConfig.from_dict(config_dict),
                      telemetry=telemetry, check=check,
                      forensics=telemetry is not None)
    payload = measure(result, wall_s=time.perf_counter() - t0)
    if telemetry is not None:
        key = ResultCache().key_for(config_dict)
        telemetry.export(os.path.join(telemetry_dir, key))
    return payload


def _worker(item: Tuple[int, Dict, Optional[str], Optional[object]]
            ) -> Tuple[int, Dict]:
    """Pool entry point: (index, config dict, telemetry dir, check spec)
    -> (index, payload)."""
    index, config_dict, telemetry_dir, check = item
    return index, _run_config_dict(config_dict, telemetry_dir, check)


def resolve_jobs(jobs: Optional[int], n_cells: int) -> int:
    """Apply the worker-count resolution rules (see module docstring)."""
    if jobs is None:
        env = os.environ.get("REPRO_SWEEP_JOBS")
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_SWEEP_JOBS must be an int, got {env!r}"
                ) from None
    if jobs is None or jobs <= 0:
        jobs = min(n_cells, os.cpu_count() or 1) or 1
    if multiprocessing.current_process().daemon:
        return 1  # nested inside a pool worker: no grandchild pools
    return max(1, min(jobs, n_cells or 1))


def _cache_enabled(cache: Optional[bool]) -> bool:
    if cache is not None:
        return cache
    return os.environ.get("REPRO_SWEEP_CACHE", "1") != "0"


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    telemetry: bool = False,
    telemetry_dir: Optional[str] = None,
    check=None,
) -> SweepResult:
    """Run every cell of ``spec`` and return the structured artifact.

    Parameters
    ----------
    jobs:
        Worker processes; ``None``/``0`` = auto (env, then cpu count).
        ``jobs=1`` runs inline in this process -- results are identical
        either way.
    cache:
        Tri-state: ``None`` honors ``REPRO_SWEEP_CACHE`` (default on),
        ``True``/``False`` force it.
    cache_dir:
        Cache root (default ``.repro-cache/`` or ``REPRO_CACHE_DIR``).
    progress:
        Called after every finished cell with
        ``(done, total, cell_result)``; cache hits report up front.
    telemetry:
        Instrument every simulated cell and persist its observability
        bundle under ``<telemetry_dir>/<cache-key>/`` (default
        ``<cache root>/telemetry/``).  Cell payloads are bit-identical
        with or without this; a cached cell whose bundle is missing is
        re-simulated so the sweep always ends with telemetry for every
        cell.
    telemetry_dir:
        Override the bundle root (implies ``telemetry=True``).
    check:
        Arm the runtime invariant engine in every simulated cell
        (``True`` for defaults, or a :class:`~repro.check.CheckSpec`).
        Cached payloads carry no check report, so checked sweeps bypass
        the cache entirely -- every cell is re-simulated armed.
    """
    check_spec = None
    if check is not None and check is not False:
        from repro.check.spec import CheckSpec

        check_spec = check if isinstance(check, CheckSpec) else CheckSpec()
    t0 = time.perf_counter()
    cells = spec.expand()
    total = len(cells)
    jobs = resolve_jobs(jobs, total)
    use_cache = _cache_enabled(cache) and check_spec is None
    store = ResultCache(cache_dir) if use_cache else None
    tel_dir: Optional[str] = None
    if telemetry or telemetry_dir is not None:
        tel_dir = telemetry_dir or os.path.join(
            str(ResultCache(cache_dir).root), "telemetry"
        )

    done: Dict[int, CellResult] = {}
    keys: Dict[int, str] = {}
    misses: List[SweepCell] = []
    hits = 0
    keyer = store if store is not None else ResultCache(cache_dir)
    for cell in cells:
        payload = None
        keys[cell.index] = keyer.key_for(cell.config_dict)
        if store is not None:
            payload = store.get(keys[cell.index])
        if payload is not None and tel_dir is not None and not os.path.isdir(
            os.path.join(tel_dir, keys[cell.index])
        ):
            payload = None  # cached result but no bundle: re-simulate
        if payload is None:
            misses.append(cell)
        else:
            done[cell.index] = _assemble(cell, payload, cached=True)
            hits += 1
            if progress is not None:
                progress(len(done), total, done[cell.index])

    def finish(cell: SweepCell, payload: Dict) -> None:
        if store is not None:
            store.put(keys[cell.index], payload)
        done[cell.index] = _assemble(cell, payload, cached=False)
        if progress is not None:
            progress(len(done), total, done[cell.index])

    by_index = {cell.index: cell for cell in misses}
    if misses and (jobs == 1 or len(misses) == 1):
        for cell in misses:
            finish(cell,
                   _run_config_dict(cell.config_dict, tel_dir, check_spec))
    elif misses:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with ctx.Pool(processes=min(jobs, len(misses))) as pool:
            work = [(cell.index, cell.config_dict, tel_dir, check_spec)
                    for cell in misses]
            for index, payload in pool.imap_unordered(_worker, work,
                                                      chunksize=1):
                finish(by_index[index], payload)

    return SweepResult(
        spec=spec.to_dict(),
        cells=[done[i] for i in sorted(done)],
        jobs=jobs,
        wall_s=time.perf_counter() - t0,
        cache_hits=hits,
        cache_misses=len(misses),
    )


def _assemble(cell: SweepCell, payload: Dict, cached: bool) -> CellResult:
    """Join a cell's coordinates with its (possibly cached) payload."""
    out = CellResult.from_dict({
        "index": cell.index,
        "params": cell.params,
        "config": cell.config_dict,
        **payload,
    })
    out.cached = cached
    return out
