"""Declarative sweep specifications.

A :class:`SweepSpec` names a parameter grid over
:class:`~repro.bench.scenarios.ScenarioConfig` fields: a ``base`` dict of
fixed overrides plus ordered :class:`Axis` objects whose cross product
(row-major, last axis fastest) expands into :class:`SweepCell` jobs.  An
axis value may be a scalar (assigned to the axis field) or a dict of
several field overrides for coupled parameters -- e.g. path-count
scaling at fixed aggregate load sweeps ``{"n_paths": k, "load": 0.8/k}``
under one labelled axis.

Seed-derivation contract
------------------------
``seed_mode="fixed"`` (default) gives every cell the base seed, exactly
like the hand-rolled loops the spec replaces: two cells differing only
in ``policy`` see identical traffic.  ``seed_mode="derived"`` gives each
cell ``derive_seed(base_seed, cell.params)`` -- a stable SHA-256 hash of
the base seed and the cell's axis coordinates, independent of cell
*order*, so inserting axis values never reshuffles the seeds of existing
cells.  Either way the mapping is pure: the same spec always expands to
the same per-cell configs, which is what makes parallel execution and
caching bit-identical to a serial run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.scenarios import ScenarioConfig


def canonical_json(data) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    The canonical form feeds cache keys and seed derivation, so it
    refuses NaN/Infinity -- those have no portable JSON spelling.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def derive_seed(base_seed: int, params: Dict) -> int:
    """Stable per-cell seed: SHA-256 of the base seed + axis coordinates.

    Returns a non-negative 31-bit int.  Cells are identified by their
    axis *coordinates* (not their expansion index), so growing an axis
    leaves every existing cell's derived seed unchanged.
    """
    digest = hashlib.sha256(
        f"{base_seed}|{canonical_json(params)}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "little") & 0x7FFFFFFF


@dataclass
class Axis:
    """One swept dimension.

    ``param`` names a :class:`ScenarioConfig` field (or, for dict-valued
    entries, just the axis itself).  Each value is either a scalar
    assigned to ``param`` or a dict of coupled field overrides.
    ``labels`` (optional, same length) are the values cells report in
    ``cell.params[param]``; they default to the scalar value itself, or
    to the canonical JSON of a dict value.
    """

    param: str
    values: List
    labels: Optional[List] = None

    def __post_init__(self) -> None:
        self.values = list(self.values)
        if not self.values:
            raise ValueError(f"axis {self.param!r} has no values")
        if self.labels is not None:
            self.labels = list(self.labels)
            if len(self.labels) != len(self.values):
                raise ValueError(
                    f"axis {self.param!r}: {len(self.labels)} labels for "
                    f"{len(self.values)} values"
                )

    def points(self) -> List:
        """``(label, overrides)`` pairs, one per value."""
        out = []
        for i, value in enumerate(self.values):
            if isinstance(value, dict):
                overrides = dict(value)
                label = self.labels[i] if self.labels else canonical_json(value)
            else:
                overrides = {self.param: value}
                label = self.labels[i] if self.labels else value
            out.append((label, overrides))
        return out

    def to_dict(self) -> Dict:
        out = {"param": self.param, "values": self.values}
        if self.labels is not None:
            out["labels"] = self.labels
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "Axis":
        unknown = set(data) - {"param", "values", "labels"}
        if unknown:
            raise ValueError(f"unknown Axis key(s) {sorted(unknown)}")
        return cls(data["param"], data["values"], data.get("labels"))


@dataclass
class SweepCell:
    """One expanded grid point: coordinates plus the full config."""

    index: int
    #: Axis coordinates, ``{axis.param: label}`` in axis order.
    params: Dict
    #: Canonical full config dict (every field, serialized form).
    config_dict: Dict

    def config(self) -> ScenarioConfig:
        """Materialize the runnable :class:`ScenarioConfig`."""
        return ScenarioConfig.from_dict(self.config_dict)


@dataclass
class SweepSpec:
    """A named, declarative experiment grid (see module docstring).

    ``single_path_baseline`` mirrors the convention of
    :func:`repro.bench.runner.policy_comparison`: a cell whose policy is
    ``"single"`` runs with ``n_paths=1`` (it *is* the one-lane baseline)
    unless the cell's own axis overrides pin ``n_paths`` explicitly.
    """

    name: str
    base: Dict = field(default_factory=dict)
    axes: List[Axis] = field(default_factory=list)
    seed_mode: str = "fixed"
    single_path_baseline: bool = True

    def __post_init__(self) -> None:
        if self.seed_mode not in ("fixed", "derived"):
            raise ValueError(
                f"seed_mode must be 'fixed' or 'derived', got {self.seed_mode!r}"
            )
        self.axes = [a if isinstance(a, Axis) else Axis.from_dict(a)
                     for a in self.axes]
        seen = set()
        for axis in self.axes:
            if axis.param in seen:
                raise ValueError(f"duplicate axis {axis.param!r}")
            seen.add(axis.param)

    @property
    def n_cells(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def expand(self) -> List[SweepCell]:
        """Cross-product expansion into runnable cells (row-major)."""
        cells: List[SweepCell] = []
        axis_points = [axis.points() for axis in self.axes]
        for index, combo in enumerate(itertools.product(*axis_points)):
            params: Dict = {}
            overrides: Dict = {}
            for axis, (label, ov) in zip(self.axes, combo):
                params[axis.param] = label
                overrides.update(ov)
            merged = {**self.base, **overrides}
            if (self.single_path_baseline and merged.get("policy") == "single"
                    and "n_paths" not in overrides):
                merged["n_paths"] = 1
            if self.seed_mode == "derived" and "seed" not in overrides:
                base_seed = int(merged.get("seed", ScenarioConfig.seed))
                merged["seed"] = derive_seed(base_seed, params)
            config = ScenarioConfig.from_dict(merged).validate()
            cells.append(SweepCell(index, params, config.to_dict()))
        return cells

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        base = {}
        for key, value in self.base.items():
            base[key] = value.to_dict() if hasattr(value, "to_dict") else value
        return {
            "name": self.name,
            "base": base,
            "axes": [a.to_dict() for a in self.axes],
            "seed_mode": self.seed_mode,
            "single_path_baseline": self.single_path_baseline,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        """Build a spec from :meth:`to_dict`-shaped (JSON) data."""
        known = {"name", "base", "axes", "seed_mode", "single_path_baseline"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SweepSpec key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "name" not in data:
            raise ValueError("SweepSpec needs a 'name'")
        return cls(
            name=data["name"],
            base=dict(data.get("base", {})),
            axes=[Axis.from_dict(a) if not isinstance(a, Axis) else a
                  for a in data.get("axes", [])],
            seed_mode=data.get("seed_mode", "fixed"),
            single_path_baseline=data.get("single_path_baseline", True),
        )


def coerce_field_value(name: str, text: str):
    """Parse a CLI string into the type of ScenarioConfig field ``name``.

    Used by ``repro sweep --axis/--set``: ints and floats by the field's
    declared type, ``jitter`` left as a profile name, JSON accepted for
    dict-typed values (``faults``, ``slo``, ``mpdp_overrides``, compound axis
    points).
    """
    import dataclasses as _dc

    text = text.strip()
    if text.startswith(("{", "[")):
        return json.loads(text)
    fields = {f.name: f for f in _dc.fields(ScenarioConfig)}
    if name not in fields:
        raise ValueError(
            f"unknown ScenarioConfig field {name!r}; "
            f"valid fields: {sorted(fields)}"
        )
    hint = str(fields[name].type)
    try:
        if "int" in hint and "float" not in hint:
            return int(text)
        if "float" in hint:
            return float(text)
    except ValueError:
        raise ValueError(f"field {name!r} expects a number, got {text!r}") from None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if text in ("null", "None", "none") and name in ("faults", "slo"):
        return None
    return text
