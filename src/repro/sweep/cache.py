"""Content-addressed result cache for sweep cells.

Each cell's artifact is stored under
``<cache_dir>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256 of the
cell's canonical config JSON **plus** a code fingerprint, so a cache hit
is guaranteed to be the artifact an identical run would produce: change
any config field *or any line of the simulator* and the key moves.
Re-running a sweep therefore only pays for the cells that are new or
invalidated -- partial sweeps are incremental for free.

The code fingerprint is the SHA-256 of every ``*.py`` file in the
installed ``repro`` package (path + content), computed once per process.
Set ``REPRO_CODE_VERSION`` to pin it explicitly (e.g. in CI, to share a
cache across machines with identical trees but different install
layouts).  ``REPRO_CACHE_DIR`` overrides the default ``.repro-cache/``
root.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional

from repro.sweep.spec import canonical_json

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the repro package sources (cached per process)."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        pinned = os.environ.get("REPRO_CODE_VERSION")
        if pinned:
            _CODE_FINGERPRINT = pinned
        else:
            import repro

            root = pathlib.Path(repro.__file__).resolve().parent
            h = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                h.update(str(path.relative_to(root)).encode())
                h.update(b"\0")
                h.update(path.read_bytes())
            _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


class ResultCache:
    """File-backed cell cache keyed by config content + code version."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = pathlib.Path(
            root or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )

    def key_for(self, config_dict: Dict) -> str:
        """Cache key of one cell: sha256(canonical config + code)."""
        payload = canonical_json(config_dict) + "|" + code_fingerprint()
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """Stored artifact for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: Dict) -> None:
        """Atomically store ``payload`` (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
