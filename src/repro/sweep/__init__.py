"""Parallel sweep orchestration: declarative grids over scenarios.

The sweep subsystem replaces hand-rolled benchmark loops with one
pipeline::

    SweepSpec --expand--> cells --pool/cache--> SweepResult (JSON)

* :mod:`~repro.sweep.spec` -- :class:`SweepSpec`/:class:`Axis` grids and
  the per-cell seed-derivation contract;
* :mod:`~repro.sweep.orchestrator` -- :func:`run_sweep`: worker-pool
  fan-out that is bit-identical to a serial run;
* :mod:`~repro.sweep.cache` -- content-hash result cache keyed by
  canonical config JSON + code fingerprint;
* :mod:`~repro.sweep.result` -- :class:`SweepResult`/:class:`CellResult`
  structured artifacts the figures and CLI consume.

See docs/SWEEPS.md for the spec format and the caching/seed contracts.
"""

from repro.sweep.spec import (
    Axis,
    SweepCell,
    SweepSpec,
    canonical_json,
    coerce_field_value,
    derive_seed,
)
from repro.sweep.cache import ResultCache, code_fingerprint, DEFAULT_CACHE_DIR
from repro.sweep.result import CellResult, SweepResult, measure
from repro.sweep.orchestrator import run_sweep, resolve_jobs

__all__ = [
    "Axis",
    "SweepCell",
    "SweepSpec",
    "canonical_json",
    "coerce_field_value",
    "derive_seed",
    "ResultCache",
    "code_fingerprint",
    "DEFAULT_CACHE_DIR",
    "CellResult",
    "SweepResult",
    "measure",
    "run_sweep",
    "resolve_jobs",
]
