"""Declarative fault schedules.

A *fault* is a transient pathology applied to one target (a data path,
or the NIC) for a window of simulation time.  Two spec flavours:

* :class:`FaultSpec` -- one-shot, armed at a fixed time for a fixed
  duration.  Fully deterministic; needs no random stream.
* :class:`StochasticFaultSpec` -- an MTBF/MTTR renewal process:
  exponential up-times (mean ``mtbf``) alternate with exponential fault
  durations (mean ``mttr``).  Materialization consumes a dedicated
  :class:`~repro.sim.rng.RngRegistry` stream, so installing a stochastic
  schedule never perturbs traffic, jitter, or policy draws.

:meth:`FaultSchedule.materialize` flattens both flavours into a sorted
list of :class:`FaultEvent` (arm / clear) that the
:class:`~repro.faults.injector.FaultInjector` replays.  Given the same
root seed and horizon the timeline is bit-identical across runs.

Fault kinds
-----------
==============  ========  ====================================================
kind            target    effect while armed
==============  ========  ====================================================
``crash``       path      poller stops; queued packets dropped at onset;
                          new arrivals queue (nobody serves) until ejection
``hang``        path      poller freezes; backlog preserved and served on clear
``degrade``     path      per-packet service cost multiplied by ``magnitude``
``drop_burst``  nic       arriving packets dropped with prob. ``magnitude``
``sched_freeze`` path     vCPU hard stall: accepted work finishes after clear
==============  ========  ====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

#: Recognised fault kinds (see module docstring for semantics).
FAULT_KINDS = ("crash", "hang", "degrade", "drop_burst", "sched_freeze")

#: Kinds that target a path (everything except the NIC-level burst).
PATH_KINDS = ("crash", "hang", "degrade", "sched_freeze")


def _check_kind_target(kind: str, target: Union[int, str]) -> None:
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
    if kind == "drop_burst":
        if target != "nic":
            raise ValueError(f"drop_burst targets the 'nic', got {target!r}")
    elif not (isinstance(target, int) and target >= 0):
        raise ValueError(f"{kind} targets a path id (int >= 0), got {target!r}")


def _check_magnitude(kind: str, magnitude: float) -> None:
    if kind == "degrade" and magnitude <= 1.0:
        raise ValueError(f"degrade magnitude must be > 1, got {magnitude}")
    if kind == "drop_burst" and not 0.0 < magnitude <= 1.0:
        raise ValueError(f"drop_burst magnitude is a drop prob in (0, 1], got {magnitude}")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault window.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Path id (int) or ``"nic"`` for ``drop_burst``.
    at:
        Simulation time the fault is armed (µs).
    duration:
        Fault duration (µs); ``inf`` = never clears on its own (a
        permanently crashed path).
    magnitude:
        ``degrade``: service-time multiplier (> 1).  ``drop_burst``:
        per-packet drop probability in (0, 1].  Ignored otherwise.
    """

    kind: str
    target: Union[int, str] = 0
    at: float = 0.0
    duration: float = float("inf")
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        _check_kind_target(self.kind, self.target)
        _check_magnitude(self.kind, self.magnitude)
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind == "sched_freeze" and math.isinf(self.duration):
            raise ValueError("sched_freeze needs a finite duration")


@dataclass(frozen=True)
class StochasticFaultSpec:
    """An MTBF/MTTR renewal fault process on one target.

    Up-times are exponential with mean ``mtbf``; each fault lasts an
    exponential duration with mean ``mttr``.  The process starts *up* at
    ``start`` and renews until the materialization horizon.

    ``mtbf``/``mttr`` are in µs, matching the simulation-wide unit.
    """

    kind: str
    target: Union[int, str] = 0
    mtbf: float = 50_000.0
    mttr: float = 2_000.0
    start: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        _check_kind_target(self.kind, self.target)
        _check_magnitude(self.kind, self.magnitude)
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")


@dataclass(frozen=True)
class FaultEvent:
    """One materialized timeline entry: arm or clear a fault window."""

    time: float
    action: str  # "arm" | "clear"
    kind: str
    target: Union[int, str]
    duration: float = float("inf")  # window length (arm events)
    magnitude: float = 1.0


@dataclass
class FaultSchedule:
    """Container of deterministic and stochastic fault specs.

    Example
    -------
    >>> sched = (FaultSchedule()
    ...          .crash(path=0, at=30_000.0, duration=20_000.0)
    ...          .renewal("hang", path=1, mtbf=40_000.0, mttr=1_500.0))
    """

    specs: List[FaultSpec] = field(default_factory=list)
    stochastic: List[StochasticFaultSpec] = field(default_factory=list)

    # -- fluent builders ------------------------------------------------
    def add(self, spec: Union[FaultSpec, StochasticFaultSpec]) -> "FaultSchedule":
        """Append a spec of either flavour."""
        if isinstance(spec, FaultSpec):
            self.specs.append(spec)
        elif isinstance(spec, StochasticFaultSpec):
            self.stochastic.append(spec)
        else:
            raise TypeError(f"expected a fault spec, got {type(spec).__name__}")
        return self

    def crash(self, path: int, at: float, duration: float = float("inf")) -> "FaultSchedule":
        return self.add(FaultSpec("crash", path, at, duration))

    def hang(self, path: int, at: float, duration: float) -> "FaultSchedule":
        return self.add(FaultSpec("hang", path, at, duration))

    def degrade(self, path: int, at: float, duration: float, factor: float) -> "FaultSchedule":
        return self.add(FaultSpec("degrade", path, at, duration, magnitude=factor))

    def drop_burst(self, at: float, duration: float, prob: float = 1.0) -> "FaultSchedule":
        return self.add(FaultSpec("drop_burst", "nic", at, duration, magnitude=prob))

    def sched_freeze(self, path: int, at: float, duration: float) -> "FaultSchedule":
        return self.add(FaultSpec("sched_freeze", path, at, duration))

    def renewal(
        self,
        kind: str,
        path: Union[int, str] = 0,
        mtbf: float = 50_000.0,
        mttr: float = 2_000.0,
        start: float = 0.0,
        magnitude: float = 1.0,
    ) -> "FaultSchedule":
        return self.add(StochasticFaultSpec(kind, path, mtbf, mttr, start, magnitude))

    @property
    def empty(self) -> bool:
        return not self.specs and not self.stochastic

    # -- materialization ------------------------------------------------
    def materialize(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[FaultEvent]:
        """Flatten the schedule into a sorted arm/clear event timeline.

        Stochastic processes are expanded in list order, each drawing its
        up/down times sequentially from ``rng`` -- so the timeline is a
        pure function of (schedule, horizon, rng state).  Events at or
        beyond ``horizon`` are omitted; a window straddling the horizon
        keeps its arm event (the run ends while the fault is active).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if self.stochastic and rng is None:
            raise ValueError("stochastic specs require an rng stream")
        events: List[FaultEvent] = []

        def window(kind, target, at, duration, magnitude) -> None:
            if at >= horizon:
                return
            events.append(FaultEvent(at, "arm", kind, target, duration, magnitude))
            if at + duration < horizon:
                events.append(FaultEvent(at + duration, "clear", kind, target))

        for s in self.specs:
            window(s.kind, s.target, s.at, s.duration, s.magnitude)
        for s in self.stochastic:
            t = s.start
            while True:
                t += float(rng.exponential(s.mtbf))
                if t >= horizon:
                    break
                d = float(rng.exponential(s.mttr))
                window(s.kind, s.target, t, d, s.magnitude)
                t += d
        # Stable sort keeps same-time events in spec order; clears sort
        # before arms at equal times so back-to-back windows re-arm.
        events.sort(key=lambda e: (e.time, 0 if e.action == "clear" else 1))
        return events

    # -- serialization (CLI spec files) ---------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {
            "faults": [
                {
                    "kind": s.kind,
                    "target": s.target,
                    "at": s.at,
                    "duration": s.duration if math.isfinite(s.duration) else None,
                    "magnitude": s.magnitude,
                }
                for s in self.specs
            ],
            "renewal": [
                {
                    "kind": s.kind,
                    "target": s.target,
                    "mtbf": s.mtbf,
                    "mttr": s.mttr,
                    "start": s.start,
                    "magnitude": s.magnitude,
                }
                for s in self.stochastic
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSchedule":
        """Build a schedule from :meth:`to_dict`-shaped (JSON) data."""
        sched = cls()
        for d in data.get("faults", []):
            duration = d.get("duration")
            sched.add(
                FaultSpec(
                    d["kind"],
                    d.get("target", 0),
                    float(d.get("at", 0.0)),
                    float("inf") if duration is None else float(duration),
                    float(d.get("magnitude", 1.0)),
                )
            )
        for d in data.get("renewal", []):
            sched.add(
                StochasticFaultSpec(
                    d["kind"],
                    d.get("target", 0),
                    float(d.get("mtbf", 50_000.0)),
                    float(d.get("mttr", 2_000.0)),
                    float(d.get("start", 0.0)),
                    float(d.get("magnitude", 1.0)),
                )
            )
        return sched
