"""Deterministic fault injection and resilience machinery.

The core simulator models *soft* pathologies (scheduling jitter, noisy
neighbors); this package adds *hard* faults -- path crashes, hangs,
service degradation, NIC loss bursts, and vCPU freezes -- plus the
declarative schedule language and the injector process that arms and
clears them at exact simulation times.

* :mod:`~repro.faults.spec` -- :class:`FaultSpec` (one-shot, fixed
  time), :class:`StochasticFaultSpec` (MTBF/MTTR renewal process) and
  the :class:`FaultSchedule` container that materializes both into a
  deterministic event timeline;
* :mod:`~repro.faults.injector` -- :class:`FaultInjector`, the sim
  process that applies the timeline to a
  :class:`~repro.core.mpdp.MultipathDataPlane` through the small
  injection API on paths / NIC / vCPUs.

Recovery (ejection of dead paths, queue re-steering, probe-based
reinstatement) lives in :class:`~repro.core.controller.PathController`;
availability accounting in :class:`~repro.metrics.availability.AvailabilityTracker`.
See ``docs/FAULTS.md`` for the full model.
"""

from repro.faults.spec import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    StochasticFaultSpec,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpec",
    "StochasticFaultSpec",
    "FaultInjector",
]
