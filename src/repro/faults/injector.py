"""The fault-injection process.

:class:`FaultInjector` materializes a :class:`~repro.faults.spec.FaultSchedule`
against a concrete :class:`~repro.core.mpdp.MultipathDataPlane` and
schedules one simulator callback per arm/clear event.  All stochastic
draws happen at :meth:`install` time from the injector's dedicated
stream, so the fault timeline is fixed before the first packet moves and
two runs with the same root seed produce byte-identical timelines.

When no schedule is installed nothing is scheduled and no per-packet
code path changes -- fault support is zero-overhead for fault-free runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.faults.spec import FaultEvent, FaultSchedule
from repro.metrics.availability import AvailabilityTracker


class FaultInjector:
    """Arms and clears faults on a multipath host per a schedule.

    Parameters
    ----------
    host:
        The :class:`~repro.core.mpdp.MultipathDataPlane` under test.
    schedule:
        Declarative fault schedule (deterministic and/or stochastic).
    rng:
        Dedicated stream (``rngs.stream("faults")``) consumed only by
        stochastic materialization and probabilistic drop bursts.
    tracker:
        Availability tracker; created automatically when omitted.
    """

    def __init__(
        self,
        sim,
        host,
        schedule: FaultSchedule,
        rng: Optional[np.random.Generator] = None,
        tracker: Optional[AvailabilityTracker] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.schedule = schedule
        self.rng = rng
        self.tracker = tracker if tracker is not None else AvailabilityTracker()
        #: Applied events, in application order: (time, action, kind, target).
        self.timeline: List[Tuple[float, str, str, object]] = []
        self.events: List[FaultEvent] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self, horizon: float, enable_ejection: bool = True) -> "FaultInjector":
        """Materialize the schedule and arm the simulator callbacks.

        ``horizon`` bounds stochastic renewal processes (normally traffic
        duration + drain).  ``enable_ejection`` switches the host
        controller's liveness/ejection machinery on (the recovery half of
        the subsystem) and wires the availability tracker into it; pass
        ``False`` to study faults with recovery disabled.
        """
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self.events = self.schedule.materialize(horizon, self.rng)
        for ev in self.events:
            self._check_target(ev)
            self.sim.call_at(ev.time, self._apply, ev)
        ctl = getattr(self.host, "controller", None)
        if ctl is not None:
            if enable_ejection:
                ctl.eject = True
            ctl.availability = self.tracker
        return self

    def _check_target(self, ev: FaultEvent) -> None:
        if ev.target == "nic":
            return
        if not 0 <= ev.target < len(self.host.paths):
            raise ValueError(
                f"fault target path {ev.target} out of range "
                f"(host has {len(self.host.paths)} paths)"
            )

    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        now = self.sim.now
        self.timeline.append((now, ev.action, ev.kind, ev.target))
        if ev.action == "arm":
            self._arm(ev, now)
        else:
            self._clear(ev, now)

    def _arm(self, ev: FaultEvent, now: float) -> None:
        self.tracker.on_fault_start(ev.target, ev.kind, now)
        if ev.kind == "drop_burst":
            self.host.nic.inject_drop_burst(now + ev.duration, ev.magnitude, self.rng)
            return
        path = self.host.paths[ev.target]
        if ev.kind == "crash":
            path.inject_crash()
        elif ev.kind == "hang":
            path.inject_hang()
        elif ev.kind == "degrade":
            path.inject_degrade(ev.magnitude)
        elif ev.kind == "sched_freeze":
            path.inject_sched_freeze(now, ev.duration)

    def _clear(self, ev: FaultEvent, now: float) -> None:
        self.tracker.on_fault_clear(ev.target, now)
        if ev.kind == "drop_burst":
            self.host.nic.inject_drop_burst(now)  # until <= now: burst over
            return
        self.host.paths[ev.target].clear_fault()

    # ------------------------------------------------------------------
    def faults_applied(self) -> int:
        """Arm events applied so far."""
        return sum(1 for _, action, _, _ in self.timeline if action == "arm")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector events={len(self.events)} "
            f"applied={len(self.timeline)}>"
        )
