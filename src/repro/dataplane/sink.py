"""Terminal delivery point and measurement boundary.

The sink is "the application socket": it stamps ``t_done``, feeds the
latency recorder and throughput meter, and notifies the flow tracker.
It deliberately contains **no** dedup/reorder logic -- those belong to
the multipath core, which sits in front of the sink.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.check.invariants import NullInvariants
from repro.metrics.collectors import LatencyRecorder, ThroughputMeter
from repro.net.flow import FlowTracker
from repro.net.packet import POOL_MAX, Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


class DeliverySink:
    """Records end-to-end latency and goodput of delivered packets.

    Parameters
    ----------
    recorder:
        Latency recorder (created with defaults if omitted).
    tracker:
        Optional flow tracker for FCT experiments.
    on_delivery:
        Optional extra callback (tests, live dashboards).
    """

    __slots__ = ("sim", "recorder", "throughput", "tracker", "on_delivery",
                 "delivered", "tracer", "invariants", "_pool")

    def __init__(
        self,
        sim: Simulator,
        recorder: Optional[LatencyRecorder] = None,
        tracker: Optional[FlowTracker] = None,
        on_delivery: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.throughput = ThroughputMeter()
        self.tracker = tracker
        self.on_delivery = on_delivery
        self.delivered = 0
        #: Span tracer (observability); marks delivery instants.
        self.tracer = NullTracer
        #: Invariant engine (repro.check); NullInvariants keeps the hot
        #: path at one attribute check when checking is detached.
        self.invariants = NullInvariants
        #: Packet free list (PacketFactory.free) when recycling is wired;
        #: None leaves delivered packets to the garbage collector.
        self._pool = None

    def deliver(self, packet: Packet) -> None:
        """Accept one packet at the application boundary."""
        now = self.sim._now
        packet.t_done = now
        self.delivered += 1
        if self.invariants.enabled:
            self.invariants.on_deliver(packet)
        if self.tracer.enabled:
            self.tracer.record(now, "sink", packet.pid, 0.0)
        # Inlined LatencyRecorder.record and ThroughputMeter.record
        # (identical bookkeeping; this is the per-delivery hot path).
        latency = now - packet.t_created
        rec = self.recorder
        if now < rec.warmup:
            rec.dropped_warmup += 1
        else:
            rec.count += 1
            rec._sum += latency
            if latency > rec._max:
                rec._max = latency
            if rec.keep_all:
                rec.samples.append(latency)
            rec._pending.append(latency)
        size = packet.size
        tm = self.throughput
        if tm.packets == 0:
            tm.t_first = now
        tm.packets += 1
        tm.bytes += size
        tm.t_last = now
        rm = tm.rate_meter
        if now >= rm._bucket_end:
            rm._advance(now)
        rm._buckets[rm._current] += size
        if self.tracker is not None:
            self.tracker.on_delivery(packet, now)
        if self.on_delivery is not None:
            self.on_delivery(packet)
        pool = self._pool
        if pool is not None and len(pool) < POOL_MAX:
            pool.append(packet)

    __call__ = deliver
