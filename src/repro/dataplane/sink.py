"""Terminal delivery point and measurement boundary.

The sink is "the application socket": it stamps ``t_done``, feeds the
latency recorder and throughput meter, and notifies the flow tracker.
It deliberately contains **no** dedup/reorder logic -- those belong to
the multipath core, which sits in front of the sink.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.metrics.collectors import LatencyRecorder, ThroughputMeter
from repro.net.flow import FlowTracker
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


class DeliverySink:
    """Records end-to-end latency and goodput of delivered packets.

    Parameters
    ----------
    recorder:
        Latency recorder (created with defaults if omitted).
    tracker:
        Optional flow tracker for FCT experiments.
    on_delivery:
        Optional extra callback (tests, live dashboards).
    """

    __slots__ = ("sim", "recorder", "throughput", "tracker", "on_delivery",
                 "delivered", "tracer")

    def __init__(
        self,
        sim: Simulator,
        recorder: Optional[LatencyRecorder] = None,
        tracker: Optional[FlowTracker] = None,
        on_delivery: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.throughput = ThroughputMeter()
        self.tracker = tracker
        self.on_delivery = on_delivery
        self.delivered = 0
        #: Span tracer (observability); marks delivery instants.
        self.tracer = NullTracer

    def deliver(self, packet: Packet) -> None:
        """Accept one packet at the application boundary."""
        now = self.sim.now
        packet.t_done = now
        self.delivered += 1
        if self.tracer.enabled:
            self.tracer.record(now, "sink", packet.pid, 0.0)
        self.recorder.record(packet.latency, now)
        self.throughput.record(packet.size, now)
        if self.tracker is not None:
            self.tracker.on_delivery(packet, now)
        if self.on_delivery is not None:
            self.on_delivery(packet)

    __call__ = deliver
