"""DataPath: the replicable datapath unit.

A *path* is one complete intra-host forwarding lane: a bounded queue, a
poller on its own vCPU, and a private replica of the NF chain (prefixed
by a private vSwitch flow cache).  The multipath data plane instantiates
``k`` of these; the single-path baseline is simply ``k = 1``.

The path also maintains the online state the selection policies read:
queue depth, EWMA of recent per-packet sojourn, and a streaming p95 --
all updated on completion events with O(1) work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.dataplane.queues import PathQueue
from repro.dataplane.poller import Poller
from repro.dataplane.vcpu import JitterParams, VCpu
from repro.dataplane.vswitch import FlowCache
from repro.elements.base import Chain
from repro.metrics.collectors import Ewma
from repro.metrics.stats import P2Quantile
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


@dataclass
class PathConfig:
    """Per-path construction parameters (see component classes for units).

    ``qdisc`` selects the queue discipline: ``"fifo"`` (default,
    :class:`PathQueue`), ``"prio"`` (strict priority over
    ``packet.priority``) or ``"drr"`` (deficit round robin with
    ``drr_quanta`` bytes per class).
    """

    queue_capacity: int = 1024
    queue_capacity_bytes: Optional[int] = None
    qdisc: str = "fifo"
    qdisc_classes: int = 2
    drr_quanta: tuple = (1554, 1554)
    batch_size: int = 32
    batch_overhead: float = 0.25
    wakeup_latency: float = 0.0
    emc_size: int = 8192
    jitter: JitterParams = field(default_factory=JitterParams)
    latency_ewma_alpha: float = 0.05


class DataPath:
    """One queue + poller + vCPU + chain replica.

    Parameters
    ----------
    chain:
        The chain replica this path executes (already cloned by the
        caller; paths never share chain state).
    complete:
        Callable invoked with each successfully processed packet.
    drop:
        Callable invoked with packets dropped inside the path.
    """

    __slots__ = (
        "sim",
        "path_id",
        "name",
        "queue",
        "vcpu",
        "flowcache",
        "chain",
        "poller",
        "ewma_latency",
        "p95",
        "completed",
        "last_completion",
        "faulted",
        "fault_dropped",
        "tracer",
        "_complete_cb",
        "_drop_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        path_id: int,
        chain: Chain,
        complete: Callable[[Packet], None],
        drop: Optional[Callable[[Packet], None]] = None,
        rng: Optional[np.random.Generator] = None,
        config: Optional[PathConfig] = None,
        tracer=NullTracer,
    ) -> None:
        cfg = config or PathConfig()
        self.sim = sim
        self.path_id = path_id
        self.name = f"path{path_id}"
        if cfg.qdisc == "fifo":
            self.queue = PathQueue(
                sim,
                name=f"{self.name}.q",
                capacity_pkts=cfg.queue_capacity,
                capacity_bytes=cfg.queue_capacity_bytes,
            )
        elif cfg.qdisc == "prio":
            from repro.dataplane.scheduler import PriorityPathQueue

            self.queue = PriorityPathQueue(
                sim,
                name=f"{self.name}.q",
                capacity_pkts=cfg.queue_capacity,
                n_classes=cfg.qdisc_classes,
            )
        elif cfg.qdisc == "drr":
            from repro.dataplane.scheduler import DrrPathQueue

            self.queue = DrrPathQueue(
                sim,
                name=f"{self.name}.q",
                capacity_pkts=cfg.queue_capacity,
                quanta=cfg.drr_quanta,
            )
        else:
            raise ValueError(f"unknown qdisc {cfg.qdisc!r} (fifo/prio/drr)")
        self.vcpu = VCpu(name=f"{self.name}.vcpu", rng=rng, params=cfg.jitter)
        self.flowcache = FlowCache(name=f"{self.name}.fc", emc_size=cfg.emc_size)
        # The flow cache is the first element every packet hits on a path.
        # Plain chains are flattened; other composites (e.g. a
        # StageParallelChain) are nested whole to preserve their shape.
        if type(chain) is Chain:
            members = [self.flowcache, *chain.elements]
        else:
            members = [self.flowcache, chain]
        self.chain = Chain(members, name=f"{self.name}.{chain.name}")
        self._complete_cb = complete
        self._drop_cb = drop
        self.tracer = tracer
        self.poller = Poller(
            sim,
            self.queue,
            self.vcpu,
            self.chain,
            self._on_complete,
            name=f"{self.name}.poller",
            batch_size=cfg.batch_size,
            batch_overhead=cfg.batch_overhead,
            wakeup_latency=cfg.wakeup_latency,
            drop_sink=self._on_drop,
            tracer=tracer,
            track=path_id,
        )
        #: EWMA of per-packet path sojourn (enqueue -> completion), µs.
        self.ewma_latency = Ewma(cfg.latency_ewma_alpha)
        #: Streaming p95 of path sojourn, µs.
        self.p95 = P2Quantile(0.95)
        self.completed = 0
        self.last_completion = 0.0
        #: Active fault kind (``None`` when healthy) -- set only by the
        #: injection API below; policies never read it (no oracle).
        self.faulted: Optional[str] = None
        #: Packets destroyed by a crash's queue drop.
        self.fault_dropped = 0

    # ------------------------------------------------------------------
    # Fault injection API (see repro.faults)
    # ------------------------------------------------------------------
    def inject_crash(self) -> None:
        """Path dies: the poller stops and the queued packets are lost.

        New arrivals still enqueue (the ring is shared memory; producers
        do not know the consumer died) and sit there until the controller
        ejects the path and re-steers them, or the queue overflows.
        """
        self.faulted = "crash"
        for pkt in self.queue.pop_batch(len(self.queue)):
            pkt.dropped = f"{self.name}:crash"
            self.fault_dropped += 1
            self._on_drop(pkt)
        self.poller.freeze()

    def inject_hang(self) -> None:
        """Path freezes: no service, but the backlog survives the fault."""
        self.faulted = "hang"
        self.poller.freeze()

    def inject_degrade(self, factor: float) -> None:
        """Multiply per-packet service cost by ``factor`` (> 1)."""
        if factor <= 1.0:
            raise ValueError(f"degrade factor must be > 1, got {factor}")
        self.faulted = "degrade"
        self.poller.degrade = factor

    def inject_sched_freeze(self, now: float, duration: float) -> None:
        """Hard vCPU stall: accepted work finishes only after the freeze."""
        self.faulted = "sched_freeze"
        self.vcpu.inject_stall(now, duration)

    def clear_fault(self) -> None:
        """End the active fault; a frozen poller resumes with its backlog."""
        if self.faulted in ("crash", "hang"):
            self.poller.unfreeze()
        elif self.faulted == "degrade":
            self.poller.degrade = 1.0
        self.faulted = None

    def probe(self, now: float, timeout: float = 200.0) -> bool:
        """Health probe: would a trivial request complete within ``timeout``?

        Models the controller pinging the path process: fails while the
        poller is dead (crash/hang) or the vCPU is inside a stall longer
        than the probe timeout.  Degraded-but-serving paths pass -- slow
        is the straggler detector's business, not liveness's.
        """
        if self.poller.frozen:
            return False
        return self.vcpu.available_at(now) - now <= timeout

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Steer a packet onto this path; False if the queue dropped it."""
        packet.path_id = self.path_id
        return self.queue.push(packet)

    def _on_complete(self, packet: Packet) -> None:
        now = self.sim.now
        sojourn = now - packet.t_enq
        self.ewma_latency.add(sojourn)
        self.p95.add(sojourn)
        self.completed += 1
        self.last_completion = now
        if self.tracer.enabled:
            # Enclosing span (excluded from leaf-stage sums): the whole
            # intra-path sojourn, enqueue -> completion.
            self.tracer.record(now, "path_transit", packet.pid, sojourn,
                               self.path_id)
        self._complete_cb(packet)

    def _on_drop(self, packet: Packet) -> None:
        if self._drop_cb is not None:
            self._drop_cb(packet)

    # ------------------------------------------------------------------
    # Signals read by selection policies
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Instantaneous queue depth (packets)."""
        return len(self.queue)

    @property
    def depth_bytes(self) -> int:
        return self.queue.bytes

    def expected_wait(self, now: float) -> float:
        """Cheap estimate of a new arrival's wait on this path (µs).

        Queue backlog times the EWMA per-packet service estimate, plus the
        remaining time of work already accepted by the vCPU.  Used by the
        least-loaded and adaptive policies.
        """
        backlog = len(self.queue)
        per_pkt = self.chain.mean_cost()
        pending_cpu = max(0.0, self.vcpu.free_at - now)
        return backlog * per_pkt + pending_cpu

    def stalled(self, now: float, threshold: float) -> bool:
        """Straggler signal: head-of-line packet stuck beyond ``threshold``."""
        return self.queue.head_wait(now) > threshold

    def cpu_time(self) -> float:
        """Useful CPU µs consumed by this path so far."""
        return self.vcpu.busy_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataPath {self.path_id} depth={self.depth} "
            f"ewma={self.ewma_latency.value:.1f}us done={self.completed}>"
        )
