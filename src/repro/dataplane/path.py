"""DataPath: the replicable datapath unit.

A *path* is one complete intra-host forwarding lane: a bounded queue, a
poller on its own vCPU, and a private replica of the NF chain (prefixed
by a private vSwitch flow cache).  The multipath data plane instantiates
``k`` of these; the single-path baseline is simply ``k = 1``.

The path also maintains the online state the selection policies read:
queue depth, EWMA of recent per-packet sojourn, and a streaming p95 --
all updated on completion events with O(1) work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.dataplane.queues import PathQueue
from repro.dataplane.poller import Poller
from repro.dataplane.vcpu import JitterParams, VCpu
from repro.dataplane.vswitch import FlowCache
from repro.elements.base import Chain
from repro.metrics.collectors import Ewma
from repro.metrics.stats import P2Quantile
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


@dataclass
class PathConfig:
    """Per-path construction parameters (see component classes for units).

    ``qdisc`` selects the queue discipline from :data:`QDISC_REGISTRY`:
    ``"fifo"`` (default, :class:`PathQueue`), ``"prio"`` (strict priority
    over ``packet.priority``) or ``"drr"`` (deficit round robin with
    ``drr_quanta`` bytes per class).  It accepts either a registry name
    or a spec mapping ``{"name": ..., **params}`` -- the form sweep axes
    produce -- e.g. ``qdisc={"name": "drr", "quanta": (3000, 1554)}``;
    mapping params override the corresponding config fields.
    """

    queue_capacity: int = 1024
    queue_capacity_bytes: Optional[int] = None
    qdisc: object = "fifo"
    qdisc_classes: int = 2
    drr_quanta: tuple = (1554, 1554)
    batch_size: int = 32
    batch_overhead: float = 0.25
    wakeup_latency: float = 0.0
    emc_size: int = 8192
    jitter: JitterParams = field(default_factory=JitterParams)
    latency_ewma_alpha: float = 0.05


def _build_fifo(sim, name, cfg: "PathConfig", params: dict):
    return PathQueue(
        sim,
        name=name,
        capacity_pkts=params.pop("capacity_pkts", cfg.queue_capacity),
        capacity_bytes=params.pop("capacity_bytes", cfg.queue_capacity_bytes),
        **params,
    )


def _build_prio(sim, name, cfg: "PathConfig", params: dict):
    from repro.dataplane.scheduler import PriorityPathQueue

    return PriorityPathQueue(
        sim,
        name=name,
        capacity_pkts=params.pop("capacity_pkts", cfg.queue_capacity),
        n_classes=params.pop("n_classes", cfg.qdisc_classes),
        **params,
    )


def _build_drr(sim, name, cfg: "PathConfig", params: dict):
    from repro.dataplane.scheduler import DrrPathQueue

    return DrrPathQueue(
        sim,
        name=name,
        capacity_pkts=params.pop("capacity_pkts", cfg.queue_capacity),
        quanta=params.pop("quanta", cfg.drr_quanta),
        **params,
    )


#: Queue-discipline registry: name -> builder(sim, name, cfg, params).
#: ``DataPath`` resolves ``PathConfig.qdisc`` (name or spec mapping)
#: through this table; register a builder here to add a qdisc that
#: sweeps and scenario configs can select by name.
QDISC_REGISTRY = {
    "fifo": _build_fifo,
    "prio": _build_prio,
    "drr": _build_drr,
}


def make_path_queue(sim, name: str, cfg: "PathConfig"):
    """Build the queue selected by ``cfg.qdisc`` (registry-style spec).

    Accepts a registry name or a ``{"name": ..., **params}`` mapping;
    mapping params override the matching ``PathConfig`` fields.
    """
    spec = cfg.qdisc
    if isinstance(spec, dict):
        params = dict(spec)
        qname = params.pop("name", None)
        if qname is None:
            raise ValueError(
                f"qdisc spec mapping needs a 'name' key, got {sorted(spec)}"
            )
    else:
        qname, params = spec, {}
    try:
        builder = QDISC_REGISTRY[qname]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown qdisc {qname!r}; available: {'/'.join(QDISC_REGISTRY)}"
        ) from None
    return builder(sim, name, cfg, params)


class DataPath:
    """One queue + poller + vCPU + chain replica.

    Parameters
    ----------
    chain:
        The chain replica this path executes (already cloned by the
        caller; paths never share chain state).
    complete:
        Callable invoked with each successfully processed packet.
    drop:
        Callable invoked with packets dropped inside the path.
    """

    __slots__ = (
        "sim",
        "path_id",
        "name",
        "queue",
        "vcpu",
        "flowcache",
        "chain",
        "poller",
        "_ewma",
        "_p95",
        "_lat_pending",
        "_ewma_idx",
        "_mean_cost",
        "completed",
        "last_completion",
        "faulted",
        "fault_dropped",
        "tracer",
        "_complete_cb",
        "_drop_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        path_id: int,
        chain: Chain,
        complete: Callable[[Packet], None],
        drop: Optional[Callable[[Packet], None]] = None,
        rng: Optional[np.random.Generator] = None,
        config: Optional[PathConfig] = None,
        tracer=NullTracer,
    ) -> None:
        cfg = config or PathConfig()
        self.sim = sim
        self.path_id = path_id
        self.name = f"path{path_id}"
        self.queue = make_path_queue(sim, f"{self.name}.q", cfg)
        self.vcpu = VCpu(name=f"{self.name}.vcpu", rng=rng, params=cfg.jitter)
        self.flowcache = FlowCache(name=f"{self.name}.fc", emc_size=cfg.emc_size)
        # The flow cache is the first element every packet hits on a path.
        # Plain chains are flattened; other composites (e.g. a
        # StageParallelChain) are nested whole to preserve their shape.
        if type(chain) is Chain:
            members = [self.flowcache, *chain.elements]
        else:
            members = [self.flowcache, chain]
        self.chain = Chain(members, name=f"{self.name}.{chain.name}")
        self._complete_cb = complete
        self._drop_cb = drop
        self.tracer = tracer
        self.poller = Poller(
            sim,
            self.queue,
            self.vcpu,
            self.chain,
            self._on_complete,
            name=f"{self.name}.poller",
            batch_size=cfg.batch_size,
            batch_overhead=cfg.batch_overhead,
            wakeup_latency=cfg.wakeup_latency,
            drop_sink=self._on_drop,
            tracer=tracer,
            track=path_id,
        )
        #: EWMA of per-packet path sojourn (enqueue -> completion), µs.
        self._ewma = Ewma(cfg.latency_ewma_alpha)
        #: Streaming p95 of path sojourn, µs.
        self._p95 = P2Quantile(0.95)
        #: Sojourn samples not yet folded into the EWMA/p95 estimators.
        #: Completions only append here; any read of :attr:`ewma_latency`
        #: or :attr:`p95` replays the buffer in arrival order first, so
        #: readers observe exactly the eagerly-updated state.  The EWMA
        #: (polled every health refresh) folds incrementally from
        #: ``_ewma_idx``; the costlier P² p95 folds only on an actual
        #: :attr:`p95` read or when the buffer hits its cap.
        self._lat_pending: list = []
        self._ewma_idx = 0
        # Lazily cached chain.mean_cost() (fixed after construction).
        self._mean_cost = 0.0
        self.completed = 0
        self.last_completion = 0.0
        #: Active fault kind (``None`` when healthy) -- set only by the
        #: injection API below; policies never read it (no oracle).
        self.faulted: Optional[str] = None
        #: Packets destroyed by a crash's queue drop.
        self.fault_dropped = 0

    # ------------------------------------------------------------------
    # Fault injection API (see repro.faults)
    # ------------------------------------------------------------------
    def inject_crash(self) -> None:
        """Path dies: the poller stops and the queued packets are lost.

        New arrivals still enqueue (the ring is shared memory; producers
        do not know the consumer died) and sit there until the controller
        ejects the path and re-steers them, or the queue overflows.
        """
        self.faulted = "crash"
        for pkt in self.queue.pop_batch(len(self.queue)):
            pkt.dropped = f"{self.name}:crash"
            self.fault_dropped += 1
            self._on_drop(pkt)
        self.poller.freeze()

    def inject_hang(self) -> None:
        """Path freezes: no service, but the backlog survives the fault."""
        self.faulted = "hang"
        self.poller.freeze()

    def inject_degrade(self, factor: float) -> None:
        """Multiply per-packet service cost by ``factor`` (> 1)."""
        if factor <= 1.0:
            raise ValueError(f"degrade factor must be > 1, got {factor}")
        self.faulted = "degrade"
        self.poller.degrade = factor

    def inject_sched_freeze(self, now: float, duration: float) -> None:
        """Hard vCPU stall: accepted work finishes only after the freeze."""
        self.faulted = "sched_freeze"
        self.vcpu.inject_stall(now, duration)

    def clear_fault(self) -> None:
        """End the active fault; a frozen poller resumes with its backlog."""
        if self.faulted in ("crash", "hang"):
            self.poller.unfreeze()
        elif self.faulted == "degrade":
            self.poller.degrade = 1.0
        self.faulted = None

    def probe(self, now: float, timeout: float = 200.0) -> bool:
        """Health probe: would a trivial request complete within ``timeout``?

        Models the controller pinging the path process: fails while the
        poller is dead (crash/hang) or the vCPU is inside a stall longer
        than the probe timeout.  Degraded-but-serving paths pass -- slow
        is the straggler detector's business, not liveness's.
        """
        if self.poller.frozen:
            return False
        return self.vcpu.available_at(now) - now <= timeout

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Steer a packet onto this path; False if the queue dropped it."""
        packet.path_id = self.path_id
        return self.queue.push(packet)

    def _on_complete(self, packet: Packet) -> None:
        now = self.sim._now
        sojourn = now - packet.t_enq
        pending = self._lat_pending
        pending.append(sojourn)
        if len(pending) >= 262144:
            # Bound buffer growth when nothing reads the estimators
            # (they flush on read).
            self._flush_latency()
        self.completed += 1
        self.last_completion = now
        if self.tracer.enabled:
            # Enclosing span (excluded from leaf-stage sums): the whole
            # intra-path sojourn, enqueue -> completion.
            self.tracer.record(now, "path_transit", packet.pid, sojourn,
                               self.path_id)
        self._complete_cb(packet)

    def _on_drop(self, packet: Packet) -> None:
        if self._drop_cb is not None:
            self._drop_cb(packet)

    # ------------------------------------------------------------------
    # Signals read by selection policies
    # ------------------------------------------------------------------
    def _flush_latency(self) -> None:
        """Replay buffered sojourns into the EWMA/p95 estimators."""
        pending = self._lat_pending
        if pending:
            i = self._ewma_idx
            if i < len(pending):
                self._ewma.add_many(pending[i:] if i else pending)
            self._p95.add_many(pending)
            self._lat_pending = []
            self._ewma_idx = 0

    @property
    def ewma_latency(self) -> Ewma:
        """EWMA of per-packet path sojourn (flushed on read)."""
        pending = self._lat_pending
        i = self._ewma_idx
        if i < len(pending):
            self._ewma.add_many(pending[i:] if i else pending)
            self._ewma_idx = len(pending)
        return self._ewma

    @property
    def p95(self) -> P2Quantile:
        """Streaming p95 of path sojourn (flushed on read)."""
        self._flush_latency()
        return self._p95

    @property
    def depth(self) -> int:
        """Instantaneous queue depth (packets)."""
        return len(self.queue)

    @property
    def depth_bytes(self) -> int:
        return self.queue.bytes

    def expected_wait(self, now: float) -> float:
        """Cheap estimate of a new arrival's wait on this path (µs).

        Queue backlog times the EWMA per-packet service estimate, plus the
        remaining time of work already accepted by the vCPU.  Used by the
        least-loaded and adaptive policies.
        """
        m = self._mean_cost
        if m == 0.0:
            m = self._mean_cost = self.chain.mean_cost()
        wait = len(self.queue) * m
        pending_cpu = self.vcpu._free_at - now
        if pending_cpu > 0.0:
            wait += pending_cpu
        return wait

    def stalled(self, now: float, threshold: float) -> bool:
        """Straggler signal: head-of-line packet stuck beyond ``threshold``."""
        return self.queue.head_wait(now) > threshold

    def cpu_time(self) -> float:
        """Useful CPU µs consumed by this path so far."""
        return self.vcpu.busy_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataPath {self.path_id} depth={self.depth} "
            f"ewma={self.ewma_latency.value:.1f}us done={self.completed}>"
        )
