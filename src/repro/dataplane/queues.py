"""Bounded path queues (vSwitch/vhost rings).

:class:`PathQueue` is the drop-tail FIFO in front of each datapath
instance.  It is deliberately *not* built on :class:`repro.sim.Store`:
the per-packet hot path needs direct deque operations, drop accounting,
byte-occupancy tracking, and an enqueue notification hook for the poller
-- with no Event allocation per packet.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator


class PathQueue:
    """Drop-tail FIFO with packet- and byte-capacity limits.

    Parameters
    ----------
    capacity_pkts:
        Maximum queued packets (ring slots).
    capacity_bytes:
        Optional byte ceiling (models bounded socket/ring memory).
    on_enqueue:
        Callback invoked after a successful enqueue (the poller's
        wake-up hook).  Set after construction via :attr:`on_enqueue`.
    """

    __slots__ = (
        "sim",
        "name",
        "capacity_pkts",
        "capacity_bytes",
        "on_enqueue",
        "_q",
        "_bytes",
        "enqueued",
        "dropped",
        "dropped_bytes",
        "peak_occupancy",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str = "pathq",
        capacity_pkts: int = 1024,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if capacity_pkts <= 0:
            raise ValueError(f"capacity_pkts must be positive, got {capacity_pkts}")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.sim = sim
        self.name = name
        self.capacity_pkts = capacity_pkts
        self.capacity_bytes = capacity_bytes
        self.on_enqueue: Optional[Callable[[], None]] = None
        self._q: Deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and marks the packet dropped) on overflow."""
        q = self._q
        size = packet.size
        n = len(q)
        if n >= self.capacity_pkts or (
            self.capacity_bytes is not None
            and self._bytes + size > self.capacity_bytes
        ):
            packet.dropped = f"{self.name}:overflow"
            self.dropped += 1
            self.dropped_bytes += size
            return False
        packet.t_enq = self.sim._now
        q.append(packet)
        self._bytes += size
        self.enqueued += 1
        n += 1
        if n > self.peak_occupancy:
            self.peak_occupancy = n
        on_enqueue = self.on_enqueue
        if on_enqueue is not None:
            on_enqueue()
        return True

    def pop(self) -> Packet:
        """Dequeue the head packet (raises IndexError when empty)."""
        pkt = self._q.popleft()
        self._bytes -= pkt.size
        return pkt

    def pop_batch(self, max_n: int) -> List[Packet]:
        """Dequeue up to ``max_n`` packets (possibly fewer; never empty
        unless the queue is empty)."""
        q = self._q
        n = len(q)
        if max_n < n:
            n = max_n
        popleft = q.popleft
        out = [popleft() for _ in range(n)]
        freed = 0
        for pkt in out:
            freed += pkt.size
        self._bytes -= freed
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._q)

    @property
    def bytes(self) -> int:
        """Current byte occupancy."""
        return self._bytes

    @property
    def empty(self) -> bool:
        return not self._q

    def head_wait(self, now: float) -> float:
        """How long the head packet has been waiting (0 if empty).

        The queue-aware selection policies use this as a staleness signal.
        """
        if not self._q:
            return 0.0
        return now - self._q[0].t_enq

    def audit(self) -> Optional[str]:
        """Recompute occupancy from contents; returns a message on
        mismatch, None when the books balance.

        O(queue length) -- called by the ``repro.check`` conservation
        sampler, never by the data plane itself.
        """
        actual = sum(p.size for p in self._q)
        if actual != self._bytes:
            return (
                f"{self.name}: byte counter {self._bytes} != contents "
                f"{actual}"
            )
        if self._bytes < 0 or (
            self.capacity_bytes is not None and self._bytes > self.capacity_bytes
        ):
            return f"{self.name}: byte counter {self._bytes} out of bounds"
        if len(self._q) > self.capacity_pkts:
            return (
                f"{self.name}: occupancy {len(self._q)} exceeds capacity "
                f"{self.capacity_pkts}"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PathQueue {self.name} len={len(self._q)} drops={self.dropped}>"
