"""vCPU model: a serial execution resource with scheduling jitter.

Why this is the heart of the last-mile problem: a software datapath
(vhost thread, OVS PMD, guest vCPU) periodically loses its physical core
-- CFS preemption by colocated threads, timer ticks, kernel work.  During
such a *stall* the path processes nothing, so every queued and in-flight
packet eats the full stall duration.  Fabric-side multipath cannot help;
only intra-host path diversity can.

The model alternates **run periods** (exponential, mean ``mean_run``) and
**stalls** (lognormal with median ``stall_median`` and shape
``stall_sigma``).  :meth:`VCpu.execute` charges ``cost`` µs of work,
walking the lazily generated stall schedule, and returns the (start,
finish) times.  Work is serialized: concurrent callers queue behind
``_free_at``, so one VCpu shared by two pollers behaves like a shared
core.

Three canned profiles:

* :data:`DEDICATED_CORE` -- pinned PMD core; rare tiny stalls (IRQs).
* :data:`SHARED_CORE` -- vhost thread sharing a core at moderate load.
* :data:`CONTENDED_CORE` -- heavily oversubscribed host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class JitterParams:
    """Scheduling-jitter profile for a :class:`VCpu`.

    Attributes
    ----------
    mean_run:
        Mean uninterrupted run period (µs); ``inf`` disables jitter.
    stall_median:
        Median stall duration (µs).
    stall_sigma:
        Lognormal sigma of stall durations (>= 0); larger = heavier
        stall-duration tail.
    """

    mean_run: float = float("inf")
    stall_median: float = 0.0
    stall_sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_run <= 0:
            raise ValueError(f"mean_run must be positive, got {self.mean_run}")
        if self.stall_median < 0 or self.stall_sigma < 0:
            raise ValueError("stall parameters must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.mean_run != float("inf") and self.stall_median > 0

    def mean_stall(self) -> float:
        """Mean stall duration implied by the lognormal parameters."""
        if not self.enabled:
            return 0.0
        return self.stall_median * float(np.exp(self.stall_sigma**2 / 2.0))

    def stall_fraction(self) -> float:
        """Long-run fraction of time spent stalled."""
        if not self.enabled:
            return 0.0
        ms = self.mean_stall()
        return ms / (self.mean_run + ms)

    def to_dict(self) -> dict:
        """JSON-friendly representation (all durations in µs).

        ``mean_run`` is ``None`` when jitter is disabled (the in-memory
        value is ``inf``, which strict JSON cannot carry).
        """
        return {
            "mean_run": None if self.mean_run == float("inf") else self.mean_run,
            "stall_median": self.stall_median,
            "stall_sigma": self.stall_sigma,
        }

    @classmethod
    def from_dict(cls, data) -> "JitterParams":
        """Build a profile from :meth:`to_dict` output or a profile name.

        Accepts a dict (``mean_run`` of ``None`` means no jitter) or one
        of the :data:`JITTER_PROFILES` names (``"none"``, ``"dedicated"``,
        ``"shared"``, ``"contended"``).
        """
        if isinstance(data, str):
            try:
                return JITTER_PROFILES[data]
            except KeyError:
                raise ValueError(
                    f"unknown jitter profile {data!r}; "
                    f"available: {sorted(JITTER_PROFILES)}"
                ) from None
        if isinstance(data, JitterParams):
            return data
        mean_run = data.get("mean_run")
        return cls(
            mean_run=float("inf") if mean_run is None else float(mean_run),
            stall_median=float(data.get("stall_median", 0.0)),
            stall_sigma=float(data.get("stall_sigma", 0.5)),
        )

    def scaled(self, contention: float) -> "JitterParams":
        """Profile with contention scaled by factor ``contention`` >= 0.

        Contention shortens run periods and lengthens stalls
        proportionally; ``contention=0`` returns a jitter-free profile.
        """
        if contention < 0:
            raise ValueError("contention must be >= 0")
        if contention == 0:
            return JitterParams()
        return JitterParams(
            mean_run=self.mean_run / contention,
            stall_median=self.stall_median * contention,
            stall_sigma=self.stall_sigma,
        )


#: Pinned, isolated PMD core: a ~4 µs hiccup every ~10 ms (timer/IRQ).
DEDICATED_CORE = JitterParams(mean_run=10_000.0, stall_median=4.0, stall_sigma=0.4)
#: vhost/PMD thread sharing a core: ~60 µs median stall every ~2 ms.
SHARED_CORE = JitterParams(mean_run=2_000.0, stall_median=60.0, stall_sigma=0.6)
#: Oversubscribed host: ~250 µs median stall every ~1.2 ms.
CONTENDED_CORE = JitterParams(mean_run=1_200.0, stall_median=250.0, stall_sigma=0.7)

#: Named jitter profiles accepted wherever a profile can be spelled as a
#: string (sweep specs, ``JitterParams.from_dict``, the CLI).
JITTER_PROFILES = {
    "none": JitterParams(),
    "dedicated": DEDICATED_CORE,
    "shared": SHARED_CORE,
    "contended": CONTENDED_CORE,
}


class VCpu:
    """Serial CPU with a lazily generated run/stall schedule.

    Parameters
    ----------
    rng:
        Dedicated random stream (required when jitter is enabled).
    params:
        Initial :class:`JitterParams`; mutable at runtime via
        :meth:`set_params` (used by interference injection).
    """

    __slots__ = (
        "name",
        "rng",
        "params",
        "_free_at",
        "_stall_start",
        "_stall_end",
        "busy_time",
        "stall_count",
        "executions",
    )

    def __init__(
        self,
        name: str = "vcpu",
        rng: Optional[np.random.Generator] = None,
        params: JitterParams = JitterParams(),
    ) -> None:
        if params.enabled and rng is None:
            raise ValueError(f"vcpu {name!r}: jitter requires an rng stream")
        self.name = name
        self.rng = rng
        self.params = params
        self._free_at = 0.0
        # Current-or-next stall window [start, end); inf when disabled.
        self._stall_start = float("inf")
        self._stall_end = float("inf")
        if params.enabled:
            self._stall_start = self._draw_gap()
            self._stall_end = self._stall_start + self._draw_stall()
        #: Total useful work charged (µs), excluding stall time.
        self.busy_time = 0.0
        self.stall_count = 0
        self.executions = 0

    # ------------------------------------------------------------------
    def _draw_gap(self) -> float:
        return float(self.rng.exponential(self.params.mean_run))

    def _draw_stall(self) -> float:
        return float(
            self.rng.lognormal(np.log(self.params.stall_median), self.params.stall_sigma)
        )

    def _next_stall(self) -> None:
        if not self.params.enabled:
            self._stall_start = float("inf")
            self._stall_end = float("inf")
            return
        self._stall_start = self._stall_end + self._draw_gap()
        self._stall_end = self._stall_start + self._draw_stall()
        self.stall_count += 1

    def set_params(self, params: JitterParams, now: float = 0.0) -> None:
        """Switch the jitter profile; affects stalls generated from now on."""
        if params.enabled and self.rng is None:
            raise ValueError(f"vcpu {self.name!r}: jitter requires an rng stream")
        self.params = params
        if not params.enabled:
            self._stall_start = float("inf")
            self._stall_end = float("inf")
            return
        if self._stall_start <= now < self._stall_end:
            return  # an ongoing stall is never shortened; future draws use new params
        # Re-anchor the schedule at `now`, discarding the previously drawn
        # next stall (it was drawn under the old profile).
        self._stall_start = now + self._draw_gap()
        self._stall_end = self._stall_start + self._draw_stall()

    def inject_stall(self, now: float, duration: float) -> None:
        """Force a hard stall window ``[now, now + duration)`` (fault
        injection: ``sched_freeze``).

        An ongoing stall is extended, never shortened.  Otherwise the
        forced window replaces the next drawn one; subsequent stalls are
        re-drawn from the current profile after the freeze ends, which
        keeps the schedule deterministic under a fixed stream.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        end = now + duration
        if self._stall_start <= now < self._stall_end:
            if end > self._stall_end:
                self._stall_end = end
            return
        self._stall_start = now
        self._stall_end = end
        self.stall_count += 1

    # ------------------------------------------------------------------
    def execute(self, now: float, cost: float) -> Tuple[float, float]:
        """Charge ``cost`` µs of work starting no earlier than ``now``.

        Returns ``(start, finish)`` wall-clock times.  ``start`` is when
        the work actually begins (after queueing behind earlier work and
        any ongoing stall); ``finish - start - cost`` is stall time
        suffered mid-service.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        t = now if now > self._free_at else self._free_at
        # Fast path: the next stall window is wholly ahead of this slice
        # of work (always true when jitter is disabled: start == inf).
        # The subtraction matches the general loop's `window` expression,
        # so the branch taken leaves identical state and timestamps.
        if self._stall_end > t:
            s = self._stall_start
            if s > t and cost <= s - t:
                self._free_at = finish = t + cost
                self.busy_time += cost
                self.executions += 1
                return t, finish
        # Skip forward if t lands inside the current stall window; also
        # advance the schedule past windows entirely behind t.
        while self._stall_end <= t:
            self._next_stall()
        if self._stall_start <= t:
            t = self._stall_end
            self._next_stall()
        start = t
        remaining = cost
        while remaining > 0.0:
            window = self._stall_start - t
            if remaining <= window:
                t += remaining
                remaining = 0.0
            else:
                remaining -= window
                t = self._stall_end
                self._next_stall()
        self._free_at = t
        self.busy_time += cost
        self.executions += 1
        return start, t

    def available_at(self, now: float) -> float:
        """Earliest time new work could start (without reserving it)."""
        t = now if now > self._free_at else self._free_at
        s, e = self._stall_start, self._stall_end
        if s <= t < e:
            return e
        return t

    @property
    def free_at(self) -> float:
        """Time the last charged work finishes."""
        return self._free_at

    def utilization(self, horizon: float) -> float:
        """Useful-work fraction of ``horizon`` µs."""
        return self.busy_time / horizon if horizon > 0 else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCpu {self.name} busy={self.busy_time:.1f}us stalls={self.stall_count}>"
