"""vSwitch forwarding lookup as a chain element.

Open vSwitch-style datapaths do a two-tier lookup per packet: an
exact-match cache (EMC) hit costs tens of nanoseconds, a miss falls back
to the megaflow classifier costing 5-20x more, and a cold flow pays a
full slow-path upcall.  :class:`FlowCache` reproduces this cost structure
with a bounded FIFO-evicting exact-match table, and is prepended to every
path's chain by the host builders -- so "vSwitch cost" shows up in the
per-stage breakdown and reacts to flow-count experiments (many concurrent
flows thrash the EMC, raising per-packet cost; another real tail source).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.elements.base import Element
from repro.net.packet import FiveTuple, Packet


class FlowCache(Element):
    """Two-tier vSwitch lookup: EMC hit / megaflow miss / slow-path cold.

    Parameters
    ----------
    emc_size:
        Exact-match cache capacity (flows); OVS default is 8192.
    hit_cost / miss_cost / upcall_cost:
        Per-packet costs (µs) for EMC hit, megaflow lookup, and first
        packet of an unseen flow respectively.
    """

    stateful = True

    def __init__(
        self,
        name: str = "flowcache",
        emc_size: int = 8192,
        hit_cost: float = 0.08,
        miss_cost: float = 0.5,
        upcall_cost: float = 3.0,
        rng: Optional[np.random.Generator] = None,
        jitter_sigma: float = 0.0,
    ) -> None:
        super().__init__(
            name, base_cost=hit_cost, jitter_sigma=jitter_sigma, rng=rng
        )
        if emc_size <= 0:
            raise ValueError(f"emc_size must be positive, got {emc_size}")
        self.emc_size = emc_size
        self.hit_cost = hit_cost
        self.miss_cost = miss_cost
        self.upcall_cost = upcall_cost
        # EMC: bounded, FIFO-evicting (OVS's EMC uses random eviction;
        # FIFO keeps determinism and the same thrash behaviour).
        self._emc: "OrderedDict[FiveTuple, bool]" = OrderedDict()
        # Megaflow table: unbounded set of installed flows.
        self._megaflow: set = set()
        self.hits = 0
        self.misses = 0
        self.upcalls = 0

    def process(self, packet: Packet, now: float) -> float:
        self.processed += 1
        ft = packet.ftuple
        if ft in self._emc:
            self.hits += 1
            cost = self.hit_cost
        elif ft in self._megaflow:
            self.misses += 1
            cost = self.miss_cost
            self._insert_emc(ft)
        else:
            self.upcalls += 1
            cost = self.upcall_cost
            self._megaflow.add(ft)
            self._insert_emc(ft)
        if self.jitter_sigma > 0.0:
            if self._jit_i >= len(self._jit):
                self._jit = self.rng.lognormal(0.0, self.jitter_sigma, 2048)
                self._jit_i = 0
            cost *= float(self._jit[self._jit_i])
            self._jit_i += 1
        return cost

    def _insert_emc(self, ft: FiveTuple) -> None:
        if len(self._emc) >= self.emc_size:
            self._emc.popitem(last=False)
        self._emc[ft] = True

    @property
    def hit_rate(self) -> float:
        """EMC hit fraction over all lookups."""
        total = self.hits + self.misses + self.upcalls
        return self.hits / total if total else float("nan")

    def clone(self, suffix: str) -> "FlowCache":
        return FlowCache(
            f"{self.name}{suffix}",
            emc_size=self.emc_size,
            hit_cost=self.hit_cost,
            miss_cost=self.miss_cost,
            upcall_cost=self.upcall_cost,
            rng=self.rng,
            jitter_sigma=self.jitter_sigma,
        )
