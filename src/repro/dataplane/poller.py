"""Batch service loop (DPDK PMD / vhost worker).

The poller drains its :class:`~repro.dataplane.queues.PathQueue` in
batches: it dequeues up to ``batch_size`` packets, charges a fixed batch
overhead plus each packet's chain cost to its :class:`VCpu`, and emits
per-packet completions at each packet's individual finish time.  When the
queue empties the poller idles; a fresh enqueue wakes it after
``wakeup_latency`` (the vhost-kick / eventfd cost -- zero for a spinning
PMD core).

Completions go to ``sink(packet)``; packets the chain drops go to
``drop_sink(packet)`` if provided (CPU cost is charged either way, as in
real datapaths).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataplane.queues import PathQueue
from repro.dataplane.vcpu import VCpu
from repro.elements.base import Chain
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import NORMAL, _SEQ_BITS, Simulator

#: Packed ordering key base for NORMAL-priority heap entries; the fast
#: service loop pushes completions directly (same tuples ``call_at``
#: would build, minus the call overhead).
_NORMAL_KEY = NORMAL << _SEQ_BITS


class Poller:
    """Serves one queue with one chain on one vCPU."""

    __slots__ = (
        "sim",
        "name",
        "queue",
        "vcpu",
        "chain",
        "sink",
        "drop_sink",
        "batch_size",
        "batch_overhead",
        "wakeup_latency",
        "_busy",
        "frozen",
        "degrade",
        "served",
        "batches",
        "service_time",
        "tracer",
        "track",
    )

    def __init__(
        self,
        sim: Simulator,
        queue: PathQueue,
        vcpu: VCpu,
        chain: Chain,
        sink: Callable[[Packet], None],
        name: str = "poller",
        batch_size: int = 32,
        batch_overhead: float = 0.25,
        wakeup_latency: float = 0.0,
        drop_sink: Optional[Callable[[Packet], None]] = None,
        tracer=NullTracer,
        track: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_overhead < 0 or wakeup_latency < 0:
            raise ValueError("overheads must be >= 0")
        self.sim = sim
        self.name = name
        self.queue = queue
        self.vcpu = vcpu
        self.chain = chain
        self.sink = sink
        self.drop_sink = drop_sink
        self.batch_size = batch_size
        self.batch_overhead = batch_overhead
        self.wakeup_latency = wakeup_latency
        self._busy = False
        #: Fault-injection state: a frozen poller serves nothing until
        #: unfrozen (crash/hang); ``degrade`` multiplies chain costs.
        self.frozen = False
        self.degrade = 1.0
        self.served = 0
        self.batches = 0
        #: Sum of chain service costs charged (µs), for T2 accounting.
        self.service_time = 0.0
        #: Span tracer (observability) and the track id (path id) its
        #: spans are attributed to.
        self.tracer = tracer
        self.track = track
        queue.on_enqueue = self._on_enqueue

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a batch is in service."""
        return self._busy

    def freeze(self) -> None:
        """Stop serving (fault injection); in-flight batch work completes."""
        self.frozen = True

    def unfreeze(self) -> None:
        """Resume serving; kicks the loop if backlog accumulated."""
        self.frozen = False
        if not self._busy and len(self.queue) > 0:
            self._busy = True
            self.queue.on_enqueue = None
            self.sim.call_in(0.0, self._serve_batch, priority=2)

    def _on_enqueue(self) -> None:
        if self._busy or self.frozen:
            return
        self._busy = True
        # While the serve loop is armed, pushes need no wakeup: unhook
        # the queue callback so the enqueue fast path skips the call.
        self.queue.on_enqueue = None
        if self.wakeup_latency > 0:
            self.sim.call_in(self.wakeup_latency, self._serve_batch)
        else:
            # Still defer by one event so that a burst arriving at the
            # same timestamp is served as one batch, not N singletons.
            self.sim.call_in(0.0, self._serve_batch, priority=2)

    def _serve_batch(self) -> None:
        if self.frozen:
            self._busy = False
            self.queue.on_enqueue = self._on_enqueue
            return
        batch = self.queue.pop_batch(self.batch_size)
        if not batch:
            self._busy = False
            self.queue.on_enqueue = self._on_enqueue
            return
        self.batches += 1
        sim = self.sim
        now = sim._now
        # Charge the fixed batch overhead first (descriptor handling).
        if self.batch_overhead > 0:
            self.vcpu.execute(now, self.batch_overhead)
        last_finish = now
        tracing = self.tracer.enabled
        chain_process = self.chain.process
        vcpu_execute = self.vcpu.execute
        sink = self.sink
        drop_sink = self.drop_sink
        st = self.service_time
        if not tracing and self.degrade == 1.0:
            # Fast path: completions are pushed straight into the event
            # scheduler.  Nothing inside this loop schedules, so the cached
            # sequence counter stays exact and every push allocates the
            # same (time, key) a call_at would have.  The vCPU charge is
            # inlined for the stall-free case (the same arithmetic as
            # VCpu.execute's fast branch); any slice that could touch a
            # stall window syncs state back and takes the full call.
            push = sim._push
            seq = sim._seq
            vcpu = self.vcpu
            free_at = vcpu._free_at
            s_start = vcpu._stall_start
            s_end = vcpu._stall_end
            bt = vcpu.busy_time
            nex = vcpu.executions
            chain = self.chain
            procs = chain._procs
            nproc = chain.processed
            for pkt in batch:
                # Inlined Chain.process (same accumulation order).
                nproc += 1
                cost = 0.0
                for proc in procs:
                    cost += proc(pkt, now)
                    if pkt.dropped is not None:
                        chain.dropped += 1
                        break
                st += cost
                start = now if now > free_at else free_at
                if s_end > start and s_start > start and cost <= s_start - start:
                    free_at = finish = start + cost
                    bt += cost
                    nex += 1
                else:
                    vcpu._free_at = free_at
                    vcpu.busy_time = bt
                    vcpu.executions = nex
                    start, finish = vcpu_execute(now, cost)
                    free_at = vcpu._free_at
                    s_start = vcpu._stall_start
                    s_end = vcpu._stall_end
                    bt = vcpu.busy_time
                    nex = vcpu.executions
                pkt.t_deq = start
                last_finish = finish
                if pkt.dropped is None:
                    seq += 1
                    push((finish, _NORMAL_KEY | seq, sink, (pkt,)))
                elif drop_sink is not None:
                    seq += 1
                    push((finish, _NORMAL_KEY | seq, drop_sink, (pkt,)))
            vcpu._free_at = free_at
            vcpu.busy_time = bt
            vcpu.executions = nex
            chain.processed = nproc
            # Loop: look for the next batch once this one's work is done.
            seq += 1
            push((last_finish, _NORMAL_KEY | seq, self._serve_batch, ()))
            sim._seq = seq
        else:
            degrade = self.degrade
            call_at = sim.call_at
            tracer_record = self.tracer.record
            track = self.track
            for pkt in batch:
                cost = chain_process(pkt, now)
                if degrade != 1.0:
                    cost *= degrade
                st += cost
                start, finish = vcpu_execute(now, cost)
                pkt.t_deq = start
                last_finish = finish
                if tracing:
                    # The three poller stages partition t_enq -> finish:
                    # wait in queue, stall before service (batch overhead +
                    # serialization behind batchmates + vCPU jitter), then
                    # service itself (mid-service stalls included).
                    tracer_record(now, "vswitch_queue", pkt.pid,
                                  now - pkt.t_enq, track)
                    tracer_record(start, "sched_stall", pkt.pid,
                                  start - now, track)
                    tracer_record(finish, "nf_service", pkt.pid,
                                  finish - start, track)
                if pkt.dropped is not None:
                    if drop_sink is not None:
                        call_at(finish, drop_sink, pkt)
                else:
                    call_at(finish, sink, pkt)
            # Loop: look for the next batch once this one's work is done.
            call_at(last_finish, self._serve_batch)
        self.service_time = st
        self.served += len(batch)

    def stats(self) -> dict:
        """Snapshot of service counters."""
        return {
            "served": self.served,
            "batches": self.batches,
            "service_time": self.service_time,
            "mean_batch": self.served / self.batches if self.batches else float("nan"),
        }
