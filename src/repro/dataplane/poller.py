"""Batch service loop (DPDK PMD / vhost worker).

The poller drains its :class:`~repro.dataplane.queues.PathQueue` in
batches: it dequeues up to ``batch_size`` packets, charges a fixed batch
overhead plus each packet's chain cost to its :class:`VCpu`, and emits
per-packet completions at each packet's individual finish time.  When the
queue empties the poller idles; a fresh enqueue wakes it after
``wakeup_latency`` (the vhost-kick / eventfd cost -- zero for a spinning
PMD core).

Completions go to ``sink(packet)``; packets the chain drops go to
``drop_sink(packet)`` if provided (CPU cost is charged either way, as in
real datapaths).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataplane.queues import PathQueue
from repro.dataplane.vcpu import VCpu
from repro.elements.base import Chain
from repro.net.packet import Packet
from repro.obs.span import NullTracer
from repro.sim.engine import Simulator


class Poller:
    """Serves one queue with one chain on one vCPU."""

    __slots__ = (
        "sim",
        "name",
        "queue",
        "vcpu",
        "chain",
        "sink",
        "drop_sink",
        "batch_size",
        "batch_overhead",
        "wakeup_latency",
        "_busy",
        "frozen",
        "degrade",
        "served",
        "batches",
        "service_time",
        "tracer",
        "track",
    )

    def __init__(
        self,
        sim: Simulator,
        queue: PathQueue,
        vcpu: VCpu,
        chain: Chain,
        sink: Callable[[Packet], None],
        name: str = "poller",
        batch_size: int = 32,
        batch_overhead: float = 0.25,
        wakeup_latency: float = 0.0,
        drop_sink: Optional[Callable[[Packet], None]] = None,
        tracer=NullTracer,
        track: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_overhead < 0 or wakeup_latency < 0:
            raise ValueError("overheads must be >= 0")
        self.sim = sim
        self.name = name
        self.queue = queue
        self.vcpu = vcpu
        self.chain = chain
        self.sink = sink
        self.drop_sink = drop_sink
        self.batch_size = batch_size
        self.batch_overhead = batch_overhead
        self.wakeup_latency = wakeup_latency
        self._busy = False
        #: Fault-injection state: a frozen poller serves nothing until
        #: unfrozen (crash/hang); ``degrade`` multiplies chain costs.
        self.frozen = False
        self.degrade = 1.0
        self.served = 0
        self.batches = 0
        #: Sum of chain service costs charged (µs), for T2 accounting.
        self.service_time = 0.0
        #: Span tracer (observability) and the track id (path id) its
        #: spans are attributed to.
        self.tracer = tracer
        self.track = track
        queue.on_enqueue = self._on_enqueue

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a batch is in service."""
        return self._busy

    def freeze(self) -> None:
        """Stop serving (fault injection); in-flight batch work completes."""
        self.frozen = True

    def unfreeze(self) -> None:
        """Resume serving; kicks the loop if backlog accumulated."""
        self.frozen = False
        if not self._busy and len(self.queue) > 0:
            self._busy = True
            self.sim.call_in(0.0, self._serve_batch, priority=2)

    def _on_enqueue(self) -> None:
        if self._busy or self.frozen:
            return
        self._busy = True
        if self.wakeup_latency > 0:
            self.sim.call_in(self.wakeup_latency, self._serve_batch)
        else:
            # Still defer by one event so that a burst arriving at the
            # same timestamp is served as one batch, not N singletons.
            self.sim.call_in(0.0, self._serve_batch, priority=2)

    def _serve_batch(self) -> None:
        if self.frozen:
            self._busy = False
            return
        batch = self.queue.pop_batch(self.batch_size)
        if not batch:
            self._busy = False
            return
        self.batches += 1
        now = self.sim.now
        # Charge the fixed batch overhead first (descriptor handling).
        if self.batch_overhead > 0:
            self.vcpu.execute(now, self.batch_overhead)
        last_finish = now
        tracing = self.tracer.enabled
        for pkt in batch:
            cost = self.chain.process(pkt, now)
            if self.degrade != 1.0:
                cost *= self.degrade
            self.service_time += cost
            start, finish = self.vcpu.execute(now, cost)
            pkt.t_deq = start
            last_finish = finish
            self.served += 1
            if tracing:
                # The three poller stages partition t_enq -> finish:
                # wait in queue, stall before service (batch overhead +
                # serialization behind batchmates + vCPU jitter), then
                # service itself (mid-service stalls included).
                self.tracer.record(now, "vswitch_queue", pkt.pid,
                                   now - pkt.t_enq, self.track)
                self.tracer.record(start, "sched_stall", pkt.pid,
                                   start - now, self.track)
                self.tracer.record(finish, "nf_service", pkt.pid,
                                   finish - start, self.track)
            if pkt.dropped is not None:
                if self.drop_sink is not None:
                    self.sim.call_at(finish, self.drop_sink, pkt)
            else:
                self.sim.call_at(finish, self.sink, pkt)
        # Loop: look for the next batch once this one's work is done.
        self.sim.call_at(last_finish, self._serve_batch)

    def stats(self) -> dict:
        """Snapshot of service counters."""
        return {
            "served": self.served,
            "batches": self.batches,
            "service_time": self.service_time,
            "mean_batch": self.served / self.batches if self.batches else float("nan"),
        }
