"""Physical NIC model: rx ring, rx processing cost, RSS hashing.

The NIC is rarely the latency bottleneck of the last mile -- its job in
this model is (a) to stamp ``t_nic`` (arrival at the host boundary), (b)
to impose a bounded rx ring so extreme overload produces realistic
hardware drops instead of infinite queues, and (c) to provide the RSS
hash used by hardware-steering configurations.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from repro.net.packet import FiveTuple, Packet
from repro.obs.span import NullTracer
from repro.sim.engine import NORMAL, _SEQ_BITS, Simulator

#: Packed ordering key base for NORMAL-priority heap entries; the rx path
#: pushes its (per-packet) completion events directly.
_NORMAL_KEY = NORMAL << _SEQ_BITS


def rss_hash(ftuple: FiveTuple, n_buckets: int) -> int:
    """Deterministic receive-side-scaling hash of a five-tuple.

    A Toeplitz hash stand-in: Python's tuple hash mixed with a golden
    constant -- what matters for the model is determinism per flow and
    uniformity across flows, both of which hold.
    """
    h = hash(ftuple) * 0x9E3779B97F4A7C15
    return (h >> 17) % n_buckets


class PhysicalNic:
    """Receive-side NIC with a bounded rx ring.

    Packets arriving from the wire enter the ring (drop on overflow) and
    are passed to ``dispatch`` after ``rx_cost`` µs of serialized rx
    processing (DMA completion + descriptor handling).  With the default
    0.05 µs the NIC sustains 20 Mpps -- deliberately far above the
    software paths it feeds.

    Parameters
    ----------
    dispatch:
        Callable receiving each packet after rx processing (normally the
        multipath dispatcher's ingress).
    """

    __slots__ = (
        "sim",
        "name",
        "dispatch",
        "ring_size",
        "rx_cost",
        "_ring",
        "_busy",
        "received",
        "dropped",
        "_fault_until",
        "_fault_prob",
        "_fault_rng",
        "fault_dropped",
        "tracer",
    )

    def __init__(
        self,
        sim: Simulator,
        dispatch: Callable[[Packet], None],
        name: str = "nic0",
        ring_size: int = 4096,
        rx_cost: float = 0.05,
    ) -> None:
        if ring_size <= 0:
            raise ValueError(f"ring_size must be positive, got {ring_size}")
        if rx_cost < 0:
            raise ValueError(f"rx_cost must be >= 0, got {rx_cost}")
        self.sim = sim
        self.name = name
        self.dispatch = dispatch
        self.ring_size = ring_size
        self.rx_cost = rx_cost
        self._ring: Deque[Packet] = deque()
        self._busy = False
        self.received = 0
        self.dropped = 0
        # Fault injection: while now < _fault_until, arrivals are dropped
        # with probability _fault_prob (see inject_drop_burst).
        self._fault_until = -1.0
        self._fault_prob = 1.0
        self._fault_rng: Optional[np.random.Generator] = None
        self.fault_dropped = 0
        #: Span tracer (observability); NullTracer keeps the hot path at
        #: one attribute check when telemetry is off.
        self.tracer = NullTracer

    # ------------------------------------------------------------------
    def inject_drop_burst(
        self,
        until: float,
        prob: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Drop arriving packets until simulation time ``until``.

        ``prob`` < 1 drops probabilistically; the draws come from the
        injector's dedicated stream so they cannot perturb other
        components.  Passing ``until`` <= now clears an active burst.
        """
        if not 0.0 < prob <= 1.0:
            raise ValueError(f"prob must be in (0, 1], got {prob}")
        if prob < 1.0 and rng is None:
            raise ValueError("probabilistic drop burst requires an rng stream")
        self._fault_until = until
        self._fault_prob = prob
        self._fault_rng = rng

    # ------------------------------------------------------------------
    def on_wire(self, packet: Packet) -> None:
        """Packet arrives from the wire."""
        sim = self.sim
        now = sim._now
        packet.t_nic = now
        if now < self._fault_until and (
            self._fault_prob >= 1.0 or self._fault_rng.random() < self._fault_prob
        ):
            packet.dropped = f"{self.name}:drop-burst"
            self.dropped += 1
            self.fault_dropped += 1
            return
        ring = self._ring
        if len(ring) >= self.ring_size:
            packet.dropped = f"{self.name}:ring-overflow"
            self.dropped += 1
            return
        self.received += 1
        ring.append(packet)
        if not self._busy:
            self._busy = True
            sim._seq = seq = sim._seq + 1
            sim._push((now + self.rx_cost, _NORMAL_KEY | seq, self._rx_done, ()))

    __call__ = on_wire

    def _rx_done(self) -> None:
        ring = self._ring
        pkt = ring.popleft()
        if ring:
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._push((sim._now + self.rx_cost, _NORMAL_KEY | seq,
                       self._rx_done, ()))
        else:
            self._busy = False
        if self.tracer.enabled:
            now = self.sim._now
            self.tracer.record(now, "nic_ring", pkt.pid, now - pkt.t_nic)
        self.dispatch(pkt)

    @property
    def ring_occupancy(self) -> int:
        """Packets currently in the rx ring."""
        return len(self._ring)
