"""Host encapsulation boundary: packets crossing shards as envelopes.

A :class:`~repro.net.packet.Packet` is a mutable object full of local
bookkeeping (stage timestamps, path ids, pool identity) that must never
leak across a shard boundary — two worker processes do not share a
:class:`~repro.net.packet.PacketFactory`, and a pid that is unique on
one host is meaningless on another.  This module defines the wire
format between shards: a flat, schema-versioned **envelope** carrying
exactly the header fields the destination host needs to rebuild an
equivalent packet, and nothing that depends on the source host's
runtime state.

Envelopes travel over ``multiprocessing`` pipes as plain tuples (cheap
to pickle, order-stable); :func:`envelope_to_dict` produces the
JSON/schema form used by artifacts and ``repro.schemas``.

Identity remapping at decode time is deterministic and collision-free:

* ``ftuple`` becomes ``(REMOTE_BASE + src_host, REMOTE_BASE + dst_host,
  sport, dport)`` so classifiers on the destination see a distinct
  address space per source host,
* ``flow_id`` becomes ``FLOW_STRIDE * (src_host + 1) + flow_id`` so
  remote flows never collide with the destination's local flows (local
  flow ids stay well under :data:`FLOW_STRIDE`) and per-flow seq
  ordering survives the crossing intact.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..net.packet import FiveTuple, Packet, PacketFactory

#: Envelope wire-format version (bump on any field change).
ENVELOPE_VERSION = "1.0"

#: Offset added to host indices to form remote ftuple addresses.
REMOTE_BASE = 1000

#: Stride separating per-source-host remote flow-id ranges.
FLOW_STRIDE = 1_000_000

#: Positional layout of the tuple form (doc + test introspection).
ENVELOPE_FIELDS = (
    "env_seq",      # per-source-host monotonic sequence number
    "src_host",
    "dst_host",
    "flow_id",      # source-local flow id (remapped at decode)
    "seq",          # per-flow sequence number, preserved end to end
    "size",
    "priority",
    "sport",
    "dport",
    "t_created",    # source emission time (e2e latency baseline)
    "send_time",    # when the packet entered the fabric
    "arrive_time",  # send_time + fabric delay (>= send + base_latency)
    "spine",        # fabric spine the steering policy chose
    "dropped",      # True: lost in-fabric; receiver accounts, not delivers
)

#: Index of ``arrive_time`` in the tuple form (barrier-exchange sort key).
ARRIVE_IDX = ENVELOPE_FIELDS.index("arrive_time")
SRC_IDX = ENVELOPE_FIELDS.index("src_host")
DST_IDX = ENVELOPE_FIELDS.index("dst_host")
SEQ_IDX = ENVELOPE_FIELDS.index("env_seq")
DROPPED_IDX = ENVELOPE_FIELDS.index("dropped")


def encode_envelope(
    packet: Packet,
    src_host: int,
    dst_host: int,
    env_seq: int,
    send_time: float,
    arrive_time: float,
    spine: int,
    dropped: bool,
) -> Tuple:
    """Flatten a departing packet into the inter-shard tuple form."""
    ft = packet.ftuple
    return (
        env_seq,
        src_host,
        dst_host,
        packet.flow_id,
        packet.seq,
        packet.size,
        packet.priority,
        ft.sport,
        ft.dport,
        packet.t_created,
        send_time,
        arrive_time,
        spine,
        dropped,
    )


def decode_envelope(env: Tuple, factory: PacketFactory) -> Packet:
    """Rebuild a destination-local packet from an envelope.

    The packet gets a fresh pid from the *destination's* factory; flow
    and address identities are remapped per the module contract so the
    rebuilt packet can enter the destination's last-mile data plane as
    ordinary ingress.  ``t_created`` is preserved: end-to-end latency is
    measured from the original source emission.
    """
    (_env_seq, src_host, dst_host, flow_id, seq, size, priority,
     sport, dport, t_created, _send, _arrive, _spine, _dropped) = env
    ft = FiveTuple(REMOTE_BASE + src_host, REMOTE_BASE + dst_host,
                   sport, dport)
    return factory.make(
        ft, size, t_created,
        flow_id=FLOW_STRIDE * (src_host + 1) + flow_id,
        seq=seq, priority=priority,
    )


def envelope_to_dict(env: Tuple) -> Dict:
    """Schema-versioned dict form of an envelope (artifacts, debugging)."""
    d = dict(zip(ENVELOPE_FIELDS, env))
    d["schema_version"] = ENVELOPE_VERSION
    return d


def envelope_from_dict(data: Dict) -> Tuple:
    """Inverse of :func:`envelope_to_dict` (drops ``schema_version``)."""
    missing = [f for f in ENVELOPE_FIELDS if f not in data]
    if missing:
        raise ValueError(f"envelope dict missing field(s) {missing}")
    return tuple(data[f] for f in ENVELOPE_FIELDS)
