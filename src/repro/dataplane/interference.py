"""Noisy-neighbor interference injection.

Colocated tenants degrade the datapath's vCPUs by stealing their physical
cores.  :class:`NoisyNeighbor` models one neighbor as a contention factor
applied to a vCPU's jitter profile while the neighbor is active;
:class:`InterferenceSchedule` drives step changes over time (experiment
F6 sweeps intensity; the adaptive-policy demos turn a neighbor on
mid-run and watch the controller shift traffic away).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dataplane.vcpu import JitterParams, VCpu
from repro.sim.engine import Simulator


class NoisyNeighbor:
    """Applies a contention factor to a vCPU while active.

    Parameters
    ----------
    vcpu:
        Victim vCPU.
    base_params:
        The vCPU's uncontended jitter profile (restored on deactivation).
    intensity:
        Contention factor (>= 1 degrades; see
        :meth:`JitterParams.scaled`).
    """

    def __init__(
        self,
        sim: Simulator,
        vcpu: VCpu,
        base_params: JitterParams,
        intensity: float = 2.0,
    ) -> None:
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        self.sim = sim
        self.vcpu = vcpu
        self.base_params = base_params
        self.intensity = intensity
        self.active = False
        self.activations = 0

    def activate(self) -> None:
        """Start interfering (idempotent)."""
        if self.active:
            return
        self.active = True
        self.activations += 1
        self.vcpu.set_params(self.base_params.scaled(self.intensity), self.sim.now)

    def deactivate(self) -> None:
        """Stop interfering and restore the base profile (idempotent)."""
        if not self.active:
            return
        self.active = False
        self.vcpu.set_params(self.base_params, self.sim.now)

    def schedule_burst(self, start: float, duration: float) -> None:
        """Arrange one activation window [start, start+duration) µs."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.sim.call_at(start, self.activate)
        self.sim.call_at(start + duration, self.deactivate)


@dataclass(frozen=True)
class InterferencePhase:
    """One step of an interference schedule."""

    start: float
    intensity: float


class InterferenceSchedule:
    """Step-wise interference program applied to a set of vCPUs.

    Example: ramp contention on path 0's core at t=50ms::

        sched = InterferenceSchedule(sim, [path0.vcpu], SHARED_CORE)
        sched.add_phase(50_000.0, 4.0)
        sched.install()
    """

    def __init__(
        self,
        sim: Simulator,
        vcpus: Sequence[VCpu],
        base_params: JitterParams,
    ) -> None:
        self.sim = sim
        self.vcpus = list(vcpus)
        self.base_params = base_params
        self.phases: List[InterferencePhase] = []
        self._installed = False

    def add_phase(self, start: float, intensity: float) -> "InterferenceSchedule":
        """Append a step: from ``start`` onward, contention ``intensity``."""
        if self.phases and start <= self.phases[-1].start:
            raise ValueError("phases must have strictly increasing start times")
        self.phases.append(InterferencePhase(start, intensity))
        return self

    def install(self) -> None:
        """Schedule all phase transitions (call once before running)."""
        if self._installed:
            raise RuntimeError("schedule already installed")
        self._installed = True
        for phase in self.phases:
            self.sim.call_at(phase.start, self._apply, phase.intensity)

    def _apply(self, intensity: float) -> None:
        params = self.base_params.scaled(intensity) if intensity > 0 else JitterParams()
        for vcpu in self.vcpus:
            vcpu.set_params(params, self.sim.now)
