"""Multi-class queue disciplines for path queues.

Real virtual switches separate latency-critical RPCs from bulk transfer
with per-port queue disciplines.  Two drop-in alternatives to the FIFO
:class:`~repro.dataplane.queues.PathQueue` (same surface: ``push`` /
``pop`` / ``pop_batch`` / ``head_wait`` / counters), classifying packets
by ``packet.priority`` (higher = more urgent):

* :class:`PriorityPathQueue` -- strict priority: always serve the
  highest non-empty class; starves bulk under overload (by design).
* :class:`DrrPathQueue` -- deficit round robin: byte-fair service
  between classes with configurable quanta; no starvation.

Both enforce one shared packet-capacity bound with drop-from-lowest-
priority on overflow (a full queue evicts bulk before dropping urgent
traffic).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from repro.net.packet import Packet
from repro.sim.engine import Simulator


class _ClassedQueueBase:
    """Shared machinery: per-class deques, capacity, counters, hooks."""

    __slots__ = (
        "sim",
        "name",
        "capacity_pkts",
        "n_classes",
        "on_enqueue",
        "_classes",
        "_bytes",
        "_len",
        "enqueued",
        "dropped",
        "dropped_bytes",
        "evicted",
        "peak_occupancy",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity_pkts: int,
        n_classes: int,
    ) -> None:
        if capacity_pkts <= 0:
            raise ValueError(f"capacity_pkts must be positive, got {capacity_pkts}")
        if n_classes <= 0:
            raise ValueError(f"n_classes must be positive, got {n_classes}")
        self.sim = sim
        self.name = name
        self.capacity_pkts = capacity_pkts
        self.n_classes = n_classes
        self.on_enqueue: Optional[Callable[[], None]] = None
        self._classes: List[Deque[Packet]] = [deque() for _ in range(n_classes)]
        self._bytes = 0
        self._len = 0
        self.enqueued = 0
        self.dropped = 0
        self.dropped_bytes = 0
        #: Lower-priority packets evicted to make room for urgent ones.
        self.evicted = 0
        self.peak_occupancy = 0

    # -- classification ------------------------------------------------
    def _class_of(self, packet: Packet) -> int:
        """Map priority to class index (clamped); class 0 = lowest."""
        p = packet.priority
        if p < 0:
            return 0
        return min(p, self.n_classes - 1)

    # -- push with eviction ---------------------------------------------
    def push(self, packet: Packet) -> bool:
        cls = self._class_of(packet)
        if self._len >= self.capacity_pkts:
            # Try to evict one packet of a strictly lower class.
            victim_cls = next(
                (c for c in range(cls) if self._classes[c]), None
            )
            if victim_cls is None:
                packet.dropped = f"{self.name}:overflow"
                self.dropped += 1
                self.dropped_bytes += packet.size
                return False
            victim = self._classes[victim_cls].pop()  # newest of that class
            victim.dropped = f"{self.name}:evicted"
            self.evicted += 1
            self.dropped += 1
            self.dropped_bytes += victim.size
            self._bytes -= victim.size
            self._len -= 1
        packet.t_enq = self.sim.now
        self._classes[cls].append(packet)
        self._bytes += packet.size
        self._len += 1
        self.enqueued += 1
        if self._len > self.peak_occupancy:
            self.peak_occupancy = self._len
        if self.on_enqueue is not None:
            self.on_enqueue()
        return True

    # -- common accessors -------------------------------------------------
    def __len__(self) -> int:
        return self._len

    @property
    def bytes(self) -> int:
        return self._bytes

    @property
    def empty(self) -> bool:
        return self._len == 0

    def head_wait(self, now: float) -> float:
        """Age of the oldest packet across all classes (0 if empty)."""
        oldest = None
        for q in self._classes:
            if q:
                t = q[0].t_enq
                if oldest is None or t < oldest:
                    oldest = t
        return 0.0 if oldest is None else now - oldest

    def class_depth(self, cls: int) -> int:
        """Packets queued in one class."""
        return len(self._classes[cls])

    def pop_batch(self, max_n: int) -> List[Packet]:
        out = []
        for _ in range(min(max_n, self._len)):
            out.append(self.pop())
        return out

    def audit(self) -> Optional[str]:
        """Recompute length/byte counters from per-class contents;
        returns a message on mismatch, None when the books balance.

        O(occupancy) -- called by the ``repro.check`` conservation
        sampler, never by the data plane itself.
        """
        n = 0
        total = 0
        for q in self._classes:
            n += len(q)
            for p in q:
                total += p.size
        if n != self._len:
            return f"{self.name}: length counter {self._len} != contents {n}"
        if total != self._bytes:
            return (
                f"{self.name}: byte counter {self._bytes} != contents "
                f"{total}"
            )
        if self._len > self.capacity_pkts:
            return (
                f"{self.name}: occupancy {self._len} exceeds capacity "
                f"{self.capacity_pkts}"
            )
        return None

    def pop(self) -> Packet:  # pragma: no cover - abstract
        raise NotImplementedError


class PriorityPathQueue(_ClassedQueueBase):
    """Strict-priority discipline: highest non-empty class first."""

    __slots__ = ()

    def __init__(
        self,
        sim: Simulator,
        name: str = "prioq",
        capacity_pkts: int = 1024,
        n_classes: int = 2,
    ) -> None:
        super().__init__(sim, name, capacity_pkts, n_classes)

    def pop(self) -> Packet:
        for cls in range(self.n_classes - 1, -1, -1):
            q = self._classes[cls]
            if q:
                pkt = q.popleft()
                self._bytes -= pkt.size
                self._len -= 1
                return pkt
        raise IndexError("pop from empty queue")


class DrrPathQueue(_ClassedQueueBase):
    """Deficit round robin: byte-fair between classes.

    Each class owns a quantum (bytes) credited once per round; a class
    serves packets while its deficit covers the head's size.  Weights
    are expressed through per-class quanta.
    """

    __slots__ = ("quanta", "_deficits", "_round_robin", "_credited")

    def __init__(
        self,
        sim: Simulator,
        name: str = "drrq",
        capacity_pkts: int = 1024,
        quanta: Sequence[int] = (1554, 1554),
    ) -> None:
        super().__init__(sim, name, capacity_pkts, len(quanta))
        if any(q <= 0 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = list(quanta)
        self._deficits = [0.0] * len(quanta)
        self._round_robin = 0
        # Whether the class under the round-robin pointer has already
        # received its quantum for the current visit.
        self._credited = False

    def pop(self) -> Packet:
        if self._len == 0:
            raise IndexError("pop from empty queue")
        # Classic DRR: on visiting a backlogged class, credit its quantum
        # exactly once, serve packets while the deficit covers the head,
        # then advance the pointer (deficit carries while backlogged).
        while True:
            cls = self._round_robin
            q = self._classes[cls]
            if q:
                if not self._credited:
                    self._deficits[cls] += self.quanta[cls]
                    self._credited = True
                head = q[0]
                if self._deficits[cls] >= head.size:
                    self._deficits[cls] -= head.size
                    q.popleft()
                    self._bytes -= head.size
                    self._len -= 1
                    return head
            else:
                # Idle classes neither keep nor accumulate credit.
                self._deficits[cls] = 0.0
            self._round_robin = (cls + 1) % self.n_classes
            self._credited = False
