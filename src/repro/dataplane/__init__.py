"""The virtualized-host data-plane substrate ("the last mile").

This package models the intra-host path a packet takes through a
virtualized network stack, component by component:

* :class:`~repro.dataplane.nic.PhysicalNic` -- rx ring with bounded
  occupancy, per-packet rx cost, RSS hashing helper;
* :class:`~repro.dataplane.queues.PathQueue` -- the bounded vSwitch/vhost
  queue feeding one datapath instance (drop-tail, byte/packet limits);
* :class:`~repro.dataplane.vcpu.VCpu` -- a serial CPU resource subject to
  *scheduling jitter*: alternating run/stall periods modelling vCPU or
  vhost-thread descheduling, the dominant last-mile tail source;
* :class:`~repro.dataplane.poller.Poller` -- DPDK-style batch service
  loop executing an NF chain per packet on a VCpu;
* :class:`~repro.dataplane.vswitch.FlowCache` -- two-tier vSwitch lookup
  (exact-match cache over a slower megaflow path) as a chain element;
* :class:`~repro.dataplane.path.DataPath` -- queue + poller + vCPU +
  chain replica wired together: the unit the multipath layer replicates;
* :class:`~repro.dataplane.interference.NoisyNeighbor` -- background
  contention that degrades a VCpu's jitter profile over time;
* :class:`~repro.dataplane.sink.DeliverySink` -- terminal measurement
  point (latency, throughput, FCT).
"""

from repro.dataplane.queues import PathQueue
from repro.dataplane.vcpu import VCpu, JitterParams, DEDICATED_CORE, SHARED_CORE, CONTENDED_CORE
from repro.dataplane.nic import PhysicalNic, rss_hash
from repro.dataplane.vswitch import FlowCache
from repro.dataplane.poller import Poller
from repro.dataplane.path import DataPath
from repro.dataplane.interference import NoisyNeighbor, InterferenceSchedule
from repro.dataplane.sink import DeliverySink

__all__ = [
    "PathQueue",
    "VCpu",
    "JitterParams",
    "DEDICATED_CORE",
    "SHARED_CORE",
    "CONTENDED_CORE",
    "PhysicalNic",
    "rss_hash",
    "FlowCache",
    "Poller",
    "DataPath",
    "NoisyNeighbor",
    "InterferenceSchedule",
    "DeliverySink",
]
