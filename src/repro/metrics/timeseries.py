"""Windowed time-series measurement.

The interference experiments need *when*, not just *how much*: p99 per
25 ms window as a neighbor arrives and departs.  :class:`TimeSeries`
buckets scalar observations into fixed windows and reports per-window
summaries without retaining unbounded samples (each window keeps a
bounded reservoir).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.stats import ReservoirSampler


class TimeSeries:
    """Scalar observations bucketed into fixed time windows.

    Parameters
    ----------
    window:
        Window length (µs).
    reservoir_per_window:
        Max samples retained per window (uniform reservoir beyond that).
    """

    __slots__ = ("window", "reservoir_cap", "_windows", "_seed")

    def __init__(self, window: float = 25_000.0, reservoir_per_window: int = 20_000,
                 seed: int = 0xBEEF) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if reservoir_per_window <= 0:
            raise ValueError("reservoir_per_window must be positive")
        self.window = window
        self.reservoir_cap = reservoir_per_window
        self._windows: Dict[int, ReservoirSampler] = {}
        self._seed = seed

    def record(self, now: float, value: float) -> None:
        """Add one observation at simulation time ``now``."""
        idx = int(now / self.window)
        res = self._windows.get(idx)
        if res is None:
            res = ReservoirSampler(self.reservoir_cap, seed=self._seed + idx)
            self._windows[idx] = res
        res.add(value)

    # ------------------------------------------------------------------
    def window_indices(self) -> List[int]:
        """Indices of windows holding at least one observation."""
        return sorted(self._windows)

    def window_start(self, idx: int) -> float:
        """Start time (µs) of window ``idx``."""
        return idx * self.window

    def count(self, idx: int) -> int:
        """Observations offered to window ``idx``."""
        res = self._windows.get(idx)
        return res.count if res is not None else 0

    def percentile(self, idx: int, pct: float) -> float:
        """Exact percentile of window ``idx``'s retained samples."""
        res = self._windows.get(idx)
        if res is None or res.count == 0:
            return float("nan")
        return float(res.percentile(pct))

    def mean(self, idx: int) -> float:
        res = self._windows.get(idx)
        if res is None or res.count == 0:
            return float("nan")
        return float(res.values().mean())

    def series(self, pct: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(window_start_times, percentile_values)`` over all windows."""
        idxs = self.window_indices()
        times = np.array([self.window_start(i) for i in idxs])
        vals = np.array([self.percentile(i, pct) for i in idxs])
        return times, vals

    def peak_window(self, pct: float) -> Optional[int]:
        """Index of the window with the highest ``pct`` percentile."""
        idxs = self.window_indices()
        if not idxs:
            return None
        return max(idxs, key=lambda i: self.percentile(i, pct))

    def __len__(self) -> int:
        return len(self._windows)
