"""Availability accounting for fault-injection runs.

The :class:`AvailabilityTracker` receives two event streams and joins
them per path:

* *ground truth* from the :class:`~repro.faults.injector.FaultInjector`
  (fault armed / cleared, with kind), and
* *observed recovery* from the :class:`~repro.core.controller.PathController`
  (ejected / reinstated).

From the join it derives the quantities the F10/F11 experiments report:

* **detection lag** -- fault armed -> path ejected;
* **recovery time** -- fault cleared -> path reinstated;
* **per-path downtime / uptime fraction** over the measured horizon.

Packet-level loss-vs-reroute accounting stays at the data plane (drop
counters, ``PathController.rerouted``); the scenario runner merges both
views into one availability report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import math


@dataclass
class FaultWindow:
    """One fault's lifecycle on one target (times in µs, nan = never)."""

    target: object  # path id or "nic"
    kind: str
    t_armed: float
    t_cleared: float = float("nan")
    t_ejected: float = float("nan")
    t_reinstated: float = float("nan")

    @property
    def detection_lag(self) -> float:
        """Fault onset -> ejection (nan if never detected)."""
        return self.t_ejected - self.t_armed

    @property
    def recovery_time(self) -> float:
        """Fault clear -> reinstatement (nan if either never happened)."""
        return self.t_reinstated - self.t_cleared


class AvailabilityTracker:
    """Joins injected-fault ground truth with controller recovery events."""

    def __init__(self) -> None:
        self.windows: List[FaultWindow] = []
        # Open (not yet fully resolved) window per target, in lifecycle
        # order: armed -> [ejected] -> cleared -> [reinstated].
        self._open: Dict[object, FaultWindow] = {}
        #: Ejections with no armed fault on record (detector false trips
        #: or organic deaths); counted, not joined.
        self.unmatched_ejections = 0

    # -- injector side --------------------------------------------------
    def on_fault_start(self, target, kind: str, now: float) -> None:
        w = FaultWindow(target=target, kind=kind, t_armed=now)
        self.windows.append(w)
        self._open[target] = w

    def on_fault_clear(self, target, now: float) -> None:
        w = self._open.get(target)
        if w is not None and math.isnan(w.t_cleared):
            w.t_cleared = now

    # -- controller side ------------------------------------------------
    def on_eject(self, path_id: int, now: float) -> None:
        w = self._open.get(path_id)
        if w is None:
            self.unmatched_ejections += 1
            return
        if math.isnan(w.t_ejected):
            w.t_ejected = now

    def on_reinstate(self, path_id: int, now: float) -> None:
        w = self._open.get(path_id)
        if w is None:
            return
        if math.isnan(w.t_reinstated):
            w.t_reinstated = now
        # Lifecycle complete; further events on this target open anew.
        if not math.isnan(w.t_cleared):
            self._open.pop(path_id, None)

    # -- summaries ------------------------------------------------------
    def detection_lags(self) -> List[float]:
        return [w.detection_lag for w in self.windows if not math.isnan(w.detection_lag)]

    def recovery_times(self) -> List[float]:
        return [w.recovery_time for w in self.windows if not math.isnan(w.recovery_time)]

    def downtime(self, target, horizon: float) -> float:
        """Total faulted µs on ``target`` within ``[0, horizon]``."""
        total = 0.0
        for w in self.windows:
            if w.target != target:
                continue
            end = w.t_cleared if not math.isnan(w.t_cleared) else horizon
            total += min(end, horizon) - min(w.t_armed, horizon)
        return total

    def uptime_fraction(self, targets, horizon: float) -> float:
        """Mean non-faulted time fraction across ``targets``."""
        targets = list(targets)
        if not targets or horizon <= 0:
            return float("nan")
        down = sum(self.downtime(t, horizon) for t in targets)
        return 1.0 - down / (horizon * len(targets))

    def summary(self, horizon: Optional[float] = None, targets=()) -> Dict:
        """One-call availability report (µs; nan when nothing measured)."""
        lags, recs = self.detection_lags(), self.recovery_times()
        out = {
            "faults": len(self.windows),
            "detected": len(lags),
            "mean_detection_lag": _mean(lags),
            "max_detection_lag": max(lags) if lags else float("nan"),
            "mean_recovery_time": _mean(recs),
            "unmatched_ejections": self.unmatched_ejections,
        }
        if horizon is not None and targets:
            out["path_uptime_fraction"] = self.uptime_fraction(targets, horizon)
        return out


def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else float("nan")
