"""Measurement utilities: streaming statistics, recorders, reports.

* :mod:`~repro.metrics.stats` -- P² streaming quantile estimation,
  reservoir sampling, exact percentile summaries, CDFs;
* :mod:`~repro.metrics.collectors` -- latency recorders, throughput
  meters, EWMA trackers used by both the measurement harness and the
  multipath controller itself;
* :mod:`~repro.metrics.report` -- plain-text table/series rendering used
  by the benchmark harness to print paper-style rows.
"""

from repro.metrics.stats import (
    P2Quantile,
    QuantileSet,
    ReservoirSampler,
    LatencySummary,
    summarize,
    cdf_points,
    PERCENTILES,
)
from repro.metrics.collectors import (
    LatencyRecorder,
    ThroughputMeter,
    Ewma,
    WindowedRate,
    Counter,
)
from repro.metrics.report import Table, format_series, format_cdf
from repro.metrics.timeseries import TimeSeries
from repro.metrics.availability import AvailabilityTracker, FaultWindow

__all__ = [
    "P2Quantile",
    "QuantileSet",
    "ReservoirSampler",
    "LatencySummary",
    "summarize",
    "cdf_points",
    "PERCENTILES",
    "LatencyRecorder",
    "ThroughputMeter",
    "Ewma",
    "WindowedRate",
    "Counter",
    "Table",
    "format_series",
    "format_cdf",
    "TimeSeries",
    "AvailabilityTracker",
    "FaultWindow",
]
