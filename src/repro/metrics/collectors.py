"""Online collectors attached to simulation components.

:class:`LatencyRecorder` is the standard sink-side measurement object: it
keeps streaming P² percentiles, a bounded reservoir for exact offline
percentiles, and (optionally) the full sample for tests.  :class:`Ewma`
and :class:`WindowedRate` are also used *inside* the multipath controller
(path-state monitoring), so they live here rather than in the bench code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.stats import (
    LatencySummary,
    P2Quantile,
    ReservoirSampler,
    summarize,
)


class Counter:
    """Named monotonically increasing counters.

    Labels are a naming convenience: ``inc("drops", path=3)`` counts
    under the key ``drops{path=3}``.  Label keys are sorted into the
    name, so the same label set always maps to the same counter
    whatever keyword order the caller used.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, by: int = 1, **labels) -> None:
        if labels:
            name = self.labeled(name, **labels)
        self._counts[name] = self._counts.get(name, 0) + by

    @staticmethod
    def labeled(name: str, **labels) -> str:
        """The key ``inc(name, **labels)`` counts under."""
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def get(self, name: str, **labels) -> int:
        if labels:
            name = self.labeled(name, **labels)
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counts with sorted keys, so JSON artifacts are byte-stable."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self._counts}>"


class Ewma:
    """Exponentially weighted moving average.

    ``alpha`` is the weight of the *new* observation; small alpha = long
    memory.  ``value`` is nan until the first observation.
    """

    __slots__ = ("alpha", "_value", "_empty")

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = float("nan")
        self._empty = True

    def add(self, x: float) -> float:
        """Fold in one observation; returns the updated average."""
        if self._empty:
            self._empty = False
            self._value = x
        else:
            self._value += self.alpha * (x - self._value)
        return self._value

    def add_many(self, xs) -> float:
        """Fold in observations in order; same arithmetic as repeated
        :meth:`add` (hence bit-identical), one call instead of many."""
        i = 0
        if self._empty:
            if not len(xs):
                return self._value
            self._empty = False
            self._value = xs[0]
            i = 1
        v = self._value
        alpha = self.alpha
        for x in xs[i:] if i else xs:
            v += alpha * (x - v)
        self._value = v
        return v

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._empty = True
        self._value = float("nan")


class WindowedRate:
    """Event rate over a sliding time window (events per µs).

    Used by throughput meters and by the controller to estimate per-path
    arrival rates.  O(1) per event amortized: buckets of ``window/8``.
    """

    __slots__ = ("window", "_bucket_len", "_buckets", "_bucket_start",
                 "_bucket_end", "_current")

    N_BUCKETS = 8

    def __init__(self, window: float = 1000.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._bucket_len = window / self.N_BUCKETS
        self._buckets: List[float] = [0.0] * self.N_BUCKETS
        self._bucket_start = 0.0
        # Cached end of the current bucket (== _bucket_start +
        # _bucket_len always) so add() can skip _advance's arithmetic.
        self._bucket_end = self._bucket_len
        self._current = 0

    def add(self, now: float, weight: float = 1.0) -> None:
        """Record one event of ``weight`` (e.g. bytes) at time ``now``."""
        if now >= self._bucket_end:
            self._advance(now)
        self._buckets[self._current] += weight

    def rate(self, now: float) -> float:
        """Weighted events per µs over the trailing window."""
        if now >= self._bucket_end:
            self._advance(now)
        return sum(self._buckets) / self.window

    def _advance(self, now: float) -> None:
        # Rotate buckets until the current one covers `now`.
        steps = int((now - self._bucket_start) / self._bucket_len)
        if steps >= self.N_BUCKETS:
            self._buckets = [0.0] * self.N_BUCKETS
            self._current = 0
            self._bucket_start = now
        else:
            for _ in range(steps):
                self._current = (self._current + 1) % self.N_BUCKETS
                self._buckets[self._current] = 0.0
                self._bucket_start += self._bucket_len
        self._bucket_end = self._bucket_start + self._bucket_len


class LatencyRecorder:
    """Sink-side latency measurement.

    Parameters
    ----------
    keep_all:
        Retain every sample in a Python list (tests / small runs only).
    reservoir:
        Reservoir capacity for exact offline percentiles (0 disables).
    quantiles:
        Quantiles tracked with streaming P² estimators.
    warmup:
        Samples observed before this simulation time are discarded
        (standard steady-state measurement practice).
    """

    __slots__ = (
        "keep_all",
        "warmup",
        "samples",
        "reservoir",
        "p2",
        "count",
        "dropped_warmup",
        "_sum",
        "_max",
        "_pending",
    )

    def __init__(
        self,
        keep_all: bool = False,
        reservoir: int = 100_000,
        quantiles=(0.5, 0.99, 0.999),
        warmup: float = 0.0,
        seed: int = 0xFACE,
    ) -> None:
        self.keep_all = keep_all
        self.warmup = warmup
        self.samples: List[float] = []
        self.reservoir: Optional[ReservoirSampler] = (
            ReservoirSampler(reservoir, seed=seed) if reservoir > 0 else None
        )
        self.p2: Dict[float, P2Quantile] = {q: P2Quantile(q) for q in quantiles}
        self.count = 0
        self.dropped_warmup = 0
        self._sum = 0.0
        self._max = float("-inf")
        #: Post-warmup samples not yet folded into the reservoir/P² state.
        #: record() only buffers; _flush() replays in arrival order (same
        #: draws, same float-op order), so every read-side method sees
        #: state identical to eager per-sample updates.
        self._pending: List[float] = []

    def record(self, latency: float, now: float = float("inf")) -> None:
        """Add one latency observation taken at simulation time ``now``."""
        if now < self.warmup:
            self.dropped_warmup += 1
            return
        self.count += 1
        self._sum += latency
        if latency > self._max:
            self._max = latency
        if self.keep_all:
            self.samples.append(latency)
        self._pending.append(latency)

    def _flush(self) -> None:
        """Fold buffered samples into the reservoir and P² estimators."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        if self.reservoir is not None:
            self.reservoir.add_many(pending)
        for est in self.p2.values():
            est.add_many(pending)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Streaming P² estimate for a tracked quantile."""
        self._flush()
        return self.p2[q].value

    def exact_percentile(self, pct) -> float:
        """Exact percentile from the reservoir (or full sample)."""
        if self.keep_all and self.samples:
            return float(np.percentile(np.array(self.samples), pct))
        if self.reservoir is not None:
            self._flush()
            return float(self.reservoir.percentile(pct))
        raise ValueError("recorder keeps neither full samples nor a reservoir")

    def summary(self) -> LatencySummary:
        """Exact :class:`LatencySummary` over retained samples."""
        if self.keep_all:
            return summarize(self.samples)
        if self.reservoir is not None:
            self._flush()
            return summarize(self.reservoir.values())
        raise ValueError("recorder keeps neither full samples nor a reservoir")

    def values(self) -> np.ndarray:
        """Retained sample values (full list or reservoir)."""
        if self.keep_all:
            return np.asarray(self.samples, dtype=np.float64)
        if self.reservoir is not None:
            self._flush()
            return self.reservoir.values()
        return np.empty(0)


class ThroughputMeter:
    """Counts delivered packets/bytes and computes goodput over a run."""

    __slots__ = ("packets", "bytes", "t_first", "t_last", "rate_meter")

    def __init__(self, window: float = 10_000.0) -> None:
        self.packets = 0
        self.bytes = 0
        self.t_first = float("nan")
        self.t_last = float("nan")
        self.rate_meter = WindowedRate(window)

    def record(self, size: int, now: float) -> None:
        """Record one delivered packet of ``size`` bytes at time ``now``."""
        if self.packets == 0:
            self.t_first = now
        self.packets += 1
        self.bytes += size
        self.t_last = now
        # Inlined WindowedRate.add (adding the int directly is the same
        # float result as adding float(size)).
        rm = self.rate_meter
        if now >= rm._bucket_end:
            rm._advance(now)
        rm._buckets[rm._current] += size

    @property
    def duration(self) -> float:
        """Span between first and last delivery (µs)."""
        return self.t_last - self.t_first

    def mean_pps(self) -> float:
        """Mean delivered packet rate (packets/second)."""
        d = self.duration
        return self.packets / d * 1e6 if d > 0 else float("nan")

    def mean_gbps(self) -> float:
        """Mean delivered goodput (Gbit/s)."""
        d = self.duration
        return self.bytes * 8.0 / d / 1e3 if d > 0 else float("nan")

    def instantaneous_gbps(self, now: float) -> float:
        """Goodput over the trailing window (Gbit/s)."""
        return self.rate_meter.rate(now) * 8.0 / 1e3
