"""Statistical comparison of latency samples.

Tail percentiles from a single seeded run are point estimates; claiming
"A beats B at p99" needs uncertainty.  Two tools:

* :func:`bootstrap_percentile_ci` -- percentile confidence interval for
  one sample via the basic bootstrap;
* :func:`percentile_ratio_ci` -- CI for the ratio ``pct(B)/pct(A)``
  (improvement factor) from independent samples; the reproduction's
  "who wins by what factor" statements can carry error bars.

Both operate on raw sample arrays (e.g. ``LatencyRecorder.values()``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def bootstrap_percentile_ci(
    samples: np.ndarray,
    pct: float,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """``(point, lo, hi)`` for a percentile of one sample."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return nan, nan, nan
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    point = float(np.percentile(arr, pct))
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = np.percentile(arr[idx], pct, axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


def percentile_ratio_ci(
    baseline: np.ndarray,
    candidate: np.ndarray,
    pct: float,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """``(point, lo, hi)`` for ``pct(baseline) / pct(candidate)``.

    A ratio > 1 means the candidate improves on the baseline (smaller
    percentile).  Samples must come from independent runs.
    """
    a = np.asarray(baseline, dtype=np.float64)
    b = np.asarray(candidate, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        nan = float("nan")
        return nan, nan, nan
    rng = np.random.default_rng(seed)
    point = float(np.percentile(a, pct) / np.percentile(b, pct))
    ia = rng.integers(0, a.size, size=(n_boot, a.size))
    ib = rng.integers(0, b.size, size=(n_boot, b.size))
    ratios = np.percentile(a[ia], pct, axis=1) / np.percentile(b[ib], pct, axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(ratios, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


def improvement_significant(
    baseline: np.ndarray,
    candidate: np.ndarray,
    pct: float,
    confidence: float = 0.95,
    **kw,
) -> bool:
    """True if the candidate's percentile improvement over the baseline
    is significant: the ratio CI's lower bound exceeds 1."""
    _point, lo, _hi = percentile_ratio_ci(baseline, candidate, pct,
                                          confidence=confidence, **kw)
    return lo > 1.0
