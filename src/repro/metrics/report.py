"""Plain-text rendering of paper-style tables and series.

The benchmark harness prints every reproduced table/figure as text:
tables as aligned columns, figures as ``x -> y`` series (one line per
series point).  Keeping this purely textual makes ``pytest benchmarks/``
output self-contained in CI logs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class Table:
    """Aligned monospace table builder.

    >>> t = Table(["policy", "p99"], title="T1")
    >>> t.add_row(["single", 123.4])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable) -> None:
        """Append one row; floats are rendered with adaptive precision."""
        row = []
        for v in values:
            if isinstance(v, float):
                if v != v:  # nan
                    row.append("nan")
                elif abs(v) >= 1000:
                    row.append(f"{v:,.0f}")
                elif abs(v) >= 10:
                    row.append(f"{v:.1f}")
                else:
                    row.append(f"{v:.3f}")
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as an aligned string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(
    xs: Sequence,
    ys: Sequence,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render a figure series as aligned ``x -> y`` lines."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    t = Table([x_label, y_label], title=title)
    for x, y in zip(xs, ys):
        t.add_row([x, float(y) if isinstance(y, (int, float, np.floating)) else y])
    return t.render()


def format_cdf(
    samples: Sequence[float],
    title: str = "CDF",
    points: Optional[Sequence[float]] = None,
) -> str:
    """Render key quantiles of a sample as a compact CDF readout."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return f"== {title} ==\n(no samples)"
    qs = points if points is not None else (10, 25, 50, 75, 90, 95, 99, 99.9)
    vals = np.percentile(arr, qs)
    t = Table(["pct", "value"], title=title)
    for q, v in zip(qs, vals):
        t.add_row([f"p{q:g}", float(v)])
    return t.render()


def speedup_table(
    baselines: dict,
    candidate_name: str,
    metric: str = "p99",
) -> Tuple[str, dict]:
    """Compare one candidate against several baselines on a scalar metric.

    ``baselines`` maps name -> value (smaller is better).  Returns the
    rendered table and a dict of ``name -> improvement factor`` of the
    candidate over each baseline.
    """
    if candidate_name not in baselines:
        raise KeyError(f"{candidate_name!r} missing from results")
    cand = baselines[candidate_name]
    t = Table(["system", metric, f"vs {candidate_name}"], title=f"{metric} comparison")
    factors = {}
    for name, val in baselines.items():
        factor = val / cand if cand > 0 else float("nan")
        factors[name] = factor
        t.add_row([name, float(val), f"{factor:.2f}x"])
    return t.render(), factors
