"""Statistical primitives for tail-latency measurement.

Exact percentiles over full sample arrays are fine for tests and offline
analysis, but per-packet collection in long benchmark runs must be O(1)
memory -- hence:

* :class:`P2Quantile` -- the Jain & Chlamtac (1985) P² algorithm: a
  constant-space streaming estimator of a single quantile, accurate to a
  fraction of a percent for the smooth latency distributions seen here.
  The multipath controller also uses it online for per-path p95 tracking.
* :class:`ReservoirSampler` -- uniform reservoir (algorithm R) so exact
  numpy percentiles can be computed over a bounded, unbiased sample.
* :func:`summarize` -- one-call latency summary used by every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

#: Percentiles reported by every experiment, matching the paper convention.
PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9)


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Parameters
    ----------
    q:
        Target quantile in (0, 1), e.g. ``0.99``.

    Notes
    -----
    Until five observations have arrived the estimate is the exact sample
    quantile of what has been seen.  The classic five-marker P² recurrence
    runs thereafter.
    """

    __slots__ = ("q", "n", "_init", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self.n = 0
        self._init: list = []
        self._heights: Optional[list] = None
        self._positions: Optional[list] = None
        self._desired: Optional[list] = None
        self._increments: Optional[list] = None

    def add(self, x: float) -> None:
        """Feed one observation."""
        self.n += 1
        if self._heights is not None:
            self._update(x)
            return
        self._init.append(x)
        if len(self._init) == 5:
            self._init.sort()
            self._heights = list(self._init)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            q = self.q
            self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _update(self, x: float) -> None:
        # Pure-Python marker update: at one call per observation this is
        # hot-path code.  The five-marker state is staged into scalar
        # locals and the marker-adjust loop is unrolled -- both roughly
        # halve the interpreter work versus indexed list updates, with
        # float-op order identical to the textbook recurrence.
        h = self._heights
        pos = self._positions
        h0, h1, h2, h3, h4 = h
        p1, p2, p3, p4 = pos[1], pos[2], pos[3], pos[4]
        if x < h0:
            h0 = x
            p1 += 1.0
            p2 += 1.0
            p3 += 1.0
            p4 += 1.0
        elif x >= h4:
            h4 = x
            p4 += 1.0
        elif x < h1:
            p1 += 1.0
            p2 += 1.0
            p3 += 1.0
            p4 += 1.0
        elif x < h2:
            p2 += 1.0
            p3 += 1.0
            p4 += 1.0
        elif x < h3:
            p3 += 1.0
            p4 += 1.0
        else:
            p4 += 1.0
        d = self._desired
        inc = self._increments
        d1 = d[1] + inc[1]
        d2 = d[2] + inc[2]
        d3 = d[3] + inc[3]
        d4 = d[4] + 1.0
        d[1] = d1
        d[2] = d2
        d[3] = d3
        d[4] = d4
        # Adjust the three middle markers with parabolic interpolation
        # (pos[0] is pinned at 1.0 for the life of the estimator).
        diff = d1 - p1
        if (diff >= 1.0 and p2 - p1 > 1.0) or (diff <= -1.0 and 1.0 - p1 < -1.0):
            sign = 1.0 if diff >= 1.0 else -1.0
            hp = h1 + sign / (p2 - 1.0) * (
                (p1 - 1.0 + sign) * (h2 - h1) / (p2 - p1)
                + (p2 - p1 - sign) * (h1 - h0) / (p1 - 1.0)
            )
            if h0 < hp < h2:
                h1 = hp
            elif sign > 0:
                h1 = h1 + sign * (h2 - h1) / (p2 - p1)
            else:
                h1 = h1 + sign * (h0 - h1) / (1.0 - p1)
            p1 += sign
        diff = d2 - p2
        if (diff >= 1.0 and p3 - p2 > 1.0) or (diff <= -1.0 and p1 - p2 < -1.0):
            sign = 1.0 if diff >= 1.0 else -1.0
            hp = h2 + sign / (p3 - p1) * (
                (p2 - p1 + sign) * (h3 - h2) / (p3 - p2)
                + (p3 - p2 - sign) * (h2 - h1) / (p2 - p1)
            )
            if h1 < hp < h3:
                h2 = hp
            elif sign > 0:
                h2 = h2 + sign * (h3 - h2) / (p3 - p2)
            else:
                h2 = h2 + sign * (h1 - h2) / (p1 - p2)
            p2 += sign
        diff = d3 - p3
        if (diff >= 1.0 and p4 - p3 > 1.0) or (diff <= -1.0 and p2 - p3 < -1.0):
            sign = 1.0 if diff >= 1.0 else -1.0
            hp = h3 + sign / (p4 - p2) * (
                (p3 - p2 + sign) * (h4 - h3) / (p4 - p3)
                + (p4 - p3 - sign) * (h3 - h2) / (p3 - p2)
            )
            if h2 < hp < h4:
                h3 = hp
            elif sign > 0:
                h3 = h3 + sign * (h4 - h3) / (p4 - p3)
            else:
                h3 = h3 + sign * (h2 - h3) / (p2 - p3)
            p3 += sign
        h[0] = h0
        h[1] = h1
        h[2] = h2
        h[3] = h3
        h[4] = h4
        pos[1] = p1
        pos[2] = p2
        pos[3] = p3
        pos[4] = p4

    def add_many(self, xs) -> None:
        """Feed a batch of observations (same math as repeated :meth:`add`).

        Marker state lives in scalar locals across the whole batch, which
        makes bulk replay (see ``LatencyRecorder``) much cheaper than one
        :meth:`add` call per sample.
        """
        i = 0
        n_xs = len(xs)
        while self._heights is None:
            if i >= n_xs:
                return
            self.add(xs[i])
            i += 1
        self.n += n_xs - i
        h = self._heights
        pos = self._positions
        d = self._desired
        inc = self._increments
        h0, h1, h2, h3, h4 = h
        p1, p2, p3, p4 = pos[1], pos[2], pos[3], pos[4]
        d1, d2, d3, d4 = d[1], d[2], d[3], d[4]
        i1, i2, i3 = inc[1], inc[2], inc[3]
        for x in xs[i:] if i else xs:
            if x < h0:
                h0 = x
                p1 += 1.0
                p2 += 1.0
                p3 += 1.0
                p4 += 1.0
            elif x >= h4:
                h4 = x
                p4 += 1.0
            elif x < h1:
                p1 += 1.0
                p2 += 1.0
                p3 += 1.0
                p4 += 1.0
            elif x < h2:
                p2 += 1.0
                p3 += 1.0
                p4 += 1.0
            elif x < h3:
                p3 += 1.0
                p4 += 1.0
            else:
                p4 += 1.0
            d1 += i1
            d2 += i2
            d3 += i3
            d4 += 1.0
            diff = d1 - p1
            if (diff >= 1.0 and p2 - p1 > 1.0) or (diff <= -1.0 and 1.0 - p1 < -1.0):
                sign = 1.0 if diff >= 1.0 else -1.0
                hp = h1 + sign / (p2 - 1.0) * (
                    (p1 - 1.0 + sign) * (h2 - h1) / (p2 - p1)
                    + (p2 - p1 - sign) * (h1 - h0) / (p1 - 1.0)
                )
                if h0 < hp < h2:
                    h1 = hp
                elif sign > 0:
                    h1 = h1 + sign * (h2 - h1) / (p2 - p1)
                else:
                    h1 = h1 + sign * (h0 - h1) / (1.0 - p1)
                p1 += sign
            diff = d2 - p2
            if (diff >= 1.0 and p3 - p2 > 1.0) or (diff <= -1.0 and p1 - p2 < -1.0):
                sign = 1.0 if diff >= 1.0 else -1.0
                hp = h2 + sign / (p3 - p1) * (
                    (p2 - p1 + sign) * (h3 - h2) / (p3 - p2)
                    + (p3 - p2 - sign) * (h2 - h1) / (p2 - p1)
                )
                if h1 < hp < h3:
                    h2 = hp
                elif sign > 0:
                    h2 = h2 + sign * (h3 - h2) / (p3 - p2)
                else:
                    h2 = h2 + sign * (h1 - h2) / (p1 - p2)
                p2 += sign
            diff = d3 - p3
            if (diff >= 1.0 and p4 - p3 > 1.0) or (diff <= -1.0 and p2 - p3 < -1.0):
                sign = 1.0 if diff >= 1.0 else -1.0
                hp = h3 + sign / (p4 - p2) * (
                    (p3 - p2 + sign) * (h4 - h3) / (p4 - p3)
                    + (p4 - p3 - sign) * (h3 - h2) / (p3 - p2)
                )
                if h2 < hp < h4:
                    h3 = hp
                elif sign > 0:
                    h3 = h3 + sign * (h4 - h3) / (p4 - p3)
                else:
                    h3 = h3 + sign * (h2 - h3) / (p2 - p3)
                p3 += sign
        h[0] = h0
        h[1] = h1
        h[2] = h2
        h[3] = h3
        h[4] = h4
        pos[1] = p1
        pos[2] = p2
        pos[3] = p3
        pos[4] = p4
        d[1] = d1
        d[2] = d2
        d[3] = d3
        d[4] = d4

    @property
    def value(self) -> float:
        """Current quantile estimate (nan with no data)."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._init:
            return float("nan")
        return float(np.quantile(np.array(self._init), self.q))

    def reset(self) -> None:
        """Forget all observations."""
        self.n = 0
        self._init = []
        self._heights = None


class QuantileSet:
    """A bank of :class:`P2Quantile` estimators over one stream.

    Used by the SLO tracker: each attainment window folds its buffered
    latencies into a fresh set and reads every tracked quantile at the
    window close.  ``add_many`` feeds each estimator with the identical
    batch, so values match running independent estimators sample by
    sample.
    """

    __slots__ = ("quantiles", "n")

    def __init__(self, qs: Sequence[float]) -> None:
        if not qs:
            raise ValueError("QuantileSet needs at least one quantile")
        self.quantiles: Dict[float, P2Quantile] = {
            float(q): P2Quantile(float(q)) for q in qs
        }
        self.n = 0

    def add(self, x: float) -> None:
        """Feed one observation to every estimator."""
        self.n += 1
        for est in self.quantiles.values():
            est.add(x)

    def add_many(self, xs) -> None:
        """Feed a batch to every estimator (bulk P² replay)."""
        self.n += len(xs)
        for est in self.quantiles.values():
            est.add_many(xs)

    def value(self, q: float) -> float:
        """Current estimate for quantile ``q`` (must be tracked)."""
        return self.quantiles[float(q)].value

    def values(self) -> Dict[float, float]:
        """``{q: estimate}`` for every tracked quantile."""
        return {q: est.value for q, est in self.quantiles.items()}

    def reset(self) -> None:
        """Forget all observations in every estimator."""
        self.n = 0
        for est in self.quantiles.values():
            est.reset()


class ReservoirSampler:
    """Uniform reservoir sample of a stream (algorithm R).

    Keeps at most ``capacity`` observations, each stream element equally
    likely to be retained, so exact percentiles over the reservoir are an
    unbiased estimate of stream percentiles.
    """

    __slots__ = ("capacity", "rng", "_buf", "count")

    def __init__(self, capacity: int = 100_000, seed: int = 0xC0FFEE) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rng = np.random.default_rng(seed)
        self._buf = np.empty(capacity, dtype=np.float64)
        self.count = 0

    def add(self, x: float) -> None:
        """Offer one observation to the reservoir."""
        c = self.count
        if c < self.capacity:
            self._buf[c] = x
        else:
            j = int(self.rng.integers(0, c + 1))
            if j < self.capacity:
                self._buf[j] = x
        self.count = c + 1

    def add_many(self, xs) -> None:
        """Offer a batch (same draws/state as repeated :meth:`add`)."""
        buf = self._buf
        cap = self.capacity
        c = self.count
        randint = self.rng.integers
        for x in xs:
            if c < cap:
                buf[c] = x
            else:
                j = int(randint(0, c + 1))
                if j < cap:
                    buf[j] = x
            c += 1
        self.count = c

    def values(self) -> np.ndarray:
        """Copy of the current reservoir contents."""
        return self._buf[: min(self.count, self.capacity)].copy()

    def percentile(self, q) -> np.ndarray:
        """Exact percentile(s) of the reservoir."""
        vals = self._buf[: min(self.count, self.capacity)]
        if len(vals) == 0:
            return np.full(np.shape(q), np.nan) if np.ndim(q) else float("nan")
        return np.percentile(vals, q)


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (µs)."""

    count: int
    mean: float
    std: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    max: float

    #: Stable serialization key order (all latency values in µs).
    FIELDS = ("count", "mean", "std", "p50", "p90", "p95", "p99", "p999", "max")

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly representation.

        Keys are :data:`FIELDS` in that order: ``count`` is the sample
        count; every other value is in microseconds.  Inverse of
        :meth:`from_dict`; sweep artifacts, ``benchmarks/results/*`` and
        figure code all share this one shape.
        """
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data: Dict) -> "LatencySummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        unknown = set(data) - set(cls.FIELDS)
        if unknown:
            raise ValueError(
                f"unknown LatencySummary keys {sorted(unknown)}; "
                f"expected {list(cls.FIELDS)}"
            )
        kw = {name: data[name] for name in cls.FIELDS}
        kw["count"] = int(kw["count"])
        return cls(**{k: (v if k == "count" else float(v)) for k, v in kw.items()})

    def as_row(self) -> Tuple:
        return (
            self.count,
            self.mean,
            self.p50,
            self.p90,
            self.p95,
            self.p99,
            self.p999,
            self.max,
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} p50={self.p50:.1f} "
            f"p95={self.p95:.1f} p99={self.p99:.1f} p99.9={self.p999:.1f} "
            f"max={self.max:.1f}"
        )


def summarize(samples: Iterable[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` over a sample array."""
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples,
                     dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    pcts = np.percentile(arr, PERCENTILES)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        p50=float(pcts[0]),
        p90=float(pcts[1]),
        p95=float(pcts[2]),
        p99=float(pcts[3]),
        p999=float(pcts[4]),
        max=float(arr.max()),
    )


def cdf_points(samples: Sequence[float], n_points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` arrays for plotting an empirical CDF.

    ``x`` holds ``n_points`` evenly spaced quantiles of the sample, which
    renders tails better than evenly spaced values.
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    qs = np.linspace(0.0, 1.0, n_points)
    x = np.quantile(arr, qs)
    return x, qs
