"""Versioned result-payload schemas.

Every JSON artifact the library emits -- ``SimulationResult.to_dict``,
``SweepResult.to_dict``, ``slo_report``, ``check_report``, the
``repro check`` fuzz/diff reports -- carries a ``schema_version`` key
(``"<major>.<minor>"``).  The major version changes only when a payload
becomes structurally incompatible (keys renamed/removed, units changed);
minor bumps are additive.

Loaders call :func:`check_version` and reject payloads whose *major*
version they do not understand, while accepting any minor.  Payloads
written before versioning existed (no ``schema_version`` key) are
accepted as-is -- the v1 schemas are strict supersets of those shapes.

:func:`validate` is the public one-call helper::

    import repro

    kind = repro.schemas.validate(json.load(fh))   # e.g. "sweep_result"
"""

from __future__ import annotations

from typing import Dict, Optional

#: Current schema version per payload kind.
SCHEMA_VERSIONS: Dict[str, str] = {
    "simulation_result": "1.0",
    "sweep_result": "1.0",
    "slo_report": "1.0",
    "check_report": "1.0",
    "fuzz_report": "1.0",
    "diff_report": "1.0",
    "forensics_report": "1.0",
    "trace_report": "1.0",
    "ledger_entry": "1.0",
    "ledger_diff": "1.0",
    "cluster_config": "1.0",
    "host_config": "1.0",
    "fabric_config": "1.0",
    "cluster_result": "1.0",
    "cluster_envelope": "1.0",
    "cluster_sweep": "1.0",
    "event_loop_bench": "1.0",
}

#: Marker keys used to infer a payload's kind (checked in order; the
#: first kind whose every marker key is present wins, so more specific
#: shapes must precede more generic ones).
_MARKERS = (
    ("cluster_result", ("hosts", "cluster", "summary")),
    ("cluster_config", ("hosts", "fabric", "pattern")),
    ("cluster_envelope", ("env_seq", "src_host", "arrive_time")),
    ("fabric_config", ("n_spines", "base_latency", "steering")),
    ("cluster_sweep", ("cells", "cluster_config")),
    ("event_loop_bench", ("models", "backends", "entries_per_op")),
    ("sweep_result", ("spec", "cells")),
    ("check_report", ("invariants", "violations")),
    ("fuzz_report", ("cases", "failures")),
    ("diff_report", ("variants", "all_identical")),
    ("slo_report", ("n_windows", "windows", "attainment")),
    ("forensics_report", ("cause_histogram", "threshold_us", "analyzed")),
    ("ledger_diff", ("base", "candidate", "metrics", "regressions")),
    ("ledger_entry", ("label", "recorded_utc", "summary", "config_sha256")),
    ("trace_report", ("stage_breakdown", "slowest")),
    ("simulation_result", ("config", "summary", "offered")),
    ("host_config", ("scenario", "name")),
)


def version_for(kind: str) -> str:
    """The current schema version string for ``kind`` (KeyError if unknown)."""
    return SCHEMA_VERSIONS[kind]


def infer_kind(obj: Dict) -> Optional[str]:
    """Best-effort payload-kind inference from marker keys (None if unknown)."""
    if not isinstance(obj, dict):
        return None
    for kind, markers in _MARKERS:
        if all(key in obj for key in markers):
            return kind
    return None


def _major(version: str) -> str:
    return str(version).split(".", 1)[0]


def check_version(data: Dict, kind: str, where: str = "") -> None:
    """Reject ``data`` if its ``schema_version`` has an unsupported major.

    Loaders (``SimulationResult.from_dict``, ``SweepResult.from_dict``,
    report consumers) call this before touching any other key.  A
    missing ``schema_version`` is accepted: pre-versioning payloads are
    compatible by construction.
    """
    found = data.get("schema_version") if isinstance(data, dict) else None
    if found is None:
        return
    supported = SCHEMA_VERSIONS[kind]
    if _major(found) != _major(supported):
        ctx = f" in {where}" if where else ""
        raise ValueError(
            f"unsupported {kind} schema_version {found!r}{ctx}; "
            f"this version of repro reads major version "
            f"{_major(supported)} (current: {supported})"
        )


def validate(obj: Dict, kind: Optional[str] = None) -> str:
    """Validate a payload's shape markers + schema version; returns its kind.

    ``kind`` may name the expected payload kind explicitly; otherwise it
    is inferred from marker keys.  Raises ``ValueError`` when the object
    is not a dict, its kind cannot be determined, it does not match the
    expected kind, or its major schema version is unsupported.
    """
    if not isinstance(obj, dict):
        raise ValueError(
            f"expected a result payload dict, got {type(obj).__name__}"
        )
    inferred = infer_kind(obj)
    if kind is None:
        kind = inferred
        if kind is None:
            raise ValueError(
                "cannot infer payload kind; known kinds: "
                + ", ".join(sorted(SCHEMA_VERSIONS))
            )
    else:
        if kind not in SCHEMA_VERSIONS:
            raise ValueError(
                f"unknown payload kind {kind!r}; known kinds: "
                + ", ".join(sorted(SCHEMA_VERSIONS))
            )
        if inferred is not None and inferred != kind:
            raise ValueError(
                f"payload looks like a {inferred!r}, not a {kind!r}"
            )
    check_version(obj, kind)
    return kind
