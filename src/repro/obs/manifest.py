"""Run manifests: provenance written next to every artifact.

A manifest answers "what exactly produced this file?": the canonical
config dict and its hash, the root seed, the code fingerprint (SHA-256
over the installed ``repro`` sources -- the same digest the sweep cache
keys on), interpreter/package versions, the platform string, and the
wall-clock timestamp.  Diffing two manifests tells you immediately
whether two artifacts are comparable.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import platform
from typing import Dict, Optional

#: Manifest schema identifier; bump on incompatible shape changes.
SCHEMA = "repro.obs.manifest/v1"

#: Per-process git-commit cache: the answer cannot change mid-run and
#: spawning ``git`` per manifest would be pure waste.  The sentinel
#: distinguishes "not asked yet" from "asked, no repo".
_UNSET = object()
_GIT_COMMIT: object = _UNSET


def git_commit() -> Optional[str]:
    """The HEAD commit hash of the repo holding the ``repro`` sources.

    ``None`` when the package is installed outside a git checkout (or
    git itself is unavailable) -- provenance then rests on the code
    fingerprint alone.
    """
    global _GIT_COMMIT
    if _GIT_COMMIT is _UNSET:
        import os
        import subprocess

        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=10,
            )
            _GIT_COMMIT = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _GIT_COMMIT = None
    return _GIT_COMMIT


def run_manifest(config: Optional[Dict] = None, seed: Optional[int] = None,
                 wall_s: Optional[float] = None,
                 extra: Optional[Dict] = None) -> Dict:
    """Build the provenance record for one run.

    ``config`` is a JSON-friendly dict (e.g. ``ScenarioConfig.to_dict``
    output); ``wall_s`` the measured wall-clock of the run, if known.
    """
    import numpy

    import repro
    from repro.sweep.cache import code_fingerprint

    config_sha = None
    if config is not None:
        canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
        config_sha = hashlib.sha256(canonical.encode()).hexdigest()
    out = {
        "schema": SCHEMA,
        "config": config,
        "config_sha256": config_sha,
        "seed": seed,
        "code_fingerprint": code_fingerprint(),
        "git_commit": git_commit(),
        "versions": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "repro": repro.__version__,
        },
        "platform": platform.platform(),
        "wall_clock_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "wall_s": wall_s,
    }
    if extra:
        out["extra"] = dict(extra)
    return out


def write_manifest(path, config: Optional[Dict] = None,
                   seed: Optional[int] = None,
                   wall_s: Optional[float] = None,
                   extra: Optional[Dict] = None,
                   manifest: Optional[Dict] = None) -> Dict:
    """Write a manifest JSON to ``path`` (building one unless given)."""
    if manifest is None:
        manifest = run_manifest(config=config, seed=seed, wall_s=wall_s,
                                extra=extra)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return manifest
