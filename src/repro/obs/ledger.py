"""The run ledger: an append-only cross-run regression record.

The ROADMAP's north-star ("fast as the hardware allows") needs a bench
*trajectory*, not isolated per-PR snapshots: the per-PR
``BENCH_*.json`` files under ``benchmarks/results/`` were never
consolidated, so "did this change regress the tail?" had no recorded
answer.  The ledger fixes that with one append-only JSONL file
(:data:`DEFAULT_LEDGER`): every entry captures what a run *was* (config
hash, seed, code fingerprint, git commit, schema version) and what it
*did* (latency summary + exact percentiles, retained latency samples
for bootstrap CIs, stage breakdown, forensics cause histogram, kernel
pps when known).

``repro ledger record`` appends an entry, ``repro ledger list`` shows
the trajectory, and ``repro ledger diff`` compares any two entries with
:func:`repro.metrics.compare.percentile_ratio_ci` bootstrap confidence
intervals -- a tail delta is flagged as a *regression* only when it
exceeds the threshold **and** the CI excludes "no change", so seeded
but sample-level noise never fails CI.  The simulated latencies are a
pure function of (config, seed, code), so on an unchanged tree a ledger
diff is exact -- that is what the CI ledger-gate relies on.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Canonical ledger location, relative to the repo root.
DEFAULT_LEDGER = os.path.join("benchmarks", "results", "LEDGER.jsonl")

#: Latency samples retained per entry: enough for stable bootstrap CIs
#: on p99.9 without bloating the JSONL (~2000 floats per entry).
MAX_SAMPLES = 2000

#: Percentiles a diff compares by default.
DIFF_PERCENTILES = (50.0, 99.0, 99.9)


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def _retained_samples(values: np.ndarray, max_samples: int) -> List[float]:
    """Deterministic downsample: evenly spaced order statistics.

    Sorting first makes the retained subset a pure function of the
    sample distribution (no RNG, no insertion-order dependence) while
    preserving the quantile structure bootstrap CIs need.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size <= max_samples:
        return [float(v) for v in arr]
    idx = np.linspace(0, arr.size - 1, max_samples).astype(int)
    return [float(v) for v in arr[idx]]


def build_entry(result, label: str, kind: str = "run",
                kernel_pps: Optional[float] = None,
                max_samples: int = MAX_SAMPLES,
                extra: Optional[Dict] = None) -> Dict:
    """Build one ledger entry from a :class:`SimulationResult`.

    ``label`` names the tracked quantity (e.g. ``"gate"``,
    ``"f1-single"``); diffs select the latest entry per label by
    default.  ``kind`` distinguishes simulation entries from recorded
    benches.  ``kernel_pps`` is wall-clock packets/s when measured --
    machine-dependent, so the CI gate records it for trend reading but
    never fails on it.
    """
    import hashlib

    from repro import schemas
    from repro.obs.manifest import git_commit
    from repro.sweep.cache import code_fingerprint

    config_dict = result.config.to_dict()
    canonical = json.dumps(config_dict, sort_keys=True,
                           separators=(",", ":"))
    entry = {
        "schema_version": schemas.version_for("ledger_entry"),
        "label": label,
        "kind": kind,
        "recorded_utc": _utc_now(),
        "git_commit": git_commit(),
        "code_fingerprint": code_fingerprint(),
        "config": config_dict,
        "config_sha256": hashlib.sha256(canonical.encode()).hexdigest(),
        "seed": result.config.seed,
        "summary": result.summary.to_dict(),
        "exact": {key: float(result.exact_percentile(pct))
                  for pct, key in result.EXACT_KEYS},
        "offered": result.offered,
        "delivered": result.stats["delivered"],
        "kernel_pps": kernel_pps,
    }
    if result.host is not None:
        entry["latency_samples"] = _retained_samples(
            result.host.sink.recorder.values(), max_samples
        )
    telemetry = result.telemetry
    if telemetry is not None and getattr(telemetry.tracer, "enabled", False):
        from repro.obs.report import stage_breakdown

        entry["stage_breakdown"] = stage_breakdown(
            telemetry.tracer, warmup=result.config.warmup
        )
    if result.forensics_report is not None:
        entry["cause_histogram"] = result.forensics_report["cause_histogram"]
        entry["forensics_threshold_us"] = \
            result.forensics_report["threshold_us"]
    if extra:
        entry["extra"] = dict(extra)
    return entry


def build_cluster_entry(result, label: str, kind: str = "cluster",
                        max_samples: int = MAX_SAMPLES,
                        extra: Optional[Dict] = None) -> Dict:
    """Build one ledger entry from a :class:`~repro.cluster.ClusterResult`.

    Same shape as :func:`build_entry` so ``ledger list``/``ledger diff``
    work unchanged; ``exact`` carries the cluster-wide merged
    percentiles (computed from per-host retained order statistics, not
    the full population -- the per-host payloads keep the exact ones)
    and ``latency_samples`` is the pooled per-host retained sample set
    the diff bootstrap resamples.
    """
    import hashlib

    from repro import schemas
    from repro.obs.manifest import git_commit
    from repro.sweep.cache import code_fingerprint

    config_dict = result.config.to_dict()
    canonical = json.dumps(config_dict, sort_keys=True,
                           separators=(",", ":"))
    pooled = [x for h in result.hosts for x in h.get("latency_samples", [])]
    s = result.summary
    entry = {
        "schema_version": schemas.version_for("ledger_entry"),
        "label": label,
        "kind": kind,
        "recorded_utc": _utc_now(),
        "git_commit": git_commit(),
        "code_fingerprint": code_fingerprint(),
        "config": config_dict,
        "config_sha256": hashlib.sha256(canonical.encode()).hexdigest(),
        "seed": result.config.seed,
        "summary": s.to_dict(),
        "exact": {"p50": s.p50, "p90": s.p90, "p95": s.p95,
                  "p99": s.p99, "p999": s.p999},
        "offered": result.cluster["offered"],
        "delivered": result.cluster["delivered"],
        "kernel_pps": None,
        "latency_samples": _retained_samples(
            np.asarray(pooled, dtype=np.float64), max_samples
        ),
        "extra": {
            "n_hosts": result.n_hosts,
            "pattern": result.cluster["pattern"],
            "envelopes_sent": result.cluster["envelopes_sent"],
            "fabric_dropped": result.cluster["fabric_dropped"],
            **(extra or {}),
        },
    }
    return entry


def append_entry(entry: Dict, path=DEFAULT_LEDGER) -> int:
    """Append one entry to the ledger; returns its index."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    index = 0
    if p.exists():
        with open(p) as fh:
            index = sum(1 for line in fh if line.strip())
    with open(p, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")
    return index


def load_ledger(path=DEFAULT_LEDGER) -> List[Dict]:
    """All ledger entries, in append (index) order."""
    from repro import schemas

    p = pathlib.Path(path)
    if not p.exists():
        return []
    out = []
    with open(p) as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            schemas.check_version(entry, "ledger_entry",
                                  where=f"{path}:{i + 1}")
            out.append(entry)
    return out


def select_entry(entries: Sequence[Dict], ref: str) -> Dict:
    """Resolve a diff reference: a numeric index, or a label (latest
    entry carrying it).  Raises ``ValueError`` with the available
    labels/indices when nothing matches."""
    if not entries:
        raise ValueError("ledger is empty; run `repro ledger record` first")
    try:
        index = int(ref)
    except ValueError:
        matches = [e for e in entries if e.get("label") == ref]
        if not matches:
            labels = sorted({e.get("label", "?") for e in entries})
            raise ValueError(
                f"no ledger entry labeled {ref!r}; labels: "
                f"{', '.join(labels)} (or an index 0..{len(entries) - 1})"
            ) from None
        return matches[-1]
    if not -len(entries) <= index < len(entries):
        raise ValueError(
            f"ledger index {index} out of range (have {len(entries)} entries)"
        )
    return entries[index]


def diff_entries(base: Dict, candidate: Dict,
                 percentiles: Sequence[float] = DIFF_PERCENTILES,
                 confidence: float = 0.95,
                 max_regress: float = 0.2) -> Dict:
    """Compare two ledger entries; returns the ``ledger_diff`` payload.

    Per percentile: both point values, the delta ratio, and -- when both
    entries retain latency samples -- a bootstrap CI on the ratio
    ``pct(base)/pct(candidate)`` (>1 means the candidate improved).  A
    percentile *regresses* when the candidate is more than
    ``max_regress`` worse (ratio of points < 1/(1+max_regress)) and the
    CI, if available, confirms a real slowdown (hi < 1).  ``ok`` is
    False iff any percentile regressed.
    """
    from repro import schemas
    from repro.metrics.compare import percentile_ratio_ci

    base_samples = base.get("latency_samples") or []
    cand_samples = candidate.get("latency_samples") or []
    key_for = {50.0: "p50", 90.0: "p90", 95.0: "p95",
               99.0: "p99", 99.9: "p999"}

    metrics: Dict[str, Dict] = {}
    regressions: List[str] = []
    for pct in percentiles:
        key = key_for.get(float(pct), f"p{pct:g}")
        b = (base.get("exact") or {}).get(key,
                                          (base.get("summary") or {}).get(key))
        c = (candidate.get("exact") or {}).get(
            key, (candidate.get("summary") or {}).get(key))
        m: Dict = {"base": b, "candidate": c}
        if b and c:
            m["ratio"] = float(b / c)  # >1: candidate faster
            m["delta_pct"] = float((c - b) / b * 100.0)
        ci = None
        if base_samples and cand_samples:
            point, lo, hi = percentile_ratio_ci(
                np.asarray(base_samples), np.asarray(cand_samples), pct,
                confidence=confidence,
            )
            ci = {"point": point, "lo": lo, "hi": hi,
                  "confidence": confidence}
            m["ratio_ci"] = ci
        regressed = False
        if b and c and c > b * (1.0 + max_regress):
            # Point estimate over threshold; require the CI (when we
            # have one) to agree the slowdown is real, not resampling
            # noise around an unchanged distribution.
            regressed = ci is None or ci["hi"] < 1.0
        m["regressed"] = regressed
        if regressed:
            regressions.append(key)
        metrics[key] = m

    # Wall-clock kernel pps is machine-dependent: report, never gate.
    kernel = None
    if base.get("kernel_pps") and candidate.get("kernel_pps"):
        kernel = {
            "base": base["kernel_pps"],
            "candidate": candidate["kernel_pps"],
            "ratio": float(candidate["kernel_pps"] / base["kernel_pps"]),
        }

    causes = None
    if base.get("cause_histogram") and candidate.get("cause_histogram"):
        causes = {
            cause: {"base": base["cause_histogram"].get(cause, 0),
                    "candidate": candidate["cause_histogram"].get(cause, 0)}
            for cause in sorted(set(base["cause_histogram"])
                                | set(candidate["cause_histogram"]))
        }

    return {
        "schema_version": schemas.version_for("ledger_diff"),
        "base": _entry_ref(base),
        "candidate": _entry_ref(candidate),
        "comparable": base.get("config_sha256")
        == candidate.get("config_sha256"),
        "max_regress": max_regress,
        "metrics": metrics,
        "kernel_pps": kernel,
        "cause_histogram": causes,
        "regressions": regressions,
        "ok": not regressions,
    }


def _entry_ref(entry: Dict) -> Dict:
    """The provenance slice of an entry a diff reproduces."""
    return {
        "label": entry.get("label"),
        "recorded_utc": entry.get("recorded_utc"),
        "git_commit": entry.get("git_commit"),
        "code_fingerprint": entry.get("code_fingerprint"),
        "config_sha256": entry.get("config_sha256"),
        "seed": entry.get("seed"),
    }


# ----------------------------------------------------------------------
# Terminal rendering (used by ``repro ledger``)
# ----------------------------------------------------------------------
def render_ledger(entries: Sequence[Dict]) -> str:
    """``repro ledger list`` table: one row per entry."""
    from repro.metrics.report import Table

    t = Table(["#", "label", "kind", "recorded (UTC)", "commit",
               "p50 (us)", "p99 (us)", "p99.9 (us)", "kernel pps"],
              title=f"run ledger ({len(entries)} entries)")
    for i, e in enumerate(entries):
        exact = e.get("exact") or {}
        summary = e.get("summary") or {}
        commit = e.get("git_commit")
        pps = e.get("kernel_pps")
        t.add_row([
            i, e.get("label", "?"), e.get("kind", "?"),
            e.get("recorded_utc", "?"),
            commit[:10] if commit else "-",
            exact.get("p50", summary.get("p50", float("nan"))),
            exact.get("p99", summary.get("p99", float("nan"))),
            exact.get("p999", summary.get("p999", float("nan"))),
            f"{pps:,.0f}" if pps else "-",
        ])
    return t.render()


def render_diff(diff: Dict) -> str:
    """``repro ledger diff`` report."""
    from repro.metrics.report import Table

    b, c = diff["base"], diff["candidate"]
    t = Table(["metric", "base (us)", "candidate (us)", "delta",
               "ratio CI (base/cand)", "verdict"],
              title=f"ledger diff: {b['label']!r} -> {c['label']!r}"
                    + ("" if diff["comparable"]
                       else "  [configs differ -- deltas are not "
                            "apples-to-apples]"))
    for key, m in diff["metrics"].items():
        ci = m.get("ratio_ci")
        ci_str = (f"[{ci['lo']:.3f}, {ci['hi']:.3f}]" if ci else "-")
        delta = (f"{m['delta_pct']:+.1f}%" if "delta_pct" in m else "-")
        t.add_row([key, m["base"], m["candidate"], delta, ci_str,
                   "REGRESSED" if m["regressed"] else "ok"])
    parts = [t.render()]
    if diff.get("kernel_pps"):
        k = diff["kernel_pps"]
        parts.append(
            f"kernel pps: {k['base']:,.0f} -> {k['candidate']:,.0f} "
            f"({k['ratio']:.2f}x, informational -- machine-dependent)"
        )
    if diff.get("cause_histogram"):
        ct = Table(["cause", "base", "candidate"],
                   title="tail cause histogram")
        for cause, row in diff["cause_histogram"].items():
            if row["base"] or row["candidate"]:
                ct.add_row([cause, row["base"], row["candidate"]])
        parts.append(ct.render())
    parts.append("verdict: " + ("OK" if diff["ok"] else
                                "TAIL REGRESSION: "
                                + ", ".join(diff["regressions"])))
    return "\n\n".join(parts)
