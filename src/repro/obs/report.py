"""Terminal rendering of span telemetry: breakdowns and packet timelines.

Answers the two questions a tail-latency investigation always starts
with: *where does the time go in aggregate* (stage-breakdown table over
the leaf stages, whose totals partition end-to-end latency) and *where
did the time go for the worst packets* (top-K slowest packet span
timelines).  ``repro trace`` and ``repro report`` print both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.report import Table
from repro.obs.span import LEAF_STAGES

#: Stage label column width heuristics live in Table; nothing to tune here.


def stage_breakdown(tracer, warmup: float = 0.0) -> Dict[str, Dict[str, float]]:
    """Aggregate leaf-stage statistics: count/mean/p99/total per stage.

    ``warmup`` discards records whose completion time predates it (same
    steady-state convention as the latency recorder).
    """
    grouped: Dict[str, List[float]] = {stage: [] for stage in LEAF_STAGES}
    for rec in tracer.records:
        if rec.time < warmup:
            continue
        if rec.stage in grouped:
            grouped[rec.stage].append(rec.dt)
    out: Dict[str, Dict[str, float]] = {}
    for stage in LEAF_STAGES:
        values = grouped[stage]
        if values:
            arr = np.asarray(values, dtype=np.float64)
            out[stage] = {
                "count": float(arr.size),
                "mean": float(arr.mean()),
                "p99": float(np.percentile(arr, 99)),
                "total": float(arr.sum()),
            }
        else:
            out[stage] = {"count": 0.0, "mean": 0.0, "p99": 0.0, "total": 0.0}
    return out


def breakdown_table(tracer, warmup: float = 0.0,
                    title: str = "stage breakdown") -> Table:
    """Render the leaf-stage breakdown as an aligned table.

    The ``share`` column is each stage's fraction of the summed totals
    -- since leaf stages partition end-to-end latency, this is the
    stage's true share of where the time went.
    """
    stats = stage_breakdown(tracer, warmup=warmup)
    grand_total = sum(s["total"] for s in stats.values()) or 1.0
    t = Table(["stage", "spans", "mean (us)", "p99 (us)", "total (us)",
               "share"], title=title)
    for stage in LEAF_STAGES:
        s = stats[stage]
        t.add_row([stage, int(s["count"]), s["mean"], s["p99"], s["total"],
                   f"{s['total'] / grand_total:.1%}"])
    return t


# ----------------------------------------------------------------------
# Per-packet timelines
# ----------------------------------------------------------------------
def packet_totals(tracer, warmup: float = 0.0) -> List[Tuple[int, float]]:
    """``(packet_id, leaf-stage total)`` per packet, unsorted.

    A packet's leaf total is its end-to-end latency as seen by the spans
    (see :data:`~repro.obs.span.LEAF_STAGES`).
    """
    out = []
    for pid in tracer.packet_ids():
        recs = tracer.per_packet(pid)
        if warmup and recs and recs[-1].time < warmup:
            continue
        total = sum(r.dt for r in recs if r.stage in LEAF_STAGES)
        out.append((pid, total))
    return out


def slowest_packets(tracer, k: int = 3,
                    warmup: float = 0.0) -> List[Tuple[int, float]]:
    """The ``k`` packets with the largest leaf totals, slowest first."""
    totals = packet_totals(tracer, warmup=warmup)
    totals.sort(key=lambda item: (-item[1], item[0]))
    return totals[:k]


def percentile_packet(tracer, pct: float,
                      warmup: float = 0.0) -> Optional[int]:
    """The packet whose leaf total sits at the ``pct`` percentile.

    Returns the id of the packet whose end-to-end latency is closest to
    (at or above) the requested percentile -- "show me *the* p99.9
    packet" for timeline inspection.
    """
    totals = packet_totals(tracer, warmup=warmup)
    if not totals:
        return None
    totals.sort(key=lambda item: item[1])
    values = [v for _, v in totals]
    target = float(np.percentile(np.asarray(values), pct))
    for pid, total in totals:
        if total >= target:
            return pid
    return totals[-1][0]


def timeline_table(tracer, packet_id: int,
                   title: Optional[str] = None) -> Table:
    """One packet's span timeline, in stage-completion order."""
    recs = sorted(tracer.per_packet(packet_id),
                  key=lambda r: (r.start, r.time))
    total = sum(r.dt for r in recs if r.stage in LEAF_STAGES)
    t = Table(["t_start (us)", "stage", "dt (us)", "track"],
              title=title or f"packet {packet_id} "
                             f"(e2e {total:.1f} us)")
    for rec in recs:
        track = (f"path{rec.extra}" if isinstance(rec.extra, int)
                 and rec.extra >= 0 else "-")
        t.add_row([rec.start, rec.stage, rec.dt, track])
    return t


def dominant_stage(tracer, packet_id: int) -> Optional[str]:
    """The leaf stage this packet spent the most time in."""
    best, best_dt = None, -1.0
    for rec in tracer.per_packet(packet_id):
        if rec.stage in LEAF_STAGES and rec.dt > best_dt:
            best, best_dt = rec.stage, rec.dt
    return best


def json_report(tracer, warmup: float = 0.0, top_k: int = 3,
                e2e_summary=None) -> Dict:
    """Machine-readable counterpart of :func:`render_report`.

    The ``trace_report`` payload: the leaf-stage breakdown plus the
    top-K slowest packets with their full span timelines, stamped with
    a ``schema_version`` (see :mod:`repro.schemas`).  ``repro report
    --json`` and ``repro trace --json`` emit exactly this.
    """
    from repro import schemas

    slowest = []
    for pid, total in slowest_packets(tracer, k=top_k, warmup=warmup):
        recs = sorted(tracer.per_packet(pid), key=lambda r: (r.start, r.time))
        timeline = []
        for rec in recs:
            entry = {"t_start": rec.start, "stage": rec.stage, "dt": rec.dt}
            if isinstance(rec.extra, int) and rec.extra >= 0:
                entry["path"] = rec.extra
            timeline.append(entry)
        slowest.append({
            "packet": pid,
            "e2e_us": total,
            "dominant_stage": dominant_stage(tracer, pid),
            "timeline": timeline,
        })
    out = {
        "schema_version": schemas.version_for("trace_report"),
        "warmup": warmup,
        "stage_breakdown": stage_breakdown(tracer, warmup=warmup),
        "slowest": slowest,
    }
    if e2e_summary is not None:
        out["e2e_summary"] = e2e_summary.to_dict()
    return out


def render_report(tracer, warmup: float = 0.0, top_k: int = 3,
                  e2e_summary=None) -> str:
    """Full terminal report: breakdown + top-K slowest packet timelines.

    ``e2e_summary`` (a :class:`~repro.metrics.stats.LatencySummary`)
    adds a reconciliation line comparing the spans' mean against the
    sink's measured mean -- the two must agree within ~1%.
    """
    parts = [breakdown_table(tracer, warmup=warmup).render()]
    totals = packet_totals(tracer, warmup=warmup)
    if totals and e2e_summary is not None:
        span_mean = sum(v for _, v in totals) / len(totals)
        delta = (span_mean / e2e_summary.mean - 1.0) if e2e_summary.mean else 0.0
        parts.append(
            f"span-sum mean {span_mean:.2f} us vs sink mean "
            f"{e2e_summary.mean:.2f} us ({delta:+.2%})"
        )
    for pid, total in slowest_packets(tracer, k=top_k, warmup=warmup):
        table = timeline_table(
            tracer, pid,
            title=f"slow packet {pid} (e2e {total:.1f} us, "
                  f"dominant: {dominant_stage(tracer, pid)})")
        parts.append(table.render())
    return "\n\n".join(parts)
