"""``repro.obs`` -- the observability subsystem.

One import surface for everything a run can tell you about itself:

* :class:`Telemetry` -- the per-run bundle: span tracer + metrics
  registry + instant events + manifest.  Pass one to ``repro.run`` /
  ``simulate`` to instrument a run; omit it and every hot path stays on
  a no-op guard (bit-identical results, near-zero cost).
* :class:`SpanTracer` / :data:`NullTracer` -- packet-lifecycle stage
  spans (``nic_ring → vswitch_queue → sched_stall → nf_service →
  reorder_buffer → sink``); leaf stages partition end-to-end latency.
* :class:`MetricsRegistry` / :class:`MetricsSampler` / :class:`Histogram`
  -- counters, gauges and P² histograms with sim-time snapshots.
* Exporters -- Chrome trace-event JSON (Perfetto-loadable),
  JSONL event log, metrics dump and run manifest
  (:func:`export_bundle`).
* Reports -- terminal stage-breakdown and slowest-packet timelines
  (:func:`breakdown_table`, :func:`render_report`) plus the
  machine-readable ``trace_report`` (:func:`json_report`).
* Forensics -- deterministic tail attribution: every p99+ packet gets
  one dominant-cause label from a fixed taxonomy
  (:func:`attribute_tail`; ``repro why``, docs/FORENSICS.md).
* Ledger -- the append-only cross-run regression record with
  bootstrap-CI diffs (:mod:`repro.obs.ledger`; ``repro ledger``).
"""

from repro.obs.forensics import (
    CAUSES,
    ForensicsSpec,
    attribute_tail,
    render_forensics,
)
from repro.obs.ledger import (
    append_entry,
    build_cluster_entry,
    build_entry,
    diff_entries,
    load_ledger,
    render_diff,
    render_ledger,
    select_entry,
)
from repro.obs.export import (
    export_bundle,
    load_spans,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.manifest import run_manifest, write_manifest
from repro.obs.registry import Histogram, MetricsRegistry, MetricsSampler
from repro.obs.report import (
    breakdown_table,
    dominant_stage,
    json_report,
    packet_totals,
    percentile_packet,
    render_report,
    slowest_packets,
    stage_breakdown,
    timeline_table,
)
from repro.obs.span import (
    ALL_STAGES,
    ENCLOSING_STAGES,
    INSTANT_STAGES,
    LEAF_STAGES,
    NullTracer,
    SpanTracer,
    TraceRecord,
    Tracer,
)
from repro.obs.telemetry import InstantEvent, Telemetry

__all__ = [
    "ALL_STAGES",
    "CAUSES",
    "ENCLOSING_STAGES",
    "ForensicsSpec",
    "INSTANT_STAGES",
    "LEAF_STAGES",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "MetricsSampler",
    "NullTracer",
    "SpanTracer",
    "Telemetry",
    "TraceRecord",
    "Tracer",
    "append_entry",
    "build_cluster_entry",
    "attribute_tail",
    "breakdown_table",
    "build_entry",
    "diff_entries",
    "dominant_stage",
    "export_bundle",
    "json_report",
    "load_ledger",
    "load_spans",
    "packet_totals",
    "percentile_packet",
    "render_diff",
    "render_forensics",
    "render_ledger",
    "render_report",
    "run_manifest",
    "select_entry",
    "slowest_packets",
    "stage_breakdown",
    "timeline_table",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_manifest",
]
