"""Per-packet stage spans: the tracing half of :mod:`repro.obs`.

Every packet traversing an instrumented host leaves a lifecycle of
*stage spans*: ``nic_ring -> vswitch_queue -> sched_stall -> nf_service
-> reorder_buffer`` leaf stages that partition its end-to-end latency,
an enclosing ``path_transit`` span (whole-path sojourn), and a ``sink``
delivery instant.  Components report ``(time, stage, packet_id, dt,
extra)`` records to a :class:`SpanTracer`; the breakdown analyses and
the exporters (:mod:`repro.obs.export`) consume them.

Tracing is off by default: the :data:`NullTracer` singleton swallows all
records, and hot-path call sites guard with ``if tracer.enabled:`` so a
disabled run pays one attribute read per potential record and model code
never needs ``if tracer is not None:`` branches.

This module subsumes the old ``repro.sim.trace``; that alias went
through the full deprecation cycle (warned in 1.x) and was removed in
2.0 -- import from :mod:`repro.obs` only.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, NamedTuple

#: Leaf stages, in lifecycle order.  Their ``dt`` values partition a
#: packet's end-to-end latency: summed per packet they reproduce
#: ``t_done - t_nic`` exactly (modulo float rounding) on fault-free runs.
LEAF_STAGES = (
    "nic_ring",        # rx-ring wait + rx processing (t_nic -> dispatch)
    "vswitch_queue",   # path-queue wait (t_enq -> batch service start)
    "sched_stall",     # vCPU wait: serialization behind the batch + stalls
    "nf_service",      # chain execution (includes mid-service stalls)
    "reorder_buffer",  # hold time in the sequence-restoring buffer
)

#: Enclosing spans: overlap the leaf stages, excluded from breakdown sums.
ENCLOSING_STAGES = ("path_transit",)

#: Zero-duration instants.  ``sink`` marks delivery; ``replicate`` marks
#: a replicated send, recorded on the primary copy with the clone pids
#: and chosen paths in ``extra`` (consumed by :mod:`repro.obs.forensics`
#: for replication-loss attribution).
INSTANT_STAGES = ("sink", "replicate")

#: Every stage name an instrumented host can emit.
ALL_STAGES = LEAF_STAGES + ENCLOSING_STAGES + INSTANT_STAGES


class TraceRecord(NamedTuple):
    """One stage-latency observation."""

    time: float  #: simulation time when the stage completed
    stage: str  #: stage label, e.g. "vswitch_queue"
    packet_id: int
    dt: float  #: time spent in the stage
    extra: Any  #: component payload; path stages carry the path id here

    @property
    def start(self) -> float:
        """Simulation time when the stage began."""
        return self.time - self.dt


class SpanTracer:
    """Accumulates :class:`TraceRecord` entries, indexed per packet.

    The per-packet index makes :meth:`per_packet` O(spans-of-that-packet)
    instead of a full scan over every record of the run (the old
    ``sim.trace.Tracer`` behavior, which was O(records) per query and
    O(records x packets) for the top-K timelines the reports render).
    """

    __slots__ = ("records", "enabled", "_by_packet")

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.enabled = True
        self._by_packet: Dict[int, List[TraceRecord]] = defaultdict(list)

    def record(
        self,
        time: float,
        stage: str,
        packet_id: int,
        dt: float,
        extra: Any = None,
    ) -> None:
        """Append one observation."""
        rec = TraceRecord(time, stage, packet_id, dt, extra)
        self.records.append(rec)
        self._by_packet[packet_id].append(rec)

    def clear(self) -> None:
        """Drop all accumulated records."""
        self.records.clear()
        self._by_packet.clear()

    def by_stage(self) -> Dict[str, List[float]]:
        """Group ``dt`` values by stage label."""
        out: Dict[str, List[float]] = defaultdict(list)
        for rec in self.records:
            out[rec.stage].append(rec.dt)
        return dict(out)

    def stage_totals(self) -> Dict[str, float]:
        """Total time spent per stage across all packets."""
        out: Dict[str, float] = defaultdict(float)
        for rec in self.records:
            out[rec.stage] += rec.dt
        return dict(out)

    def per_packet(self, packet_id: int) -> List[TraceRecord]:
        """All records for one packet, in insertion (time) order."""
        recs = self._by_packet.get(packet_id)
        return list(recs) if recs is not None else []

    def packet_ids(self) -> List[int]:
        """Every packet id that has at least one record."""
        return list(self._by_packet)

    def packet_total(self, packet_id: int) -> float:
        """Sum of this packet's *leaf* stage durations (its e2e latency)."""
        recs = self._by_packet.get(packet_id)
        if not recs:
            return 0.0
        leaf = LEAF_STAGES
        return sum(r.dt for r in recs if r.stage in leaf)

    def __len__(self) -> int:
        return len(self.records)


#: Backward-compatible name: the pre-obs ``Tracer`` is this class.
Tracer = SpanTracer


class _NullTracer:
    """No-op tracer used when tracing is disabled."""

    __slots__ = ()

    enabled = False
    records: List[TraceRecord] = []

    def record(self, time, stage, packet_id, dt, extra=None) -> None:
        pass

    def clear(self) -> None:
        pass

    def by_stage(self) -> Dict[str, List[float]]:
        return {}

    def stage_totals(self) -> Dict[str, float]:
        return {}

    def per_packet(self, packet_id: int) -> List[TraceRecord]:
        return []

    def packet_ids(self) -> List[int]:
        return []

    def packet_total(self, packet_id: int) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer instance.
NullTracer = _NullTracer()
