"""Telemetry exporters: JSONL event log and Chrome trace-event JSON.

Two artifact formats cover the two consumption modes:

* **JSONL** (``events.jsonl``) -- one self-describing JSON object per
  line (``kind``: ``span`` / ``instant`` / ``metric``), greppable and
  trivially re-loadable (:func:`load_spans`); ``repro report`` renders
  breakdowns straight from it.
* **Chrome trace-event JSON** (``trace.json``) -- loads in Perfetto or
  ``chrome://tracing``.  Paths, the NIC, the reorder buffer and the sink
  are threads ("tracks") of one host process; stage spans are complete
  ("X") events placed at simulation time (µs, the trace format's native
  unit), instant events are "i" events, and metric series are counter
  ("C") tracks.

:func:`export_bundle` writes both plus ``metrics.json`` and
``manifest.json`` into one directory -- the unit the sweep orchestrator
persists per cell and the CLI's ``repro report`` consumes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, List, Optional

from repro.obs.span import INSTANT_STAGES, SpanTracer, TraceRecord

#: Fixed thread ids of the non-path tracks.
TID_CONTROL = 0
TID_NIC = 1
TID_REORDER = 2
TID_SINK = 3
#: Path ``i`` renders as thread ``TID_PATH_BASE + i``.
TID_PATH_BASE = 10

_TRACK_NAMES = {
    TID_CONTROL: "control",
    TID_NIC: "nic",
    TID_REORDER: "reorder",
    TID_SINK: "sink",
}


def _span_tid(rec: TraceRecord) -> int:
    if rec.stage == "nic_ring":
        return TID_NIC
    if rec.stage == "reorder_buffer":
        return TID_REORDER
    if rec.stage == "sink":
        return TID_SINK
    if isinstance(rec.extra, int) and rec.extra >= 0:
        return TID_PATH_BASE + rec.extra
    return TID_CONTROL


def _track_tid(track: str) -> int:
    if track.startswith("path") and track[4:].isdigit():
        return TID_PATH_BASE + int(track[4:])
    return {"nic": TID_NIC, "reorder": TID_REORDER,
            "sink": TID_SINK}.get(track, TID_CONTROL)


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def to_chrome_trace(telemetry) -> Dict:
    """Build the Chrome trace-event document for one telemetry bundle.

    Returns the JSON Object Format: ``{"traceEvents": [...],
    "displayTimeUnit": "ms"}`` with events sorted by timestamp
    (metadata first), every event carrying ``pid``/``tid``/``ts``.
    """
    events: List[Dict] = []
    tids = set()

    for rec in telemetry.tracer.records:
        tid = _span_tid(rec)
        tids.add(tid)
        if rec.stage in INSTANT_STAGES:
            args = {"packet": rec.packet_id}
            if isinstance(rec.extra, dict):
                args.update(rec.extra)
            events.append({"name": rec.stage, "ph": "i", "pid": 0,
                           "tid": tid, "ts": rec.time, "s": "t",
                           "args": args})
        else:
            events.append({"name": rec.stage, "ph": "X", "pid": 0, "tid": tid,
                           "ts": rec.start, "dur": rec.dt,
                           "args": {"packet": rec.packet_id}})

    # Forensics annotations: one instant per attributed exemplar at its
    # delivery time, so the cause labels land next to the slow packets
    # when the trace is opened in Perfetto.
    forensics = getattr(telemetry, "forensics", None)
    if forensics:
        for ex in forensics.get("exemplars", ()):
            tid = _track_tid(ex.get("blame_path", "control"))
            tids.add(tid)
            t_sink = max((s["t_start"] + s["dt"] for s in ex["timeline"]),
                         default=0.0)
            events.append({
                "name": f"forensics:{ex['cause']}", "ph": "i", "pid": 0,
                "tid": tid, "ts": t_sink, "s": "g",
                "args": {"packet": ex["packet"], "e2e_us": ex["e2e_us"],
                         "dominant_stage": ex["dominant_stage"]},
            })

    for ev in telemetry.events:
        tid = _track_tid(ev.track)
        tids.add(tid)
        events.append({"name": ev.name, "ph": "i", "pid": 0, "tid": tid,
                       "ts": ev.time, "s": "g",
                       "args": ev.args if isinstance(ev.args, dict)
                       else {"value": ev.args}})

    for name, points in sorted(telemetry.registry.series.items()):
        for t, v in points:
            events.append({"name": name, "ph": "C", "pid": 0,
                           "tid": TID_CONTROL, "ts": t,
                           "args": {name: v}})

    events.sort(key=lambda e: (e["ts"], e["tid"]))

    meta: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0, "ts": 0.0,
        "args": {"name": "repro-host"},
    }]
    for tid in sorted(tids | {TID_CONTROL}):
        label = _TRACK_NAMES.get(tid, f"path{tid - TID_PATH_BASE}")
        meta.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                     "ts": 0.0, "args": {"name": label}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": 0,
                     "tid": tid, "ts": 0.0, "args": {"sort_index": tid}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Dict) -> int:
    """Validate the trace-event schema; returns the event count.

    Checks the invariants Perfetto relies on: a ``traceEvents`` list,
    ``ph``/``pid``/``tid``/``ts`` on every event, ``dur`` on complete
    events, and non-metadata events sorted by timestamp.  Raises
    ``ValueError`` on the first violation.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event document: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    last_ts = None
    for i, ev in enumerate(events):
        for field in ("ph", "pid", "tid", "ts"):
            if field not in ev:
                raise ValueError(f"event {i} missing {field!r}: {ev}")
        if ev["ph"] not in ("M", "X", "i", "C", "B", "E"):
            raise ValueError(f"event {i} has unknown phase {ev['ph']!r}")
        if ev["ph"] == "X" and ("dur" not in ev or ev["dur"] < 0):
            raise ValueError(f"complete event {i} needs a non-negative dur")
        if ev["ph"] == "M":
            continue
        if last_ts is not None and ev["ts"] < last_ts:
            raise ValueError(
                f"event {i} out of order: ts {ev['ts']} < {last_ts}"
            )
        last_ts = ev["ts"]
    return len(events)


def write_chrome_trace(telemetry, path) -> Dict:
    """Write (and validate) the Chrome trace JSON; returns the document."""
    doc = to_chrome_trace(telemetry)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def jsonl_lines(telemetry) -> Iterator[str]:
    """Yield the bundle as JSONL lines (spans, instants, metric points)."""
    for rec in telemetry.tracer.records:
        yield json.dumps({"kind": "span", "ts": rec.time, "stage": rec.stage,
                          "packet": rec.packet_id, "dt": rec.dt,
                          "track": rec.extra}, sort_keys=True)
    for ev in telemetry.events:
        yield json.dumps({"kind": "instant", "ts": ev.time, "name": ev.name,
                          "track": ev.track, "args": ev.args}, sort_keys=True)
    for name in sorted(telemetry.registry.series):
        for t, v in telemetry.registry.series[name]:
            yield json.dumps({"kind": "metric", "ts": t, "name": name,
                              "value": v}, sort_keys=True)


def write_jsonl(telemetry, path) -> int:
    """Write the JSONL event log; returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for line in jsonl_lines(telemetry):
            fh.write(line)
            fh.write("\n")
            n += 1
    return n


def load_spans(path) -> SpanTracer:
    """Rebuild a :class:`SpanTracer` from a JSONL event log.

    Only ``span`` records are loaded -- enough for every terminal report
    (`repro report` runs on this).  Unknown kinds are skipped, so the
    format can grow without breaking old readers.
    """
    tracer = SpanTracer()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") != "span":
                continue
            tracer.record(obj["ts"], obj["stage"], obj["packet"], obj["dt"],
                          obj.get("track"))
    return tracer


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
def export_bundle(telemetry, outdir,
                  manifest: Optional[Dict] = None) -> Dict[str, str]:
    """Write the full artifact bundle into ``outdir``.

    Produces ``trace.json`` (Chrome trace, validated), ``events.jsonl``,
    ``metrics.json`` (registry dump), ``manifest.json`` (provenance;
    the telemetry's own manifest unless one is passed) and -- when the
    run was forensicated -- ``forensics.json`` (the tail-attribution
    report).  Returns ``{kind: path}`` for every file written.
    """
    from repro.obs.manifest import write_manifest

    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {}

    trace_path = out / "trace.json"
    write_chrome_trace(telemetry, trace_path)
    paths["trace"] = str(trace_path)

    jsonl_path = out / "events.jsonl"
    write_jsonl(telemetry, jsonl_path)
    paths["events"] = str(jsonl_path)

    metrics_path = out / "metrics.json"
    with open(metrics_path, "w") as fh:
        json.dump(telemetry.registry.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    paths["metrics"] = str(metrics_path)

    manifest_path = out / "manifest.json"
    write_manifest(manifest_path,
                   manifest=manifest if manifest is not None
                   else telemetry.manifest)
    paths["manifest"] = str(manifest_path)

    forensics = getattr(telemetry, "forensics", None)
    if forensics is not None:
        forensics_path = out / "forensics.json"
        with open(forensics_path, "w") as fh:
            json.dump(forensics, fh, indent=1, sort_keys=True)
            fh.write("\n")
        paths["forensics"] = str(forensics_path)
    return paths
