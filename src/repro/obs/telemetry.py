"""The telemetry bundle: one object carrying a run's observability state.

A :class:`Telemetry` instance bundles the three observability channels
-- the span tracer, the metrics registry, and the instant-event log --
plus the run manifest built at finalization.  Pass one to
:func:`repro.run` (or ``simulate``) to instrument a run::

    from repro import RunOptions, Telemetry

    tel = Telemetry()
    result = repro.run(repro.ScenarioConfig(policy="single", n_paths=1,
                                            load=0.7),
                       RunOptions(telemetry=tel))
    print(tel.breakdown_table().render())
    tel.export("my-trace/")          # trace.json + events.jsonl + ...

Passing no telemetry (the default) keeps every hot path on the
:data:`~repro.obs.span.NullTracer` guard -- the simulation is
bit-identical and effectively free of observability cost (measured by
``benchmarks/record_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from repro.obs.registry import MetricsRegistry, MetricsSampler
from repro.obs.span import NullTracer, SpanTracer


class InstantEvent(NamedTuple):
    """A zero-duration occurrence placed at one simulation instant."""

    time: float
    name: str  #: e.g. "fault:arm:crash", "path:eject", "detector:unhealthy"
    track: str  #: display track, e.g. "control" or "path3"
    args: Any  #: JSON-friendly payload (target ids etc.)


class Telemetry:
    """Observability bundle for one simulation run.

    Parameters
    ----------
    spans:
        Collect per-packet stage spans (the expensive channel).
    metrics_interval:
        Gauge/counter snapshot cadence in sim-µs; 0 disables sampling.
    """

    def __init__(self, spans: bool = True,
                 metrics_interval: float = 1_000.0) -> None:
        if metrics_interval < 0:
            raise ValueError(
                f"metrics_interval must be >= 0, got {metrics_interval}"
            )
        self.enabled = True
        self.tracer = SpanTracer() if spans else NullTracer
        self.registry = MetricsRegistry()
        self.metrics_interval = metrics_interval
        self.events: List[InstantEvent] = []
        #: Run manifest (config, seed, code fingerprint, versions);
        #: populated by :meth:`finalize`.
        self.manifest: Optional[Dict] = None
        #: Tail-attribution report (``forensics_report`` dict); set when
        #: the run was forensicated, exported as ``forensics.json`` in
        #: the bundle and annotated into the Perfetto trace.
        self.forensics: Optional[Dict] = None
        self._sampler: Optional[MetricsSampler] = None

    # ------------------------------------------------------------------
    # Wiring (called by the host / simulate)
    # ------------------------------------------------------------------
    def instant(self, time: float, name: str, track: str = "control",
                args: Any = None) -> None:
        """Record one instant event."""
        self.events.append(InstantEvent(time, name, track, args))

    def register_host(self, host) -> None:
        """Register the standard gauges of a
        :class:`~repro.core.mpdp.MultipathDataPlane`.

        Per-path queue depth and completion counts, NIC ring occupancy
        and receive/drop counters, reorder-buffer occupancy, and sink
        deliveries -- everything the post-run time series need to answer
        "what did the queues look like when this cell's p99.9 happened?".
        """
        reg = self.registry
        for path in host.paths:
            name = path.name
            reg.gauge(f"{name}.depth", lambda p=path: p.depth)
            reg.gauge(f"{name}.completed", lambda p=path: p.completed)
            reg.gauge(f"{name}.ewma_latency_us",
                      lambda p=path: p.ewma_latency.value)
        reg.gauge("nic.ring_occupancy", lambda: host.nic.ring_occupancy)
        reg.gauge("nic.received", lambda: host.nic.received)
        reg.gauge("nic.dropped", lambda: host.nic.dropped)
        if host.reorder is not None:
            reg.gauge("reorder.occupancy", lambda: host.reorder.occupancy)
        reg.gauge("sink.delivered", lambda: host.sink.delivered)

    def attach(self, sim, horizon: Optional[float] = None) -> None:
        """Start periodic metric sampling on ``sim`` (if configured)."""
        if self.metrics_interval > 0 and self._sampler is None:
            self._sampler = MetricsSampler(
                sim, self.registry, self.metrics_interval, horizon=horizon
            ).start()

    # ------------------------------------------------------------------
    # Finalization (called once, after the run)
    # ------------------------------------------------------------------
    def finalize(self, host=None, config: Optional[Dict] = None,
                 seed: Optional[int] = None, injector=None,
                 wall_s: Optional[float] = None) -> "Telemetry":
        """Derive instant events from run history and build the manifest.

        Fault arm/clear events come from the injector's applied timeline;
        path ejection/reinstatement and straggler-detector health flips
        are reconstructed from the controller's tick history.  All of
        this is post-processing over state the run keeps anyway, so event
        telemetry adds zero per-packet cost.
        """
        if self._sampler is not None:
            self._sampler.stop()
        if injector is not None:
            for t, action, kind, target in injector.timeline:
                self.instant(t, f"fault:{action}:{kind}", track="control",
                             args={"target": target})
        ctl = getattr(host, "controller", None) if host is not None else None
        if ctl is not None:
            self._derive_controller_events(ctl)
        from repro.obs.manifest import run_manifest

        self.manifest = run_manifest(config=config, seed=seed, wall_s=wall_s)
        return self

    def _derive_controller_events(self, ctl) -> None:
        """Diff consecutive control snapshots into health/eject/park flips."""
        n_paths = len(ctl.paths)
        prev_healthy = set(range(n_paths))
        prev_ejected: set = set()
        prev_parked: set = set()
        for snap in ctl.history:
            healthy = set(snap.healthy)
            ejected = set(snap.ejected)
            parked = set(getattr(snap, "admin_down", ()))
            for pid in sorted(prev_healthy - healthy):
                self.instant(snap.time, "detector:unhealthy",
                             track=f"path{pid}", args={"path": pid})
            for pid in sorted(healthy - prev_healthy):
                self.instant(snap.time, "detector:healthy",
                             track=f"path{pid}", args={"path": pid})
            for pid in sorted(ejected - prev_ejected):
                self.instant(snap.time, "path:eject",
                             track=f"path{pid}", args={"path": pid})
            for pid in sorted(prev_ejected - ejected):
                self.instant(snap.time, "path:reinstate",
                             track=f"path{pid}", args={"path": pid})
            # Administrative parking (SLO autotuner scale-down) is a
            # distinct lifecycle from ejection: policy, not fault.
            for pid in sorted(parked - prev_parked):
                self.instant(snap.time, "path:park",
                             track=f"path{pid}", args={"path": pid})
            for pid in sorted(prev_parked - parked):
                self.instant(snap.time, "path:unpark",
                             track=f"path{pid}", args={"path": pid})
            prev_healthy, prev_ejected, prev_parked = healthy, ejected, parked

    # ------------------------------------------------------------------
    # Convenience views (delegating to report/export)
    # ------------------------------------------------------------------
    def breakdown_table(self, warmup: float = 0.0):
        """Stage-breakdown :class:`~repro.metrics.report.Table`."""
        from repro.obs.report import breakdown_table

        return breakdown_table(self.tracer, warmup=warmup)

    def export(self, outdir) -> Dict[str, str]:
        """Write the full artifact bundle; returns ``{kind: path}``."""
        from repro.obs.export import export_bundle

        return export_bundle(self, outdir)
