"""Tail forensics: automated root-cause attribution for p99+ packets.

The paper's argument is that *specific, diagnosable* last-mile events --
vCPU descheduling stalls, vSwitch queue buildup, slow chain elements,
reorder waits -- create the latency tail, and that multipath steering
removes them.  The span reports (:mod:`repro.obs.report`) show *where
time went in aggregate*; this module answers the sharper question: **why
was this particular p99.9 packet slow?**

:func:`attribute_tail` is a deterministic post-run join.  For every
delivered packet above a configurable latency quantile (default p99) it
combines

* the packet's span timeline (which leaf stage ate the time, on which
  path),
* the fault timeline (did the packet transit a path while a fault was
  armed on it?),
* the replication record (did a redundant copy die, eroding the
  coverage the packet paid for?), and
* the per-path queue-depth samples (evidence attached to exemplars),

and assigns exactly one *dominant cause* from the fixed taxonomy
:data:`CAUSES`.  The output is a schema-versioned ``forensics_report``
(cause histogram, per-path blame matrix, top-K exemplar timelines, a
tail CCDF per cause) surfaced on :class:`~repro.bench.scenarios.
SimulationResult`, via ``repro why``, in sweep telemetry bundles, and as
Perfetto annotations.

Forensics is pure post-processing over telemetry a run keeps anyway: it
follows the NullTracer zero-cost pattern, so runs without telemetry
attached are bit-identical and pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.span import LEAF_STAGES

#: The fixed cause taxonomy, in attribution-priority order for display.
#: Every analyzed packet gets exactly one label.
CAUSES = (
    "sched_stall",       # vCPU wait dominated (descheduling / jitter)
    "queue_buildup",     # vSwitch path-queue wait dominated
    "nf_service",        # chain execution dominated
    "reorder_wait",      # sequence-restoring buffer hold dominated
    "nic_ring",          # rx-ring wait dominated
    "fault_window",      # transited a path/NIC while a fault was armed
    "replication_loss",  # a redundant copy died; coverage eroded
    "mixed",             # no single stage reached the dominance share
)

#: Leaf stage -> taxonomy label for dominant-stage attribution.
STAGE_TO_CAUSE = {
    "sched_stall": "sched_stall",
    "vswitch_queue": "queue_buildup",
    "nf_service": "nf_service",
    "reorder_buffer": "reorder_wait",
    "nic_ring": "nic_ring",
}


@dataclass
class ForensicsSpec:
    """Attribution knobs (all deterministic; no RNG anywhere).

    Attributes
    ----------
    quantile:
        Latency percentile above which packets are analyzed (default
        p99: the top 1% of delivered, traced packets).
    top_k:
        Exemplar packets (slowest first) whose annotated timelines are
        embedded in the report.
    dominance:
        Minimum share of a packet's end-to-end latency one leaf stage
        must own to be called *the* cause; below it the packet is
        ``mixed``.
    ccdf_points:
        Maximum points retained per cause in the tail CCDF (evenly
        subsampled when a cause has more packets than this).
    """

    quantile: float = 99.0
    top_k: int = 5
    dominance: float = 0.5
    ccdf_points: int = 128

    def validate(self) -> "ForensicsSpec":
        if not 0.0 <= self.quantile < 100.0:
            raise ValueError(
                f"quantile must be in [0, 100), got {self.quantile}"
            )
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0.0 < self.dominance <= 1.0:
            raise ValueError(
                f"dominance must be in (0, 1], got {self.dominance}"
            )
        if self.ccdf_points < 2:
            raise ValueError(
                f"ccdf_points must be >= 2, got {self.ccdf_points}"
            )
        return self

    def to_dict(self) -> Dict:
        return {
            "quantile": self.quantile,
            "top_k": self.top_k,
            "dominance": self.dominance,
            "ccdf_points": self.ccdf_points,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ForensicsSpec":
        return cls(**data).validate()


# ----------------------------------------------------------------------
# Fault windows
# ----------------------------------------------------------------------
def fault_windows(timeline, horizon: float) -> List[Dict]:
    """Pair arm/clear events into ``{kind, target, start, end}`` windows.

    ``timeline`` is the injector's applied timeline (``(time, action,
    kind, target)`` tuples, in application order).  An arm without a
    matching clear extends to ``horizon`` (the fault outlived the run).
    """
    open_: Dict[Tuple[str, Any], List[float]] = {}
    out: List[Dict] = []
    for t, action, kind, target in timeline or ():
        key = (kind, target)
        if action == "arm":
            open_.setdefault(key, []).append(t)
        elif action == "clear" and open_.get(key):
            start = open_[key].pop(0)
            out.append({"kind": kind, "target": target,
                        "start": start, "end": t})
    for (kind, target), starts in sorted(open_.items(), key=str):
        for start in starts:
            out.append({"kind": kind, "target": target,
                        "start": start, "end": horizon})
    out.sort(key=lambda w: (w["start"], str(w["target"]), w["kind"]))
    return out


def _window_hits(windows: List[Dict], t0: float, t1: float,
                 paths: set, saw_nic: bool) -> List[Dict]:
    """Windows overlapping ``[t0, t1]`` on a path the packet rode (or
    the NIC, if it has an rx-ring span)."""
    hits = []
    for w in windows:
        if w["end"] <= t0 or w["start"] >= t1:
            continue
        if w["target"] == "nic":
            if saw_nic:
                hits.append(w)
        elif w["target"] in paths:
            hits.append(w)
    return hits


# ----------------------------------------------------------------------
# The attribution engine
# ----------------------------------------------------------------------
def _depth_at(series: Optional[List[Tuple[float, float]]],
              t: float) -> Optional[float]:
    """Last sampled value at or before ``t`` (None when unsampled)."""
    if not series:
        return None
    value = None
    for ts, v in series:
        if ts > t:
            break
        value = v
    return value


def attribute_tail(result, spec: Optional[ForensicsSpec] = None) -> Dict:
    """Build the ``forensics_report`` for one instrumented run.

    ``result`` is a :class:`~repro.bench.scenarios.SimulationResult`
    whose run was traced (``result.telemetry`` holds a live span
    tracer); raises ``ValueError`` otherwise.  The report is a pure
    function of the telemetry + result state, so two runs with the same
    seed produce byte-identical reports.
    """
    from repro import schemas

    spec = (spec or ForensicsSpec()).validate()
    telemetry = result.telemetry
    if telemetry is None or not getattr(telemetry.tracer, "enabled", False):
        raise ValueError(
            "forensics needs a traced run: pass RunOptions("
            "telemetry=Telemetry()) (or forensics=True, which attaches "
            "one) to repro.run"
        )
    tracer = telemetry.tracer
    warmup = getattr(result.config, "warmup", 0.0)

    # Delivered packets: pids with a sink instant past warmup.  Dropped
    # packets and suppressed replica copies never reach the sink, so
    # they are joined as *evidence*, not analyzed as tail members.
    sink_time: Dict[int, float] = {}
    replicate_groups: Dict[int, Dict] = {}
    for rec in tracer.records:
        if rec.stage == "sink":
            if rec.time >= warmup:
                sink_time[rec.packet_id] = rec.time
        elif rec.stage == "replicate" and isinstance(rec.extra, dict):
            replicate_groups[rec.packet_id] = rec.extra
    #: copy pid -> primary pid (primaries map to themselves).
    copy_to_primary: Dict[int, int] = {}
    for primary, info in replicate_groups.items():
        copy_to_primary[primary] = primary
        for cp in info.get("copies", ()):
            copy_to_primary[cp] = primary

    totals: List[Tuple[int, float]] = []
    for pid in sorted(sink_time):
        total = tracer.packet_total(pid)
        totals.append((pid, total))

    windows = fault_windows(
        (result.availability or {}).get("timeline"), result.sim_time
    )
    report: Dict = {
        "schema_version": schemas.version_for("forensics_report"),
        "spec": spec.to_dict(),
        "quantile": spec.quantile,
        "delivered_traced": len(totals),
        "fault_windows": windows,
    }
    if not totals:
        report.update({
            "threshold_us": None,
            "analyzed": 0,
            "cause_histogram": {c: 0 for c in CAUSES},
            "blame_matrix": {},
            "exemplars": [],
            "tail_ccdf": {},
        })
        report["drops"] = _drop_accounting(result)
        return report

    values = np.asarray([v for _, v in totals], dtype=np.float64)
    threshold = float(np.percentile(values, spec.quantile))
    analyzed = [(pid, total) for pid, total in totals if total >= threshold]
    analyzed.sort(key=lambda item: (-item[1], item[0]))

    series = telemetry.registry.series
    histogram = {c: 0 for c in CAUSES}
    blame: Dict[str, Dict[str, int]] = {}
    per_cause_latency: Dict[str, List[float]] = {c: [] for c in CAUSES}
    exemplars: List[Dict] = []

    for rank, (pid, total) in enumerate(analyzed):
        verdict = _attribute_one(
            tracer, pid, total, sink_time[pid], windows,
            replicate_groups, copy_to_primary, sink_time, spec,
        )
        cause = verdict["cause"]
        histogram[cause] += 1
        per_cause_latency[cause].append(total)
        lane = verdict["blame_path"]
        blame.setdefault(cause, {})
        blame[cause][lane] = blame[cause].get(lane, 0) + 1
        if rank < spec.top_k:
            exemplars.append(_exemplar(
                tracer, pid, total, verdict, series,
            ))

    report.update({
        "threshold_us": threshold,
        "analyzed": len(analyzed),
        "cause_histogram": histogram,
        "blame_matrix": {c: dict(sorted(blame[c].items()))
                         for c in sorted(blame)},
        "exemplars": exemplars,
        "tail_ccdf": {
            c: _ccdf(per_cause_latency[c], spec.ccdf_points)
            for c in CAUSES if per_cause_latency[c]
        },
    })
    report["drops"] = _drop_accounting(result)
    return report


def _attribute_one(tracer, pid: int, total: float, t_sink: float,
                   windows, replicate_groups, copy_to_primary,
                   sink_time, spec: ForensicsSpec) -> Dict:
    """Assign one packet's dominant cause.

    Rule order is fixed (and documented in docs/FORENSICS.md):

    1. ``fault_window`` -- the packet's transit overlapped an armed
       fault on a path it rode (or the NIC);
    2. ``replication_loss`` -- the packet traveled as a replicated group
       and at least one sibling copy died in flight (no chain completion,
       no delivery), so the redundancy meant to cover it was eroded;
    3. the dominant leaf stage, if it owns at least ``spec.dominance``
       of the end-to-end latency (:data:`STAGE_TO_CAUSE`);
    4. ``mixed`` otherwise.
    """
    recs = tracer.per_packet(pid)
    stage_sums: Dict[str, float] = {}
    stage_path: Dict[str, Tuple[float, Any]] = {}
    paths: set = set()
    t0 = t_sink
    saw_nic = False
    for rec in recs:
        if rec.stage not in STAGE_TO_CAUSE:
            continue
        stage_sums[rec.stage] = stage_sums.get(rec.stage, 0.0) + rec.dt
        best = stage_path.get(rec.stage)
        if best is None or rec.dt > best[0]:
            stage_path[rec.stage] = (rec.dt, rec.extra)
        if isinstance(rec.extra, int) and rec.extra >= 0:
            paths.add(rec.extra)
        if rec.stage == "nic_ring":
            saw_nic = True
        if rec.start < t0:
            t0 = rec.start

    dominant = None
    if stage_sums:
        dominant = max(
            LEAF_STAGES,
            key=lambda s: (stage_sums.get(s, 0.0), -LEAF_STAGES.index(s)),
        )

    hits = _window_hits(windows, t0, t_sink, paths, saw_nic)
    lost_siblings: List[int] = []
    primary = copy_to_primary.get(pid)
    if primary is not None:
        group = [primary] + list(replicate_groups[primary].get("copies", ()))
        for sibling in group:
            if sibling == pid or sibling in sink_time:
                continue
            sib_stages = {r.stage for r in tracer.per_packet(sibling)}
            # A suppressed copy completed its chain (it has an
            # nf_service span); a copy with none died in the data plane.
            if "nf_service" not in sib_stages and "sink" not in sib_stages:
                lost_siblings.append(sibling)

    if hits:
        cause = "fault_window"
        blame_target = hits[0]["target"]
        blame_path = (f"path{blame_target}"
                      if isinstance(blame_target, int) else str(blame_target))
    elif lost_siblings:
        cause = "replication_loss"
        blame_path = _dominant_lane(dominant, stage_path, paths)
    elif dominant is not None and stage_sums.get(dominant, 0.0) >= \
            spec.dominance * total and total > 0:
        cause = STAGE_TO_CAUSE[dominant]
        blame_path = _dominant_lane(dominant, stage_path, paths)
    else:
        cause = "mixed"
        blame_path = _dominant_lane(dominant, stage_path, paths)

    return {
        "cause": cause,
        "dominant_stage": dominant,
        "stage_sums": stage_sums,
        "blame_path": blame_path,
        "fault_overlaps": hits,
        "lost_siblings": lost_siblings,
        "t0": t0,
        "t_sink": t_sink,
        "paths": sorted(paths),
    }


def _dominant_lane(dominant, stage_path, paths) -> str:
    """Display lane for the blame matrix: the path that hosted the
    largest span of the dominant stage; NIC/reorder stages (no path
    affinity) fall back to the packet's sole path, else "host"."""
    if dominant is not None and dominant in stage_path:
        extra = stage_path[dominant][1]
        if isinstance(extra, int) and extra >= 0:
            return f"path{extra}"
    if len(paths) == 1:
        return f"path{next(iter(paths))}"
    return "host"


def _exemplar(tracer, pid: int, total: float, verdict: Dict,
              series) -> Dict:
    """One annotated timeline for the report's exemplar list."""
    recs = sorted(tracer.per_packet(pid), key=lambda r: (r.start, r.time))
    timeline = []
    for rec in recs:
        if rec.stage == "replicate":
            continue
        entry = {"t_start": rec.start, "stage": rec.stage, "dt": rec.dt}
        if isinstance(rec.extra, int) and rec.extra >= 0:
            entry["path"] = rec.extra
        timeline.append(entry)
    # Queue-depth evidence: what did the chosen path's queue look like
    # when this packet entered it?  (Nearest gauge sample at or before
    # the vswitch_queue span start; None when metrics were off.)
    depth = None
    vq = verdict["stage_sums"].get("vswitch_queue")
    if vq is not None:
        for rec in recs:
            if rec.stage == "vswitch_queue" and isinstance(rec.extra, int):
                depth = _depth_at(series.get(f"path{rec.extra}.depth"),
                                  rec.start)
                break
    return {
        "packet": pid,
        "e2e_us": total,
        "cause": verdict["cause"],
        "dominant_stage": verdict["dominant_stage"],
        "blame_path": verdict["blame_path"],
        "paths": verdict["paths"],
        "stages": {s: verdict["stage_sums"][s]
                   for s in sorted(verdict["stage_sums"])},
        "queue_depth_at_enqueue": depth,
        "fault_overlaps": verdict["fault_overlaps"],
        "lost_siblings": verdict["lost_siblings"],
        "timeline": timeline,
    }


def _ccdf(latencies: List[float], max_points: int) -> List[List[float]]:
    """``[[latency_us, P(X >= latency)], ...]`` over one cause's packets,
    evenly subsampled to ``max_points`` when larger."""
    arr = sorted(latencies)
    n = len(arr)
    points = [[float(arr[i]), float((n - i) / n)] for i in range(n)]
    if n <= max_points:
        return points
    idx = np.linspace(0, n - 1, max_points).astype(int)
    return [points[i] for i in idx]


def _drop_accounting(result) -> Dict:
    """Join the host's drop ledger (and the invariant engine's view of
    it, when a check ran) so the report accounts for packets that never
    reached the sink at all -- the tail beyond the tail."""
    stats = result.stats or {}
    out = {
        "by_reason": dict(sorted((stats.get("drops") or {}).items())),
        "nic": stats.get("nic_drops", 0),
        "suppressed_copies": stats.get("suppressed", 0),
    }
    check = result.check_report
    if check is not None:
        out["check"] = {
            "ok": check.get("ok"),
            "conservation_checks": (check.get("invariants") or {})
            .get("conservation", 0),
            "violation_count": check.get("violation_count", 0),
        }
    return out


# ----------------------------------------------------------------------
# Terminal rendering (used by ``repro why``)
# ----------------------------------------------------------------------
def render_forensics(report: Dict, top_k: Optional[int] = None) -> str:
    """Human-readable rendering of a ``forensics_report``."""
    from repro.metrics.report import Table

    parts = []
    threshold = report["threshold_us"]
    if threshold is not None:
        title = (f"tail forensics: {report['analyzed']} packets above "
                 f"p{report['quantile']:g} ({threshold:.1f} us)")
    else:
        title = "tail forensics: no delivered traced packets"
    t = Table(["cause", "packets", "share", "p50 (us)", "max (us)"],
              title=title)
    total = max(report["analyzed"], 1)
    ccdf = report.get("tail_ccdf", {})
    for cause in CAUSES:
        n = report["cause_histogram"].get(cause, 0)
        if n == 0:
            continue
        lats = [p[0] for p in ccdf.get(cause, [])]
        t.add_row([cause, n, f"{n / total:.1%}",
                   float(np.median(lats)) if lats else float("nan"),
                   max(lats) if lats else float("nan")])
    parts.append(t.render())

    blame = report.get("blame_matrix") or {}
    if blame:
        lanes = sorted({lane for row in blame.values() for lane in row})
        bt = Table(["cause"] + lanes, title="blame matrix (packets)")
        for cause in sorted(blame):
            bt.add_row([cause] + [blame[cause].get(lane, 0)
                                  for lane in lanes])
        parts.append(bt.render())

    exemplars = report.get("exemplars", [])
    if top_k is not None:
        exemplars = exemplars[:top_k]
    for ex in exemplars:
        et = Table(["t_start (us)", "stage", "dt (us)", "track"],
                   title=f"packet {ex['packet']} (e2e {ex['e2e_us']:.1f} us, "
                         f"cause: {ex['cause']})")
        for step in ex["timeline"]:
            lane = f"path{step['path']}" if "path" in step else "-"
            et.add_row([step["t_start"], step["stage"], step["dt"], lane])
        parts.append(et.render())
        notes = []
        if ex["fault_overlaps"]:
            w = ex["fault_overlaps"][0]
            notes.append(f"overlapped {w['kind']} on {w['target']} "
                         f"[{w['start']:.0f}, {w['end']:.0f}]")
        if ex["lost_siblings"]:
            notes.append(f"lost replica copies: {ex['lost_siblings']}")
        if ex["queue_depth_at_enqueue"] is not None:
            notes.append(f"queue depth at enqueue: "
                         f"{ex['queue_depth_at_enqueue']:.0f}")
        if notes:
            parts.append("  " + "; ".join(notes))
    return "\n\n".join(parts)
