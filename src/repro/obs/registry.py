"""Named metrics with sim-time sampling: the counters half of :mod:`repro.obs`.

Components register *counters* (monotonic), *gauges* (a callable read on
demand) and *histograms* (streaming P² quantiles) into a
:class:`MetricsRegistry` by name.  A sampler snapshots every gauge and
counter on a configurable simulation-time cadence into per-name time
series, so queue depths, per-path dispatch rates and delivery counts are
reconstructable after the run without retaining per-packet state.

Sampling is purely observational: snapshot callbacks only *read* model
state, so attaching a sampler never changes a simulation's trajectory --
results stay bit-identical with metrics on or off.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.collectors import Counter
from repro.metrics.stats import P2Quantile


class Histogram:
    """Streaming distribution summary: count, sum, max and P² quantiles."""

    __slots__ = ("quantiles", "count", "total", "_max", "_p2")

    def __init__(self, quantiles: Tuple[float, ...] = (0.5, 0.99)) -> None:
        self.quantiles = tuple(quantiles)
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")
        self._p2: Dict[float, P2Quantile] = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        for est in self._p2.values():
            est.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Streaming P² estimate of a tracked quantile."""
        return self._p2[q].value

    def as_dict(self) -> Dict:
        """JSON-friendly summary with sorted, byte-stable keys."""
        out = {"count": self.count, "sum": self.total, "mean": self.mean,
               "max": self.max}
        for q in sorted(self.quantiles):
            out[f"q{q:g}"] = self._p2[q].value
        return out


class MetricsRegistry:
    """Component-facing metric namespace + time-series snapshots.

    ``counter(...)`` increments the shared :class:`Counter`;
    ``gauge(name, fn)`` registers a zero-arg callable polled at every
    snapshot; ``histogram(name)`` creates (or returns) a streaming
    :class:`Histogram`.  :meth:`snapshot` appends one ``(time, value)``
    point per gauge *and* per counter to :attr:`series` -- counters
    sampled over time give event *rates* (dispatches/µs etc.) for free.
    """

    __slots__ = ("counters", "_gauges", "_histograms", "series", "sampled_at")

    def __init__(self) -> None:
        self.counters = Counter()
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: name -> list of (sim_time, value) points, appended per snapshot.
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        #: Snapshot times, one entry per :meth:`snapshot` call.
        self.sampled_at: List[float] = []

    # -- registration ---------------------------------------------------
    def counter(self, name: str, by: int = 1, **labels) -> None:
        """Increment the named counter (labels sorted into the name)."""
        self.counters.inc(name, by, **labels)

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge; ``fn`` is polled at every snapshot."""
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn

    def histogram(self, name: str,
                  quantiles: Tuple[float, ...] = (0.5, 0.99)) -> Histogram:
        """Create (or return the existing) named histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(quantiles)
            self._histograms[name] = hist
        return hist

    # -- sampling -------------------------------------------------------
    def snapshot(self, now: float) -> None:
        """Record one time-series point for every gauge and counter."""
        self.sampled_at.append(now)
        for name, fn in self._gauges.items():
            self.series.setdefault(name, []).append((now, float(fn())))
        for name, value in self.counters.as_dict().items():
            self.series.setdefault(name, []).append((now, float(value)))

    def rate_series(self, name: str) -> List[Tuple[float, float]]:
        """Per-interval rate (events/µs) derived from a sampled counter."""
        pts = self.series.get(name, [])
        out = []
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t1 > t0:
                out.append((t1, (v1 - v0) / (t1 - t0)))
        return out

    def to_dict(self) -> Dict:
        """JSON-friendly dump: series, final counters, histogram summaries.

        All mappings use sorted keys so artifacts are byte-stable.
        """
        return {
            "sampled_at": list(self.sampled_at),
            "series": {name: [[t, v] for t, v in self.series[name]]
                       for name in sorted(self.series)},
            "counters": self.counters.as_dict(),
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }


class MetricsSampler:
    """Drives :meth:`MetricsRegistry.snapshot` on a sim-time cadence.

    Reschedules itself every ``interval`` µs until ``horizon`` (so a
    ``sim.run()`` with no time bound still terminates).  Uses the LOW
    scheduling priority: snapshots observe a timestamp *after* all model
    work at that instant has run.
    """

    __slots__ = ("sim", "registry", "interval", "horizon", "_stopped")

    def __init__(self, sim, registry: MetricsRegistry, interval: float,
                 horizon: Optional[float] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.horizon = float("inf") if horizon is None else horizon
        self._stopped = False

    def start(self) -> "MetricsSampler":
        """Schedule the first snapshot tick."""
        self.sim.call_in(self.interval, self._tick, priority=2)
        return self

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        self.registry.snapshot(now)
        if now + self.interval <= self.horizon:
            self.sim.call_in(self.interval, self._tick, priority=2)
